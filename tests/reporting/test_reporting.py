"""Tests for table/figure rendering and CSV export."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel.sweep import Series
from repro.reporting.figures import (
    series_csv,
    series_sparklines,
    series_table,
    sparkline,
)
from repro.reporting.tables import format_seconds, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["x", "1"], ["yyyy", "22"]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        # Column 2 starts at the same offset in every row.
        col = lines[0].index("bb")
        assert lines[2][col] == "1" or lines[2][col - 1] == " "

    def test_title_rendered(self):
        out = format_table(["x"], [["1"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])


class TestFormatSeconds:
    def test_scales(self):
        assert format_seconds(5e-7) == "0.5 us"
        assert format_seconds(2.5e-3) == "2.50 ms"
        assert format_seconds(3.25) == "3.250 s"

    def test_infeasible(self):
        assert format_seconds(math.inf) == "infeasible"

    def test_nan(self):
        assert format_seconds(float("nan")) == "nan"


class TestSeriesRendering:
    @pytest.fixture
    def series(self):
        a = Series("L2", x=[1, 2, 3], y=[0.1, 0.2, math.inf])
        b = Series("L3", x=[1, 2, 3], y=[0.3, 0.2, 0.1])
        return {"L2": a, "L3": b}

    def test_series_table_columns(self, series):
        out = series_table(series, x_name="d")
        assert "L2" in out and "L3" in out
        assert "infeasible" in out

    def test_mismatched_axes_rejected(self):
        a = Series("a", x=[1], y=[1.0])
        b = Series("b", x=[2], y=[1.0])
        with pytest.raises(ConfigurationError):
            series_table({"a": a, "b": b}, "x")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            series_table({}, "x")

    def test_sparkline_shape(self):
        line = sparkline([1.0, 2.0, 3.0])
        assert len(line) == 3
        assert line[0] != line[-1]

    def test_sparkline_infeasible_marker(self):
        assert sparkline([1.0, math.inf])[1] == "x"

    def test_sparkline_all_infeasible(self):
        assert sparkline([math.inf, math.inf]) == "xx"

    def test_sparkline_constant(self):
        line = sparkline([2.0, 2.0])
        assert len(set(line)) == 1

    def test_series_sparklines_labels(self, series):
        out = series_sparklines(series)
        assert "L2" in out and "L3" in out

    def test_csv_round_trip(self, series):
        csv = series_csv(series, x_name="d")
        lines = csv.strip().splitlines()
        assert lines[0] == "d,L2,L3"
        assert lines[3].split(",")[1] == "inf"
        assert float(lines[1].split(",")[2]) == pytest.approx(0.3)
