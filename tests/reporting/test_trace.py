"""Tests for the ledger trace renderer."""

import pytest

from repro.core.init import init_centroids
from repro.core.level3 import run_level3
from repro.data.synthetic import gaussian_blobs
from repro.errors import ConfigurationError
from repro.machine.machine import toy_machine
from repro.reporting.trace import (
    category_bars,
    hotspot_table,
    hotspots,
    iteration_table,
    render_trace,
)
from repro.runtime.ledger import TimeLedger


@pytest.fixture(scope="module")
def ledger():
    machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                          ldm_bytes=16 * 1024)
    X, _ = gaussian_blobs(n=400, k=6, d=12, seed=1)
    C0 = init_centroids(X, 6, method="first")
    return run_level3(X, C0, machine, max_iter=4).ledger


class TestIterationTable:
    def test_includes_setup_and_iterations(self, ledger):
        out = iteration_table(ledger)
        assert "setup" in out
        assert "1" in out
        assert "total" in out

    def test_empty_ledger_rejected(self):
        with pytest.raises(ConfigurationError):
            iteration_table(TimeLedger())


class TestHotspots:
    def test_ranked_descending(self, ledger):
        ranked = hotspots(ledger, top=5)
        values = [seconds for _, seconds in ranked]
        assert values == sorted(values, reverse=True)
        assert len(ranked) <= 5

    def test_labels_carry_category(self, ledger):
        ranked = hotspots(ledger, top=3)
        assert all(":" in label for label, _ in ranked)

    def test_bad_top_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            hotspots(ledger, top=0)

    def test_table_renders_shares(self, ledger):
        out = hotspot_table(ledger, top=4)
        assert "%" in out
        assert "#" in out


class TestBarsAndTrace:
    def test_category_bars_cover_all_categories(self, ledger):
        out = category_bars(ledger)
        for cat in ("compute", "dma", "regcomm", "network"):
            assert cat in out

    def test_render_trace_combines_sections(self, ledger):
        out = render_trace(ledger)
        assert "per-iteration time by category" in out
        assert "top" in out
