"""Tests for the serial Lloyd baseline."""

import warnings

import numpy as np
import pytest

from repro.core._common import assign_chunked, inertia
from repro.core.init import init_centroids
from repro.core.lloyd import lloyd, lloyd_single_iteration
from repro.data.synthetic import gaussian_blobs
from repro.errors import ConfigurationError, ConvergenceWarning


@pytest.fixture
def blobs():
    X, labels = gaussian_blobs(n=500, k=5, d=6, spread=0.02, seed=7)
    return X, labels


class TestConvergence:
    def test_converges_on_separated_blobs(self, blobs):
        X, _ = blobs
        C0 = init_centroids(X, 5, method="kmeans++", seed=7)
        result = lloyd(X, C0, max_iter=100)
        assert result.converged
        assert result.n_iter < 100

    def test_fixed_point_is_stable(self, blobs):
        X, _ = blobs
        C0 = init_centroids(X, 5, method="kmeans++", seed=7)
        result = lloyd(X, C0)
        again = lloyd(X, result.centroids, max_iter=2)
        assert again.n_iter == 1
        np.testing.assert_allclose(again.centroids, result.centroids)

    def test_inertia_never_increases(self, blobs):
        X, _ = blobs
        C0 = init_centroids(X, 5, method="first")
        result = lloyd(X, C0, max_iter=50)
        inertias = [s.inertia for s in result.history]
        assert all(b <= a + 1e-12 for a, b in zip(inertias, inertias[1:]))

    def test_max_iter_respected(self, blobs):
        X, _ = blobs
        C0 = init_centroids(X, 5, method="first")
        with pytest.warns(ConvergenceWarning):
            result = lloyd(X, C0, max_iter=2)
        assert result.n_iter <= 2

    def test_unconverged_run_warns(self, blobs):
        X, _ = blobs
        C0 = init_centroids(X, 5, method="first")
        with pytest.warns(ConvergenceWarning, match="did not converge"):
            lloyd(X, C0, max_iter=1)

    def test_converged_run_does_not_warn(self, blobs):
        X, _ = blobs
        C0 = init_centroids(X, 5, method="kmeans++", seed=7)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ConvergenceWarning)
            result = lloyd(X, C0, max_iter=100)
        assert result.converged

    def test_tol_loosens_convergence(self, blobs):
        X, _ = blobs
        C0 = init_centroids(X, 5, method="first")
        tight = lloyd(X, C0, tol=0.0)
        loose = lloyd(X, C0, tol=1.0)
        assert loose.n_iter <= tight.n_iter

    def test_final_inertia_is_true_objective_with_tol(self, blobs):
        # A tol > 0 stop halts one Update past the last Assign, so the held
        # labels can be stale against the final centroids; result.inertia
        # must still be the true objective O(C) under nearest-centroid
        # labels, exactly as the pre-fused implementation computed it.
        X, _ = blobs
        C0 = init_centroids(X, 5, method="first")
        result = lloyd(X, C0, tol=0.5, max_iter=50)
        fresh = assign_chunked(X, result.centroids)
        assert result.inertia == inertia(X, result.centroids, fresh)

    def test_final_inertia_is_true_objective_when_not_converged(self, blobs):
        X, _ = blobs
        C0 = init_centroids(X, 5, method="first")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            result = lloyd(X, C0, max_iter=1)
        fresh = assign_chunked(X, result.centroids)
        assert result.inertia == inertia(X, result.centroids, fresh)


class TestCorrectness:
    def test_recovers_ground_truth_blobs(self, blobs):
        X, labels = blobs
        C0 = init_centroids(X, 5, method="kmeans++", seed=3)
        result = lloyd(X, C0)
        # Each found cluster should be nearly pure in ground-truth labels.
        purity = 0
        for j in range(5):
            members = labels[result.assignments == j]
            if members.size:
                purity += np.bincount(members).max()
        assert purity / X.shape[0] > 0.95

    def test_final_assignments_consistent_with_centroids(self, blobs):
        X, _ = blobs
        result = lloyd(X, init_centroids(X, 5, method="first"))
        np.testing.assert_array_equal(
            result.assignments, assign_chunked(X, result.centroids))

    def test_final_inertia_matches_assignments(self, blobs):
        X, _ = blobs
        result = lloyd(X, init_centroids(X, 5, method="first"))
        assert result.inertia == pytest.approx(
            inertia(X, result.centroids, result.assignments))

    def test_k_equals_one(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        result = lloyd(X, X[:1].copy(), max_iter=10)
        np.testing.assert_allclose(result.centroids[0], X.mean(axis=0))
        assert result.converged

    def test_k_equals_n(self):
        X = np.random.default_rng(1).normal(size=(10, 2))
        result = lloyd(X, X.copy(), max_iter=5)
        assert result.converged
        assert result.inertia == pytest.approx(0.0, abs=1e-20)

    def test_initial_centroids_not_mutated(self, blobs):
        X, _ = blobs
        C0 = init_centroids(X, 5, method="first")
        frozen = C0.copy()
        lloyd(X, C0, max_iter=3)
        np.testing.assert_array_equal(C0, frozen)

    def test_history_telemetry(self, blobs):
        X, _ = blobs
        result = lloyd(X, init_centroids(X, 5, method="first"), max_iter=20)
        assert len(result.history) == result.n_iter
        assert result.history[0].n_reassigned == X.shape[0]
        if result.converged:
            assert result.history[-1].centroid_shift == pytest.approx(0.0)


class TestSingleIteration:
    def test_matches_full_run_first_step(self, blobs):
        X, _ = blobs
        C0 = init_centroids(X, 5, method="first")
        a, C1 = lloyd_single_iteration(X, C0)
        result = lloyd(X, C0, max_iter=1)
        np.testing.assert_array_equal(a, result.assignments)
        np.testing.assert_allclose(C1, result.centroids)


class TestValidation:
    def test_bad_max_iter(self, blobs):
        X, _ = blobs
        with pytest.raises(ConfigurationError):
            lloyd(X, X[:2], max_iter=0)

    def test_bad_tol(self, blobs):
        X, _ = blobs
        with pytest.raises(ConfigurationError):
            lloyd(X, X[:2], tol=-1.0)
