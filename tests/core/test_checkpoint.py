"""Tests for checkpoint/restart state and its modelled I/O cost."""

import os

import numpy as np
import pytest

from repro.core.checkpoint import (
    CHECKPOINT_FILENAME,
    CHECKPOINT_SCHEMA_VERSION,
    Checkpoint,
    CheckpointConfig,
    CheckpointStore,
    load_checkpoint,
)
from repro.errors import ConfigurationError, IntegrityError
from repro.runtime.ledger import TimeLedger


class TestCheckpointConfig:
    def test_defaults_disable_cadence(self):
        config = CheckpointConfig()
        assert config.every is None

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="checkpoint_every"):
            CheckpointConfig(every=0)
        with pytest.raises(ConfigurationError, match="bandwidth"):
            CheckpointConfig(bandwidth=0.0)
        with pytest.raises(ConfigurationError, match="latency"):
            CheckpointConfig(latency=-1.0)

    def test_io_seconds_shape(self):
        config = CheckpointConfig(bandwidth=1e9, latency=1e-3)
        assert config.io_seconds(0) == pytest.approx(1e-3)
        assert config.io_seconds(10 ** 9) == pytest.approx(1.001)


class TestCheckpointStore:
    def make(self, every):
        ledger = TimeLedger()
        store = CheckpointStore(CheckpointConfig(every=every), ledger)
        return store, ledger

    def test_save_initial_is_free(self):
        store, ledger = self.make(every=2)
        C = np.ones((3, 4))
        store.save_initial(C)
        assert ledger.total() == 0.0
        assert store.last.iteration == 0
        # The snapshot is a copy: mutating the live centroids later must
        # not corrupt the restart state.
        C[0, 0] = 99.0
        assert store.last.centroids[0, 0] == 1.0

    def test_cadence(self):
        store, ledger = self.make(every=2)
        C = np.ones((3, 4))
        assert not store.maybe_save(1, C)
        assert store.maybe_save(2, C)
        assert not store.maybe_save(3, C)
        assert store.maybe_save(4, C)
        assert store.n_saved == 2
        assert store.last.iteration == 4
        cats = ledger.total_by_category()
        assert cats["checkpoint"] > 0.0
        assert cats["recovery"] == 0.0

    def test_disabled_cadence_never_saves_or_charges(self):
        store, ledger = self.make(every=None)
        assert not store.enabled
        for it in range(1, 10):
            assert not store.maybe_save(it, np.ones((2, 2)))
        assert ledger.total() == 0.0

    def test_restore_charges_recovery(self):
        store, ledger = self.make(every=1)
        store.save_initial(np.zeros((2, 2)))
        store.maybe_save(1, np.ones((2, 2)))
        checkpoint = store.restore()
        assert isinstance(checkpoint, Checkpoint)
        assert checkpoint.iteration == 1
        assert ledger.total_by_category()["recovery"] > 0.0

    def test_restore_without_state_fails(self):
        store, _ = self.make(every=1)
        with pytest.raises(ConfigurationError, match="no checkpoint"):
            store.restore()


class TestDurableCheckpoints:
    def make(self, directory, every=1):
        ledger = TimeLedger()
        store = CheckpointStore(CheckpointConfig(every=every), ledger,
                                directory=str(directory))
        return store, ledger

    def test_in_memory_store_is_not_durable(self):
        store = CheckpointStore(CheckpointConfig(every=1), TimeLedger())
        assert not store.durable

    def test_snapshot_round_trips_bit_exact(self, tmp_path):
        store, _ = self.make(tmp_path)
        assert store.durable
        C = np.random.default_rng(0).normal(size=(5, 7))
        store.save_initial(np.zeros_like(C))
        store.maybe_save(3, C)
        snapshot = load_checkpoint(str(tmp_path))
        assert snapshot.iteration == 3
        np.testing.assert_array_equal(snapshot.centroids, C)

    def test_save_initial_persists(self, tmp_path):
        store, _ = self.make(tmp_path)
        store.save_initial(np.ones((2, 2)))
        snapshot = load_checkpoint(str(tmp_path))
        assert snapshot.iteration == 0

    def test_missing_snapshot_is_none(self, tmp_path):
        assert load_checkpoint(str(tmp_path)) is None

    def test_orphaned_tmp_file_ignored(self, tmp_path):
        # A process killed mid-write leaves only the .tmp; the last
        # complete snapshot (written before it) must still load.
        store, _ = self.make(tmp_path)
        store.save_initial(np.full((2, 2), 7.0))
        tmp = tmp_path / (CHECKPOINT_FILENAME + ".tmp")
        tmp.write_bytes(b"torn half-written garbage")
        snapshot = load_checkpoint(str(tmp_path))
        assert snapshot.centroids[0, 0] == 7.0

    def test_corrupt_snapshot_rejected(self, tmp_path):
        # Garbage bytes are damage, not misconfiguration: the typed
        # IntegrityError carries the offending path so callers can report
        # (or quarantine) the exact file.
        (tmp_path / CHECKPOINT_FILENAME).write_bytes(b"not an npz")
        with pytest.raises(IntegrityError, match="cannot load") as exc:
            load_checkpoint(str(tmp_path))
        assert exc.value.path == str(tmp_path / CHECKPOINT_FILENAME)

    def test_truncated_snapshot_rejected_with_typed_error(self, tmp_path):
        # A valid zip prefix cut short raises zipfile.BadZipFile inside
        # numpy — historically that escaped as-is; it must map to the same
        # typed IntegrityError as any other damaged snapshot.
        store, _ = self.make(tmp_path)
        store.save_initial(np.ones((4, 4)))
        path = tmp_path / CHECKPOINT_FILENAME
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        with pytest.raises(IntegrityError, match="cannot load"):
            load_checkpoint(str(tmp_path))

    def test_schema_version_embedded_and_future_rejected(self, tmp_path):
        store, _ = self.make(tmp_path)
        store.save_initial(np.ones((2, 2)))
        path = tmp_path / CHECKPOINT_FILENAME
        with np.load(path) as data:
            assert int(data["schema_version"]) == CHECKPOINT_SCHEMA_VERSION
        np.savez(path, iteration=np.int64(0), centroids=np.ones((2, 2)),
                 schema_version=np.int64(CHECKPOINT_SCHEMA_VERSION + 1))
        with pytest.raises(ConfigurationError, match="schema version"):
            load_checkpoint(str(tmp_path))

    def test_legacy_snapshot_without_version_accepted(self, tmp_path):
        # Pre-versioning snapshots (no schema_version, no manifest) must
        # keep loading — durability cannot be invalidated retroactively.
        np.savez(tmp_path / CHECKPOINT_FILENAME, iteration=np.int64(5),
                 centroids=np.full((2, 2), 9.0))
        snapshot = load_checkpoint(str(tmp_path), integrity="verify")
        assert snapshot.iteration == 5

    def test_manifest_detects_silent_payload_corruption(self, tmp_path):
        # Flip one payload bit behind the zip member's back: rewrite the
        # npz with a changed centroid but the *old* manifest.
        store, _ = self.make(tmp_path)
        C = np.arange(16.0).reshape(4, 4)
        store.save_initial(C)
        path = tmp_path / CHECKPOINT_FILENAME
        with np.load(path) as data:
            manifest = str(data["manifest"][()])
        bad = C.copy()
        bad[0, 0] = np.nextafter(bad[0, 0], np.inf)
        np.savez(path, iteration=np.int64(0), centroids=bad,
                 schema_version=np.int64(CHECKPOINT_SCHEMA_VERSION),
                 manifest=manifest)
        with pytest.raises(IntegrityError, match="manifest"):
            load_checkpoint(str(tmp_path), integrity="verify")
        # integrity="off" skips the manifest check and loads the bad bytes.
        snapshot = load_checkpoint(str(tmp_path), integrity="off")
        assert snapshot.centroids[0, 0] == bad[0, 0]

    def test_directory_created_on_init(self, tmp_path):
        nested = tmp_path / "a" / "b"
        self.make(nested)
        assert nested.is_dir()

    def test_adopt_neither_charges_nor_rewrites(self, tmp_path):
        store, ledger = self.make(tmp_path)
        store.save_initial(np.zeros((2, 2)))
        store.maybe_save(2, np.ones((2, 2)))
        mtime = os.path.getmtime(tmp_path / CHECKPOINT_FILENAME)
        charged = ledger.total()
        store.adopt(load_checkpoint(str(tmp_path)))
        assert store.last.iteration == 2
        assert ledger.total() == charged
        assert os.path.getmtime(tmp_path / CHECKPOINT_FILENAME) == mtime

    def test_latest_snapshot_wins(self, tmp_path):
        store, _ = self.make(tmp_path)
        store.save_initial(np.zeros((2, 2)))
        for it in range(1, 5):
            store.maybe_save(it, np.full((2, 2), float(it)))
        snapshot = load_checkpoint(str(tmp_path))
        assert snapshot.iteration == 4
        assert snapshot.centroids[0, 0] == 4.0

    def test_modelled_charges_unchanged_by_durability(self, tmp_path):
        # Durability is host I/O, not simulated Sunway time: both stores
        # charge the identical modelled seconds.
        volatile = CheckpointStore(CheckpointConfig(every=1), TimeLedger())
        durable, _ = self.make(tmp_path)
        C = np.ones((4, 4))
        for store in (volatile, durable):
            store.save_initial(C)
            store.maybe_save(1, C)
            store.restore()
        assert volatile.ledger.records == durable.ledger.records
