"""Tests for checkpoint/restart state and its modelled I/O cost."""

import numpy as np
import pytest

from repro.core.checkpoint import (
    Checkpoint,
    CheckpointConfig,
    CheckpointStore,
)
from repro.errors import ConfigurationError
from repro.runtime.ledger import TimeLedger


class TestCheckpointConfig:
    def test_defaults_disable_cadence(self):
        config = CheckpointConfig()
        assert config.every is None

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="checkpoint_every"):
            CheckpointConfig(every=0)
        with pytest.raises(ConfigurationError, match="bandwidth"):
            CheckpointConfig(bandwidth=0.0)
        with pytest.raises(ConfigurationError, match="latency"):
            CheckpointConfig(latency=-1.0)

    def test_io_seconds_shape(self):
        config = CheckpointConfig(bandwidth=1e9, latency=1e-3)
        assert config.io_seconds(0) == pytest.approx(1e-3)
        assert config.io_seconds(10 ** 9) == pytest.approx(1.001)


class TestCheckpointStore:
    def make(self, every):
        ledger = TimeLedger()
        store = CheckpointStore(CheckpointConfig(every=every), ledger)
        return store, ledger

    def test_save_initial_is_free(self):
        store, ledger = self.make(every=2)
        C = np.ones((3, 4))
        store.save_initial(C)
        assert ledger.total() == 0.0
        assert store.last.iteration == 0
        # The snapshot is a copy: mutating the live centroids later must
        # not corrupt the restart state.
        C[0, 0] = 99.0
        assert store.last.centroids[0, 0] == 1.0

    def test_cadence(self):
        store, ledger = self.make(every=2)
        C = np.ones((3, 4))
        assert not store.maybe_save(1, C)
        assert store.maybe_save(2, C)
        assert not store.maybe_save(3, C)
        assert store.maybe_save(4, C)
        assert store.n_saved == 2
        assert store.last.iteration == 4
        cats = ledger.total_by_category()
        assert cats["checkpoint"] > 0.0
        assert cats["recovery"] == 0.0

    def test_disabled_cadence_never_saves_or_charges(self):
        store, ledger = self.make(every=None)
        assert not store.enabled
        for it in range(1, 10):
            assert not store.maybe_save(it, np.ones((2, 2)))
        assert ledger.total() == 0.0

    def test_restore_charges_recovery(self):
        store, ledger = self.make(every=1)
        store.save_initial(np.zeros((2, 2)))
        store.maybe_save(1, np.ones((2, 2)))
        checkpoint = store.restore()
        assert isinstance(checkpoint, Checkpoint)
        assert checkpoint.iteration == 1
        assert ledger.total_by_category()["recovery"] > 0.0

    def test_restore_without_state_fails(self):
        store, _ = self.make(every=1)
        with pytest.raises(ConfigurationError, match="no checkpoint"):
            store.restore()
