"""Tests for streaming-mode plans/executors and DMA/compute overlap.

Streaming mode (DESIGN.md §5a) lets Level 2/3 run configurations whose
centroid working set overflows the resident constraints — the semantics the
paper's own Figures 7-9 require — charging re-stream DMA traffic instead of
refusing.  Numerics are untouched: results still equal serial Lloyd.
"""

import numpy as np
import pytest

from repro.core.init import init_centroids
from repro.core.level2 import run_level2
from repro.core.level3 import run_level3
from repro.core.lloyd import lloyd
from repro.core.partition import (
    STREAM_BUFFERS,
    plan_level2,
    plan_level3,
    stage_level2,
    stage_level3,
    stream_gate,
    streaming_info,
)
from repro.data.synthetic import gaussian_blobs
from repro.errors import PartitionError
from repro.machine.machine import toy_machine


@pytest.fixture
def machine():
    # 8 KiB LDM = 1024 f64 elements per CPE.
    return toy_machine(n_nodes=2, cgs_per_node=2, mesh=2, ldm_bytes=8192)


@pytest.fixture(scope="module")
def big_k_workload():
    # k*d = 3200 elements/CPE-slice >> any resident budget on the toy LDM.
    X, _ = gaussian_blobs(n=500, k=100, d=128, seed=31)
    C0 = init_centroids(X, 100, method="first")
    return X, C0


class TestStreamingInfo:
    def test_resident_when_small(self):
        info = streaming_info(d_slice_elems=8, cent_slice_elems=64,
                              count_elems=8, samples_per_unit=100,
                              ldm_bytes=8192, itemsize=8)
        assert info.resident_fraction == 1.0
        assert info.n_stages == 1
        assert info.cent_traffic_bytes_per_cpe == 64 * 8

    def test_streaming_when_large(self):
        info = streaming_info(d_slice_elems=64, cent_slice_elems=10_000,
                              count_elems=100, samples_per_unit=1000,
                              ldm_bytes=8192, itemsize=8)
        assert info.resident_fraction < 1.0
        assert info.n_stages > 1
        # Re-streaming multiplies traffic beyond one slice fetch.
        assert info.cent_traffic_bytes_per_cpe > 10_000 * 8

    def test_traffic_grows_with_samples(self):
        small = streaming_info(64, 10_000, 100, 100, 8192, 8)
        big = streaming_info(64, 10_000, 100, 10_000, 8192, 8)
        assert big.cent_traffic_bytes_per_cpe \
            > small.cent_traffic_bytes_per_cpe

    def test_stream_gate(self):
        assert stream_gate(256, 8192, 8)          # 4*256*8 = 8192, fits
        assert not stream_gate(257, 8192, 8)
        assert STREAM_BUFFERS == 4


class TestStreamingPlans:
    def test_level2_resident_refuses_but_streaming_accepts(self, machine,
                                                           big_k_workload):
        X, _ = big_k_workload
        with pytest.raises(PartitionError, match="streaming=True"):
            plan_level2(machine, X.shape[0], 100, 128)
        plan = plan_level2(machine, X.shape[0], 100, 128, streaming=True)
        assert plan.streaming is not None
        assert plan.streaming.resident_fraction < 1.0

    def test_level3_streaming_accepts_oversize_k(self, machine):
        with pytest.raises(PartitionError, match="streaming=True"):
            plan_level3(machine, 10_000, 10_000, 512)
        plan = plan_level3(machine, 10_000, 10_000, 512, streaming=True)
        assert plan.streaming is not None
        assert plan.streaming.resident_fraction < 1.0

    def test_streaming_gate_still_applies(self, machine):
        # d too large for even the staging buffers (4*d*8 > 8192 at d=257).
        with pytest.raises(PartitionError, match="staging"):
            plan_level2(machine, 1000, 4, 300, streaming=True)

    def test_streaming_plan_with_small_k_is_resident(self, machine):
        plan = plan_level2(machine, 1000, 4, 16, streaming=True)
        assert plan.streaming is not None
        assert plan.streaming.resident_fraction == 1.0

    def test_staging_streaming_buffers_fit(self, machine, big_k_workload):
        X, _ = big_k_workload
        plan = plan_level2(machine, X.shape[0], 100, 128, streaming=True)
        stage_level2(plan, machine)  # must not overflow any LDM
        cpe = machine.core_group(0).cpe(0)
        assert "sample_stage_a" in cpe.ldm

    def test_staging_level3_streaming(self, machine):
        plan = plan_level3(machine, 10_000, 10_000, 512, streaming=True)
        stage_level3(plan, machine)
        cpe = machine.core_group(0).cpe(0)
        assert "centroid_chunk" in cpe.ldm


class TestStreamingExecution:
    def test_level2_streaming_matches_lloyd(self, machine, big_k_workload):
        X, C0 = big_k_workload
        ref = lloyd(X, C0, max_iter=15)
        result = run_level2(X, C0, machine, max_iter=15, streaming=True)
        np.testing.assert_array_equal(result.assignments, ref.assignments)
        np.testing.assert_allclose(result.centroids, ref.centroids,
                                   rtol=1e-9)

    def test_level3_streaming_matches_lloyd(self, machine, big_k_workload):
        X, C0 = big_k_workload
        ref = lloyd(X, C0, max_iter=15)
        result = run_level3(X, C0, machine, max_iter=15, streaming=True)
        np.testing.assert_array_equal(result.assignments, ref.assignments)

    def test_restreaming_charges_more_dma(self, machine):
        """The same feasible workload costs more DMA when forced through
        streaming with a non-resident slice than when resident.

        k=8, d=200 on the 1024-element LDM: resident mode fits at mgroup=4
        (slice usage 1002 elements), but the streaming analysis — which
        also reserves the sample double-buffer — sees rf < 1 and re-streams.
        """
        X, _ = gaussian_blobs(n=400, k=8, d=200, seed=5)
        C0 = init_centroids(X, 8, method="first")
        resident = run_level2(X, C0, machine, max_iter=2)
        streamed = run_level2(X, C0, machine, max_iter=2, streaming=True)
        np.testing.assert_array_equal(resident.assignments,
                                      streamed.assignments)
        dma_res = resident.ledger.total_by_category()["dma"]
        dma_str = streamed.ledger.total_by_category()["dma"]
        assert dma_str > dma_res


class TestOverlap:
    """Double-buffered DMA hides the shorter of (stream, compute)."""

    @pytest.fixture
    def workload(self):
        X, _ = gaussian_blobs(n=800, k=12, d=24, seed=9)
        return X, init_centroids(X, 12, method="first")

    @pytest.mark.parametrize("runner", [run_level2, run_level3])
    def test_overlap_never_slower_and_results_identical(self, machine,
                                                        workload, runner):
        X, C0 = workload
        plain = runner(X, C0, machine, max_iter=3)
        overlapped = runner(X, C0, machine, max_iter=3, overlap_dma=True)
        np.testing.assert_array_equal(plain.assignments,
                                      overlapped.assignments)
        assert (overlapped.mean_iteration_seconds()
                < plain.mean_iteration_seconds())

    def test_overlap_saves_exactly_the_hidden_phase(self, machine,
                                                    workload):
        X, C0 = workload
        plain = run_level2(X, C0, machine, max_iter=1)
        overlapped = run_level2(X, C0, machine, max_iter=1,
                                overlap_dma=True)
        saved = (plain.ledger.iteration_time(1)
                 - overlapped.ledger.iteration_time(1))
        plain_cats = plain.ledger.total_by_category()
        # The hidden phase is min(stream dma, distance compute); the saving
        # cannot exceed either category bucket.
        assert 0 < saved <= min(plain_cats["dma"],
                                plain_cats["compute"]) * (1 + 1e-12)

    def test_overlap_label_marks_hidden_phase(self, machine, workload):
        X, C0 = workload
        result = run_level3(X, C0, machine, max_iter=1, overlap_dma=True)
        labels = {r.label for r in result.ledger.records}
        assert any("overlap" in label for label in labels)
        assert any("hidden" in label for label in labels)
