"""Tests for the shared numerical kernels."""

import numpy as np
import pytest

from repro.core._common import (
    accumulate,
    assign_chunked,
    assign_with_distances,
    chunk_ranges,
    even_slices,
    inertia,
    max_centroid_shift,
    squared_distances,
    squared_distances_expanded,
    update_centroids,
    validate_data,
)
from repro.errors import ConfigurationError, DataShapeError


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 16))
    C = rng.normal(size=(8, 16))
    return X, C


class TestValidation:
    def test_shapes_checked(self):
        with pytest.raises(DataShapeError):
            validate_data(np.zeros(5), np.zeros((2, 5)))
        with pytest.raises(DataShapeError):
            validate_data(np.zeros((5, 3)), np.zeros(3))

    def test_dimension_mismatch(self):
        with pytest.raises(DataShapeError, match="dimension mismatch"):
            validate_data(np.zeros((5, 3)), np.zeros((2, 4)))

    def test_empty_inputs_rejected(self):
        with pytest.raises(DataShapeError):
            validate_data(np.zeros((0, 3)), np.zeros((2, 3)))
        with pytest.raises(DataShapeError):
            validate_data(np.zeros((5, 3)), np.zeros((0, 3)))

    def test_integer_data_promoted_to_float(self):
        X, C = validate_data(np.ones((4, 2), dtype=np.int64),
                             np.ones((2, 2), dtype=np.int64))
        assert np.issubdtype(X.dtype, np.floating)
        assert C.dtype == X.dtype

    def test_contiguity_enforced(self, data):
        X, C = data
        Xv, Cv = validate_data(X[::2], C)
        assert Xv.flags["C_CONTIGUOUS"]

    def test_nan_samples_rejected(self, data):
        X, C = data
        X = X.copy()
        X[17, 3] = np.nan
        with pytest.raises(DataShapeError, match="non-finite"):
            validate_data(X, C)

    def test_inf_samples_rejected(self, data):
        X, C = data
        X = X.copy()
        X[0, 0] = np.inf
        with pytest.raises(DataShapeError, match="non-finite"):
            validate_data(X, C)

    def test_non_finite_centroids_rejected(self, data):
        X, C = data
        C = C.copy()
        C[1, 1] = -np.inf
        with pytest.raises(DataShapeError, match="non-finite"):
            validate_data(X, C)


class TestDistances:
    def test_direct_matches_manual(self, data):
        X, C = data
        d2 = squared_distances(X[:5], C)
        manual = ((X[:5, None, :] - C[None]) ** 2).sum(axis=2)
        np.testing.assert_allclose(d2, manual)

    def test_expanded_matches_direct(self, data):
        X, C = data
        np.testing.assert_allclose(
            squared_distances_expanded(X, C),
            squared_distances(X, C),
            rtol=1e-9, atol=1e-9,
        )

    def test_expanded_clamps_negative_zero(self):
        # Distance of a point to itself must not be a tiny negative number.
        X = np.array([[1e8, 1e8]])
        d2 = squared_distances_expanded(X, X)
        assert d2[0, 0] >= 0.0

    def test_distance_to_self_is_zero(self, data):
        X, _ = data
        d2 = squared_distances(X[:3], X[:3])
        np.testing.assert_allclose(np.diag(d2), 0.0, atol=1e-12)


class TestAssignment:
    def test_matches_full_argmin(self, data):
        X, C = data
        expected = np.argmin(squared_distances(X, C), axis=1)
        np.testing.assert_array_equal(assign_chunked(X, C), expected)

    def test_chunking_does_not_change_result(self, data):
        X, C = data
        a = assign_chunked(X, C, chunk_elements=8 * C.shape[0])
        b = assign_chunked(X, C)
        np.testing.assert_array_equal(a, b)

    def test_expanded_kernel_option(self, data):
        X, C = data
        np.testing.assert_array_equal(
            assign_chunked(X, C, expanded=True), assign_chunked(X, C))

    def test_single_centroid(self, data):
        X, _ = data
        assert set(assign_chunked(X, X[:1])) == {0}

    def test_assign_with_distances(self, data):
        X, C = data
        idx, best = assign_with_distances(X, C)
        d2 = squared_distances(X, C)
        np.testing.assert_array_equal(idx, np.argmin(d2, axis=1))
        np.testing.assert_allclose(best, d2.min(axis=1))

    def test_tie_goes_to_lowest_index(self):
        X = np.array([[0.0, 0.0]])
        C = np.array([[1.0, 0.0], [-1.0, 0.0]])  # equidistant
        assert assign_chunked(X, C)[0] == 0


class TestAccumulate:
    def test_sums_and_counts(self):
        X = np.array([[1.0], [2.0], [3.0], [4.0]])
        a = np.array([0, 1, 0, 1])
        sums, counts = accumulate(X, a, k=2)
        np.testing.assert_allclose(sums[:, 0], [4.0, 6.0])
        np.testing.assert_array_equal(counts, [2, 2])

    def test_counts_sum_to_n(self, data):
        X, C = data
        a = assign_chunked(X, C)
        _, counts = accumulate(X, a, C.shape[0])
        assert counts.sum() == X.shape[0]

    def test_empty_cluster_zero(self):
        X = np.ones((3, 2))
        sums, counts = accumulate(X, np.zeros(3, dtype=np.int64), k=2)
        assert counts[1] == 0
        np.testing.assert_allclose(sums[1], 0.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataShapeError):
            accumulate(np.ones((3, 2)), np.zeros(2, dtype=np.int64), k=1)

    def test_out_of_range_assignment_rejected(self):
        X = np.ones((3, 2))
        with pytest.raises(DataShapeError):
            accumulate(X, np.array([0, 1, 2]), k=2)
        with pytest.raises(DataShapeError):
            accumulate(X, np.array([0, -1, 1]), k=2)

    def test_bincount_matches_add_at_bitwise(self):
        # The bincount formulation replaced an np.add.at scatter; both add
        # element-for-element in sample order, so a single-pass bincount is
        # bit-identical, not merely close.
        rng = np.random.default_rng(23)
        X = rng.normal(size=(1500, 17)) * rng.lognormal(size=(1500, 1))
        k = 13
        a = rng.integers(0, k, size=1500)
        sums, counts = accumulate(X, a, k)
        ref_sums = np.zeros((k, X.shape[1]))
        np.add.at(ref_sums, a, X)
        np.testing.assert_array_equal(sums, ref_sums)
        np.testing.assert_array_equal(counts, np.bincount(a, minlength=k))


class TestUpdate:
    def test_means_computed(self):
        sums = np.array([[4.0, 8.0], [3.0, 3.0]])
        counts = np.array([2, 3])
        prev = np.zeros((2, 2))
        new = update_centroids(sums, counts, prev)
        np.testing.assert_allclose(new, [[2.0, 4.0], [1.0, 1.0]])

    def test_empty_cluster_keeps_previous(self):
        sums = np.array([[4.0], [0.0]])
        counts = np.array([2, 0])
        prev = np.array([[9.0], [7.0]])
        new = update_centroids(sums, counts, prev)
        np.testing.assert_allclose(new, [[2.0], [7.0]])

    def test_no_nans_ever(self):
        new = update_centroids(np.zeros((3, 2)), np.zeros(3, dtype=int),
                               np.ones((3, 2)))
        assert np.isfinite(new).all()

    def test_previous_not_mutated(self):
        prev = np.ones((2, 2))
        update_centroids(np.full((2, 2), 4.0), np.array([2, 2]), prev)
        np.testing.assert_allclose(prev, 1.0)


class TestReseedFarthest:
    def test_empty_cluster_takes_farthest_sample(self):
        # Cluster 1 is empty; the sample farthest from its winning
        # centroid (the origin here) becomes its new centroid.
        X = np.array([[0.0, 0.0], [1.0, 0.0], [9.0, 0.0]])
        sums = np.array([[10.0, 0.0], [0.0, 0.0]])
        counts = np.array([3, 0])
        prev = np.zeros((2, 2))
        _, best_d2 = assign_with_distances(X, prev)
        new = update_centroids(sums, counts, prev,
                               empty_action="reseed_farthest", X=X,
                               best_d2=best_d2)
        np.testing.assert_allclose(new[1], [9.0, 0.0])

    def test_distances_recomputed_when_missing(self):
        X = np.array([[0.0, 0.0], [1.0, 0.0], [9.0, 0.0]])
        sums = np.array([[10.0, 0.0], [0.0, 0.0]])
        counts = np.array([3, 0])
        new = update_centroids(sums, counts, np.zeros((2, 2)),
                               empty_action="reseed_farthest", X=X)
        np.testing.assert_allclose(new[1], [9.0, 0.0])

    def test_nonempty_clusters_unchanged_by_action(self):
        sums = np.array([[4.0, 8.0], [3.0, 3.0]])
        counts = np.array([2, 3])
        prev = np.zeros((2, 2))
        X = np.ones((5, 2))
        keep = update_centroids(sums, counts, prev)
        reseed = update_centroids(sums, counts, prev,
                                  empty_action="reseed_farthest", X=X)
        np.testing.assert_array_equal(keep, reseed)

    def test_reseed_requires_samples(self):
        with pytest.raises(ConfigurationError, match="needs the samples"):
            update_centroids(np.zeros((2, 2)), np.array([1, 0]),
                             np.zeros((2, 2)),
                             empty_action="reseed_farthest")

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError, match="empty_action"):
            update_centroids(np.zeros((2, 2)), np.array([1, 1]),
                             np.zeros((2, 2)), empty_action="explode")

    def test_more_empty_clusters_than_samples_fall_back_to_keep(self):
        # k > n: only one sample to reseed from; the second empty cluster
        # keeps its previous centroid instead of crashing.
        X = np.array([[5.0, 5.0]])
        sums = np.array([[5.0, 5.0], [0.0, 0.0], [0.0, 0.0]])
        counts = np.array([1, 0, 0])
        prev = np.full((3, 2), 2.0)
        new = update_centroids(sums, counts, prev,
                               empty_action="reseed_farthest", X=X)
        np.testing.assert_allclose(new[1], [5.0, 5.0])
        np.testing.assert_allclose(new[2], [2.0, 2.0])


class TestHelpers:
    def test_inertia_matches_objective(self, data):
        X, C = data
        a = assign_chunked(X, C)
        expected = np.mean(((X - C[a]) ** 2).sum(axis=1))
        assert inertia(X, C, a) == pytest.approx(expected)

    def test_max_centroid_shift(self):
        old = np.zeros((2, 2))
        new = np.array([[3.0, 4.0], [1.0, 0.0]])
        assert max_centroid_shift(old, new) == pytest.approx(5.0)

    def test_chunk_ranges_cover(self):
        ranges = list(chunk_ranges(10, 3))
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_chunk_ranges_bad_chunk(self):
        with pytest.raises(DataShapeError):
            list(chunk_ranges(10, 0))


class TestEvenSlices:
    def test_exact_division(self):
        assert even_slices(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_spread_to_front(self):
        assert even_slices(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_covers_everything_disjointly(self):
        for total, parts in [(1, 1), (7, 3), (100, 7), (5, 8)]:
            slices = even_slices(total, parts)
            assert slices[0][0] == 0
            assert slices[-1][1] == total
            for (a0, a1), (b0, b1) in zip(slices, slices[1:]):
                assert a1 == b0

    def test_more_parts_than_items_gives_empty_slices(self):
        slices = even_slices(2, 4)
        sizes = [hi - lo for lo, hi in slices]
        assert sizes == [1, 1, 0, 0]

    def test_zero_parts_rejected(self):
        with pytest.raises(DataShapeError):
            even_slices(10, 0)
