"""Tests for the KMeansResult container."""

import numpy as np
import pytest

from repro.core.result import IterationStats, KMeansResult
from repro.runtime.ledger import TimeLedger


def make_result(ledger=None, level=1):
    return KMeansResult(
        centroids=np.zeros((3, 4)),
        assignments=np.zeros(10, dtype=np.int64),
        inertia=1.5,
        n_iter=2,
        converged=True,
        history=[IterationStats(1, 2.0, 0.5, 10),
                 IterationStats(2, 1.5, 0.0, 0)],
        ledger=ledger,
        level=level,
    )


class TestProperties:
    def test_shape_accessors(self):
        r = make_result()
        assert (r.k, r.d, r.n) == (3, 4, 10)

    def test_mean_iteration_seconds_without_ledger(self):
        assert make_result().mean_iteration_seconds() == 0.0

    def test_mean_iteration_seconds_with_ledger(self):
        ledger = TimeLedger()
        ledger.next_iteration()
        ledger.charge("compute", "w", 2.0)
        ledger.next_iteration()
        ledger.charge("compute", "w", 4.0)
        r = make_result(ledger=ledger)
        assert r.mean_iteration_seconds() == pytest.approx(3.0)

    def test_summary_mentions_key_facts(self):
        s = make_result(level=3).summary()
        assert "level 3" in s
        assert "n=10" in s and "k=3" in s and "d=4" in s
        assert "converged=True" in s

    def test_summary_includes_timing_only_with_ledger(self):
        assert "s/iter" not in make_result().summary()
        ledger = TimeLedger()
        ledger.next_iteration()
        ledger.charge("dma", "x", 0.5)
        assert "s/iter" in make_result(ledger=ledger).summary()
