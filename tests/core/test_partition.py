"""Tests for the partition planner and LDM staging."""

import numpy as np
import pytest

from repro.core.partition import (
    plan_level1,
    plan_level2,
    plan_level3,
    stage_level1,
    stage_level2,
    stage_level3,
)
from repro.errors import ConfigurationError, PartitionError
from repro.machine.machine import toy_machine


@pytest.fixture
def machine():
    # 2 nodes x 2 CGs x 4 CPEs, 8 KiB LDM (1024 f64 elements).
    return toy_machine(n_nodes=2, cgs_per_node=2, mesh=2, ldm_bytes=8192)


class TestLevel1Plan:
    def test_blocks_cover_samples(self, machine):
        plan = plan_level1(machine, n=100, k=4, d=8)
        assert plan.sample_blocks[0][0] == 0
        assert plan.sample_blocks[-1][1] == 100
        assert plan.units == 16

    def test_units_capped_by_n(self, machine):
        plan = plan_level1(machine, n=5, k=2, d=4)
        assert plan.units == 5

    def test_per_cpe_elements_formula(self, machine):
        plan = plan_level1(machine, n=10, k=3, d=7)
        assert plan.per_cpe_elements() == 7 * (1 + 6) + 3

    def test_infeasible_kd_raises(self, machine):
        with pytest.raises(PartitionError, match="Level 1 infeasible"):
            plan_level1(machine, n=100, k=100, d=100)

    def test_k_larger_than_n_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            plan_level1(machine, n=3, k=4, d=2)

    def test_staging_fits(self, machine):
        plan = plan_level1(machine, n=100, k=4, d=8)
        stage_level1(plan, machine)  # must not raise
        cpe = machine.core_group(0).cpe(0)
        assert "centroids" in cpe.ldm
        assert cpe.ldm.used_bytes == plan.per_cpe_elements() * 8


class TestLevel2Plan:
    def test_picks_smallest_feasible_mgroup(self, machine):
        # k=40, d=8: one CPE needs 8*81+40 = 688 <= 1024 -> mgroup 1 works.
        plan = plan_level2(machine, n=200, k=40, d=8)
        assert plan.mgroup == 1
        # k=200, d=8: 8*401+200 = 3408 > 1024; mgroup=4: slice 50 ->
        # 8*101+50 = 858 <= 1024.
        plan2 = plan_level2(machine, n=400, k=200, d=8)
        assert plan2.mgroup == 4

    def test_explicit_mgroup_respected(self, machine):
        plan = plan_level2(machine, n=200, k=40, d=8, mgroup=2)
        assert plan.mgroup == 2
        assert plan.groups_per_cg == 2

    def test_explicit_mgroup_validated(self, machine):
        with pytest.raises(ConfigurationError):
            plan_level2(machine, n=200, k=40, d=8, mgroup=5)
        with pytest.raises(PartitionError):
            plan_level2(machine, n=400, k=200, d=8, mgroup=1)

    def test_centroid_slices_cover_k(self, machine):
        plan = plan_level2(machine, n=400, k=201, d=8)
        assert plan.centroid_slices[0][0] == 0
        assert plan.centroid_slices[-1][1] == 201

    def test_sample_blocks_cover_n(self, machine):
        plan = plan_level2(machine, n=333, k=40, d=8)
        assert plan.sample_blocks[0][0] == 0
        assert plan.sample_blocks[-1][1] == 333

    def test_d_too_big_for_ldm_raises(self, machine):
        # 3d+1 > 1024 elements: d = 400.
        with pytest.raises(PartitionError, match="C2"):
            plan_level2(machine, n=100, k=4, d=400)

    def test_staging_fits(self, machine):
        plan = plan_level2(machine, n=400, k=200, d=8)
        stage_level2(plan, machine)
        cg = machine.core_group(plan.cg_of_group[0])
        assert "centroid_slice" in cg.cpe(0).ldm


class TestLevel3Plan:
    def test_dim_slices_cover_d(self, machine):
        plan = plan_level3(machine, n=200, k=4, d=1001)
        assert plan.dim_slices[0][0] == 0
        assert plan.dim_slices[-1][1] == 1001
        assert len(plan.dim_slices) == machine.cpes_per_cg

    def test_big_d_feasible_only_at_level3(self, machine):
        with pytest.raises(PartitionError):
            plan_level2(machine, n=200, k=8, d=1001)
        plan = plan_level3(machine, n=200, k=4, d=1001)
        assert plan.mprime_group >= 1

    def test_mprime_grows_with_k(self, machine):
        small = plan_level3(machine, n=200, k=4, d=64)
        big = plan_level3(machine, n=200, k=120, d=64)
        assert big.mprime_group >= small.mprime_group

    def test_groups_partition_machine(self, machine):
        plan = plan_level3(machine, n=200, k=8, d=64)
        flat = [cg for group in plan.cg_groups for cg in group]
        assert len(set(flat)) == len(flat)
        assert all(0 <= cg < machine.n_cgs for cg in flat)

    def test_sample_blocks_cover_n(self, machine):
        plan = plan_level3(machine, n=777, k=8, d=64)
        assert plan.sample_blocks[0][0] == 0
        assert plan.sample_blocks[-1][1] == 777

    def test_explicit_mprime_validated(self, machine):
        with pytest.raises(ConfigurationError):
            plan_level3(machine, n=100, k=4, d=8, mprime_group=99)

    def test_impossible_d_slice_raises(self):
        tiny = toy_machine(n_nodes=1, cgs_per_node=1, mesh=2, ldm_bytes=64)
        with pytest.raises(PartitionError, match="sample slice"):
            plan_level3(tiny, n=10, k=2, d=10_000)

    def test_k_exceeding_capacity_raises(self, machine):
        # All 4 CGs together cannot hold this centroid set.
        with pytest.raises(PartitionError):
            plan_level3(machine, n=10_000, k=10_000, d=512)

    def test_supernode_aware_flag_propagates(self, machine):
        aware = plan_level3(machine, n=200, k=8, d=64, supernode_aware=True)
        strided = plan_level3(machine, n=200, k=8, d=64,
                              supernode_aware=False)
        assert aware.supernode_aware and not strided.supernode_aware
        assert aware.cg_groups != strided.cg_groups or \
            aware.mprime_group == 1

    def test_staging_fits(self, machine):
        plan = plan_level3(machine, n=200, k=120, d=64)
        stage_level3(plan, machine)
        used = machine.core_group(plan.cg_groups[0][0]).cpe(0).ldm.used_bytes
        assert used > 0


class TestPlanDescriptions:
    def test_describe_mentions_shape(self, machine):
        p1 = plan_level1(machine, 100, 4, 8)
        p2 = plan_level2(machine, 100, 40, 8)
        p3 = plan_level3(machine, 100, 8, 64)
        assert "Level-1" in p1.describe()
        assert "mgroup" in p2.describe()
        assert "m'group" in p3.describe()
