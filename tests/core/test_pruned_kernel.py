"""``kernel="pruned"``: exact Hamerly-bounded pruning, bit-identical to gemm.

The non-negotiable contract of the pruned backend: centroids, labels,
inertia, and fault/chaos replays are **bitwise** identical to
``kernel="gemm"`` — across engines, worker counts, reduce topologies,
adversarial ties, checkpoint resumes, replans, and rollbacks.  Pruning is
allowed to change exactly one observable: how many distance evaluations
the ledger charges for.
"""

import os
import signal
import subprocess
import sys
import time
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.bounds import BlockBounds, centroid_drift, centroid_separation
from repro.core.checkpoint import CHECKPOINT_FILENAME
from repro.core.kernels import GemmKernel, PrunedKernel, resolve_kernel
from repro.core.kmeans import HierarchicalKMeans
from repro.core.lloyd import lloyd
from repro.core._common import update_centroids
from repro.data.synthetic import gaussian_blobs
from repro.errors import ConfigurationError, ConvergenceWarning
from repro.machine.machine import toy_machine
from repro.runtime.chaos import ChaosInjector, ChaosPlan, ChaosSpec
from repro.runtime.engine import SerialEngine
from repro.runtime.faults import FaultPlan, FaultSpec


@pytest.fixture(scope="module")
def machine():
    return toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                       ldm_bytes=16 * 1024)


@pytest.fixture(scope="module")
def workload():
    X, _ = gaussian_blobs(n=1200, k=8, d=10, seed=5)
    C0 = np.array(X[:8], copy=True)
    return X, C0


def _assert_same_result(a, b):
    np.testing.assert_array_equal(a.centroids, b.centroids)
    np.testing.assert_array_equal(a.assignments, b.assignments)
    assert a.inertia == b.inertia
    assert a.n_iter == b.n_iter
    assert a.converged == b.converged
    assert [s.inertia for s in a.history] == [s.inertia for s in b.history]
    assert [s.centroid_shift for s in a.history] \
        == [s.centroid_shift for s in b.history]


def _assert_same_final(a, b):
    """Final-state equality only: resumed runs truncate ``history``."""
    np.testing.assert_array_equal(a.centroids, b.centroids)
    np.testing.assert_array_equal(a.assignments, b.assignments)
    assert a.inertia == b.inertia
    assert a.n_iter == b.n_iter
    assert a.converged == b.converged


# ---------------------------------------------------------------------------
# Kernel primitives
# ---------------------------------------------------------------------------

class TestKernelPrimitives:
    def test_winner_sq_block_is_row_independent(self):
        # The whole bit-identity argument rests on this: evaluating the
        # winner distance for a subset of rows must give bitwise the same
        # floats as evaluating it inside the full block.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(257, 13))
        C = rng.normal(size=(9, 13))
        kernel = PrunedKernel()
        ctx = kernel._prepare(C, X.shape[0])
        local = rng.integers(0, 9, size=257)
        full = kernel._winner_sq_block(X, C, local, ctx)
        subset = rng.choice(257, size=61, replace=False)
        part = kernel._winner_sq_block(X[subset], C, local[subset], ctx)
        np.testing.assert_array_equal(full[subset], part)

    def test_establish_matches_gemm_sweep(self, workload):
        X, C0 = workload
        gemm, pruned = GemmKernel(), PrunedKernel()
        g_labels, g_d2, g_sums, g_counts = gemm.assign_accumulate(X, C0)
        p_labels, p_d2, p_sums, p_counts, lb, n_dist = pruned.establish(X, C0)
        np.testing.assert_array_equal(g_labels, p_labels)
        np.testing.assert_array_equal(g_d2, p_d2)
        np.testing.assert_array_equal(g_sums, p_sums)
        np.testing.assert_array_equal(g_counts, p_counts)
        assert n_dist == X.shape[0] * C0.shape[0]
        assert np.all(lb >= 0.0)

    def test_pruned_steps_match_gemm_and_prune(self, workload):
        # Walk one Lloyd trajectory with both kernels in lock-step; every
        # iteration must agree bitwise, and the evaluation count must fall
        # below the dense n*k once the centroids settle.
        X, C = workload
        n, k = X.shape[0], C.shape[0]
        gemm, pruned = GemmKernel(), PrunedKernel()
        labels, d2, sums, counts, lb, n_dist = pruned.establish(X, C)
        evals = [n_dist]
        anchor = np.array(C, copy=True)
        C = update_centroids(sums, counts, C)
        for _ in range(12):
            g_labels, g_d2, g_sums, g_counts = gemm.assign_accumulate(X, C)
            drift = centroid_drift(anchor, C)
            _, s = centroid_separation(C)
            labels, d2, sums, counts, lb, n_dist = \
                pruned.assign_accumulate_pruned(X, C, labels, d2, lb,
                                                drift, s)
            np.testing.assert_array_equal(g_labels, labels)
            np.testing.assert_array_equal(g_d2, d2)
            np.testing.assert_array_equal(g_sums, sums)
            np.testing.assert_array_equal(g_counts, counts)
            evals.append(n_dist)
            anchor = np.array(C, copy=True)
            C = update_centroids(sums, counts, C)
        assert evals[0] == n * k
        assert evals[-1] < n * k  # bounds actually pruned work

    def test_single_centroid_edge(self):
        X = np.arange(40, dtype=np.float64).reshape(20, 2)
        C = np.array([[3.0, 4.0]])
        pruned = PrunedKernel()
        labels, d2, sums, counts, lb, n_dist = pruned.establish(X, C)
        assert np.all(labels == 0)
        assert np.all(np.isinf(lb))  # no runner-up exists
        drift = np.zeros(1)
        _, s = centroid_separation(C)
        out = pruned.assign_accumulate_pruned(X, C, labels, d2, lb, drift, s)
        np.testing.assert_array_equal(out[0], labels)
        np.testing.assert_array_equal(out[1], d2)


# ---------------------------------------------------------------------------
# lloyd (level 0) parity
# ---------------------------------------------------------------------------

class TestLloydParity:
    @pytest.mark.parametrize("engine,workers", [
        ("serial", None), ("thread", 4), ("process", 2),
    ])
    def test_bit_identical_to_gemm(self, workload, engine, workers):
        X, C0 = workload
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            ref = lloyd(X, C0, max_iter=25, kernel="gemm")
            out = lloyd(X, C0, max_iter=25, kernel="pruned",
                        engine=engine, workers=workers)
        _assert_same_result(ref, out)

    def test_env_default_selects_pruned(self, workload, monkeypatch):
        X, C0 = workload
        monkeypatch.setenv("REPRO_KERNEL", "pruned")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            ref = lloyd(X, C0, max_iter=10, kernel="gemm")
            out = lloyd(X, C0, max_iter=10)  # kernel=None -> env
        _assert_same_result(ref, out)


# ---------------------------------------------------------------------------
# Executor (levels 1-3) parity across engines and reduce topologies
# ---------------------------------------------------------------------------

def _fit(machine, level, kernel, engine=None, workers=None, reduce=None,
         max_iter=25, n=1200, k=8, d=10, **kwargs):
    X, _ = gaussian_blobs(n=n, k=k, d=d, seed=5)
    model = HierarchicalKMeans(
        k, machine=machine, level=level, seed=3, max_iter=max_iter,
        kernel=kernel, engine=engine, workers=workers, reduce=reduce,
        **kwargs)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        return model.fit(X)


class TestExecutorParity:
    @pytest.mark.parametrize("level", [1, 2, 3])
    @pytest.mark.parametrize("engine,workers,reduce", [
        ("serial", None, "serial"),
        ("thread", 4, "tree"),
        ("process", 2, "serial"),
    ])
    def test_bit_identical_to_gemm(self, machine, level, engine, workers,
                                   reduce):
        # The reference runs under the *same* engine and reduce topology:
        # the reduce schedule legitimately changes summation order, and
        # the pruned kernel must be a no-op relative to gemm within any
        # one configuration.
        ref = _fit(machine, level, "gemm", engine=engine, workers=workers,
                   reduce=reduce)
        out = _fit(machine, level, "pruned", engine=engine, workers=workers,
                   reduce=reduce)
        _assert_same_result(ref, out)

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_ledger_charges_actual_evaluations(self, machine, level):
        # Pruned iterations cost fewer modelled compute seconds once the
        # bounds bite; everything non-compute is charged identically.
        ref = _fit(machine, level, "gemm")
        out = _fit(machine, level, "pruned")
        ref_cats = ref.ledger.total_by_category()
        out_cats = out.ledger.total_by_category()
        assert out_cats["compute"] < ref_cats["compute"]
        for category in ref_cats:
            if category != "compute":
                assert out_cats[category] == ref_cats[category]

    def test_evals_per_iteration_shrink(self, machine):
        X, _ = gaussian_blobs(n=1200, k=8, d=10, seed=5)
        from repro.core.level1 import Level1Executor
        executor = Level1Executor(machine, kernel="pruned")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            executor.run(X, np.array(X[:8], copy=True), max_iter=25, tol=0.0)
        evals = executor.pruned_evals_per_iteration
        assert evals[0] == 1200 * 8  # establishment sweep is dense
        assert min(evals) < 1200 * 8
        assert evals[-1] <= evals[0]

    def test_strict_cpe_with_explicit_pruned_raises(self, machine):
        with pytest.raises(ConfigurationError, match="strict_cpe"):
            _fit(machine, 2, "pruned", strict_cpe=True, max_iter=3)

    def test_strict_cpe_pins_env_kernel_to_naive(self, machine, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "pruned")
        ref = _fit(machine, 2, "naive", strict_cpe=True, max_iter=5)
        out = _fit(machine, 2, None, strict_cpe=True, max_iter=5)
        _assert_same_result(ref, out)


# ---------------------------------------------------------------------------
# Adversarial ties
# ---------------------------------------------------------------------------

class TestAdversarialTies:
    def test_equidistant_points_keep_argmin_tie_rule(self):
        # Integer coordinates: every distance is exact in float64, so a
        # tie is a true bitwise tie and the lowest-index rule must win in
        # both kernels.  Points at x=1 are exactly equidistant from the
        # centroids at x=0 and x=2; the skewed tail keeps the run moving
        # for several iterations.
        tied = np.array([[1.0, float(y)] for y in range(24)])
        anchors = np.array([[0.0, float(y)] for y in range(24)])
        far = np.array([[2.0, float(y)] for y in range(0, 48, 2)])
        X = np.vstack([tied, anchors, far])
        C0 = np.array([[0.0, 0.0], [2.0, 0.0], [1.0, 40.0]])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            ref = lloyd(X, C0, max_iter=20, kernel="gemm")
            out = lloyd(X, C0, max_iter=20, kernel="pruned")
        _assert_same_result(ref, out)

    def test_duplicate_centroids_tie(self):
        # Duplicated centroids are the hardest tie: distance differences
        # are exactly 0.0 for every sample, and drift of the loser is 0.
        rng = np.random.default_rng(2)
        X = rng.integers(-8, 8, size=(300, 4)).astype(np.float64)
        C0 = np.array(X[:5], copy=True)
        C0[3] = C0[0]  # exact duplicate
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            ref = lloyd(X, C0, max_iter=15, kernel="gemm")
            out = lloyd(X, C0, max_iter=15, kernel="pruned")
        _assert_same_result(ref, out)

    def test_integer_lattice_executor_parity(self, machine):
        rng = np.random.default_rng(9)
        X = rng.integers(0, 4, size=(600, 3)).astype(np.float64)
        model_kwargs = dict(machine=machine, level=1, seed=1, max_iter=20)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            ref = HierarchicalKMeans(6, kernel="gemm", **model_kwargs).fit(X)
            out = HierarchicalKMeans(6, kernel="pruned",
                                     **model_kwargs).fit(X)
        _assert_same_result(ref, out)


# ---------------------------------------------------------------------------
# Property-based bit-invariance
# ---------------------------------------------------------------------------

class TestHypothesisInvariance:
    @given(n=st.integers(20, 300), k=st.integers(1, 12),
           d=st.integers(1, 16), seed=st.integers(0, 2**16),
           engine_workers=st.sampled_from([("serial", None), ("thread", 2),
                                           ("thread", 4)]))
    @settings(max_examples=25, deadline=None)
    def test_lloyd_pruned_equals_gemm(self, n, k, d, seed, engine_workers):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        C0 = np.array(X[:k], copy=True)
        engine, workers = engine_workers
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            ref = lloyd(X, C0, max_iter=8, kernel="gemm")
            out = lloyd(X, C0, max_iter=8, kernel="pruned",
                        engine=engine, workers=workers)
        np.testing.assert_array_equal(ref.centroids, out.centroids)
        np.testing.assert_array_equal(ref.assignments, out.assignments)
        assert ref.inertia == out.inertia


# ---------------------------------------------------------------------------
# Faults, chaos, and recovery: replays stay identical, bounds invalidate
# ---------------------------------------------------------------------------

class TestFaultAndChaosParity:
    def _fault_fit(self, machine, kernel, **kwargs):
        return _fit(machine, 1, kernel, n=420, k=4, d=6, max_iter=30,
                    **kwargs)

    def test_fault_probe_order_matches_gemm(self, machine):
        # Probabilistic faults draw from the injector RNG once per probed
        # charge, so identical fault_events prove the pruned path charges
        # the identical dma/regcomm/network sequence.
        plan = FaultPlan([
            FaultSpec("transient_dma", iteration=2),
            FaultSpec("collective_timeout", probability=0.02),
            FaultSpec("degraded_link", iteration=1, bandwidth_factor=0.5,
                      duration=2),
        ], seed=99)
        ref = self._fault_fit(machine, "gemm", faults=plan, recovery="retry")
        out = self._fault_fit(machine, "pruned", faults=plan,
                              recovery="retry")
        _assert_same_result(ref, out)
        assert ref.fault_events == out.fault_events
        assert len(out.fault_events) >= 2

    def test_replan_invalidates_bounds_bit_identically(self, machine):
        # iteration=2: late enough that a checkpoint exists, early enough
        # that the (quickly converging) run actually reaches it.
        plan = FaultPlan([FaultSpec("cg_failure", iteration=2, cg_index=1)],
                         seed=7)
        ref = self._fault_fit(machine, "gemm", faults=plan,
                              recovery="replan", checkpoint_every=1)
        out = self._fault_fit(machine, "pruned", faults=plan,
                              recovery="replan", checkpoint_every=1)
        _assert_same_result(ref, out)
        assert ref.fault_events == out.fault_events
        assert any(e.action == "replanned" for e in out.fault_events)

    def test_nan_chaos_rollback_invalidates_bounds(self, machine):
        # A poisoned partial rolls the iteration back to the checkpoint;
        # the carried bounds must be invalidated with it, or the re-walked
        # trajectory would prune against pre-rollback state.
        clean = self._fault_fit(machine, "pruned")
        engine = SerialEngine(chaos=ChaosInjector(
            ChaosPlan([ChaosSpec("nan_result", task_id=2)])))
        survived = self._fault_fit(machine, "pruned", engine=engine,
                                   recovery="replan", checkpoint_every=1)
        assert any(e.kind == "rollback" for e in survived.host_events)
        np.testing.assert_array_equal(clean.centroids, survived.centroids)
        np.testing.assert_array_equal(clean.assignments,
                                      survived.assignments)
        assert clean.inertia == survived.inertia

    def test_task_chaos_absorbed_bit_identically(self, machine,
                                                 monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        ref = self._fault_fit(machine, "gemm")
        monkeypatch.setenv(
            "REPRO_CHAOS",
            "task_exception:p=0.05;slow_task:p=0.05,delay=0.001;seed=3")
        out = self._fault_fit(machine, "pruned", engine="thread", workers=4)
        np.testing.assert_array_equal(ref.centroids, out.centroids)
        np.testing.assert_array_equal(ref.assignments, out.assignments)
        assert ref.inertia == out.inertia


# ---------------------------------------------------------------------------
# Checkpoint-resume: restored runs re-establish instead of reusing bounds
# ---------------------------------------------------------------------------

class TestResumeInvalidation:
    def test_lloyd_interrupt_and_resume(self, tmp_path, workload):
        X, C0 = workload
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            full = lloyd(X, C0, max_iter=40, kernel="pruned")
            lloyd(X, C0, max_iter=5, kernel="pruned", checkpoint_every=1,
                  checkpoint_dir=str(tmp_path))
            resumed = lloyd(X, C0, max_iter=40, kernel="pruned",
                            checkpoint_every=1, checkpoint_dir=str(tmp_path),
                            resume=True)
        _assert_same_final(full, resumed)

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_executor_interrupt_and_resume(self, tmp_path, machine, level):
        gemm_full = _fit(machine, level, "gemm", n=420, k=4, d=6,
                         max_iter=40)
        full = _fit(machine, level, "pruned", n=420, k=4, d=6, max_iter=40)
        _fit(machine, level, "pruned", n=420, k=4, d=6, max_iter=4,
             checkpoint_every=1, checkpoint_dir=str(tmp_path))
        resumed = _fit(machine, level, "pruned", n=420, k=4, d=6,
                       max_iter=40, checkpoint_every=1,
                       checkpoint_dir=str(tmp_path), resume=True)
        _assert_same_final(full, resumed)
        _assert_same_final(gemm_full, resumed)

    def test_fresh_bounds_after_manual_invalidate(self):
        bounds = BlockBounds()
        assert not bounds.valid
        bounds.commit(np.zeros((2, 2)), np.zeros(4, dtype=np.int64),
                      np.zeros(4), np.zeros(4))
        assert bounds.valid
        bounds.invalidate()
        assert not bounds.valid
        assert bounds.labels is None and bounds.anchor is None


def _fit_like_cli(ckpt=None, resume=False):
    """In-process run matching the CLI invocation of the kill test."""
    X, _ = gaussian_blobs(n=420, k=4, d=6, seed=13)
    machine = toy_machine(n_nodes=1, cgs_per_node=2, mesh=4,
                          ldm_bytes=16 * 1024)
    model = HierarchicalKMeans(
        4, machine=machine, level=1, seed=13, max_iter=60,
        kernel="pruned", checkpoint_every=1,
        checkpoint_dir=None if ckpt is None else str(ckpt), resume=resume)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        return model.fit(X)


class TestKillAndResume:
    def test_sigkilled_pruned_run_resumes_bit_identical(self, tmp_path):
        """SIGKILL a pruned clustering process mid-run, resume, compare.

        The kill can land anywhere — including between a checkpoint write
        and the bound-state commit — so the resumed process proves that
        invalidation-on-resume reconstructs everything the crash dropped.
        """
        ckpt = tmp_path / "ckpt"
        src = os.path.join(os.path.dirname(repro.__file__), os.pardir)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src) \
            + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CHAOS"] = "slow_task:p=1.0,delay=0.05"
        child = subprocess.Popen(
            [sys.executable, "-m", "repro", "cluster",
             "--n", "420", "--k", "4", "--d", "6", "--toy",
             "--level", "1", "--seed", "13", "--max-iter", "60",
             "--kernel", "pruned",
             "--checkpoint-every", "1", "--checkpoint-dir", str(ckpt)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120
            path = ckpt / CHECKPOINT_FILENAME
            while not path.exists():
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("child never wrote a checkpoint")
                if child.poll() is not None:  # pragma: no cover
                    pytest.fail("child exited before it could be killed")
                time.sleep(0.01)
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=60)
        finally:
            if child.poll() is None:  # pragma: no cover
                child.kill()
                child.wait(timeout=60)

        full = _fit_like_cli()
        resumed = _fit_like_cli(ckpt, resume=True)
        _assert_same_final(full, resumed)


# ---------------------------------------------------------------------------
# Facade / resolution seams
# ---------------------------------------------------------------------------

class TestResolution:
    def test_facade_accepts_instance(self, machine):
        ref = _fit(machine, 1, "pruned", max_iter=5)
        out = _fit(machine, 1, PrunedKernel(), max_iter=5)
        _assert_same_result(ref, out)

    def test_resolver_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="kernel"):
            resolve_kernel("hamerly")
