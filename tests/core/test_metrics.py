"""Tests for clustering quality metrics, against hand-worked examples."""

import numpy as np
import pytest

from repro.core.metrics import (
    adjusted_rand_index,
    contingency,
    davies_bouldin,
    normalized_mutual_info,
    purity,
    silhouette_score,
)
from repro.data.synthetic import gaussian_blobs
from repro.errors import ConfigurationError, DataShapeError


class TestContingency:
    def test_hand_worked(self):
        a = np.array([0, 0, 1, 1])
        t = np.array([0, 1, 1, 1])
        table = contingency(a, t)
        np.testing.assert_array_equal(table, [[1, 1], [0, 2]])

    def test_length_mismatch(self):
        with pytest.raises(DataShapeError):
            contingency(np.zeros(2, int), np.zeros(3, int))

    def test_negative_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            contingency(np.array([-1, 0]), np.array([0, 0]))


class TestPurity:
    def test_perfect(self):
        a = np.array([0, 0, 1, 1])
        assert purity(a, a) == 1.0

    def test_relabelled_perfect(self):
        a = np.array([0, 0, 1, 1])
        t = np.array([1, 1, 0, 0])
        assert purity(a, t) == 1.0

    def test_hand_worked(self):
        a = np.array([0, 0, 0, 1])
        t = np.array([0, 0, 1, 1])
        # Cluster 0 majority = class 0 (2 of 3); cluster 1 all class 1.
        assert purity(a, t) == pytest.approx(3 / 4)


class TestNMI:
    def test_identical_partitions(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        assert normalized_mutual_info(a, a) == pytest.approx(1.0)

    def test_relabelling_invariant(self):
        a = np.array([0, 0, 1, 1])
        t = np.array([1, 1, 0, 0])
        assert normalized_mutual_info(a, t) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=5000)
        t = rng.integers(0, 4, size=5000)
        assert normalized_mutual_info(a, t) < 0.01

    def test_constant_partition_zero(self):
        a = np.zeros(10, dtype=int)
        t = np.array([0, 1] * 5)
        assert normalized_mutual_info(a, t) == 0.0


class TestARI:
    def test_identical_is_one(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(a, a) == pytest.approx(1.0)

    def test_relabelling_invariant(self):
        a = np.array([0, 0, 1, 1])
        t = np.array([3, 3, 1, 1])
        assert adjusted_rand_index(a, t) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, size=5000)
        t = rng.integers(0, 3, size=5000)
        assert abs(adjusted_rand_index(a, t)) < 0.02

    def test_hand_worked(self):
        # Known ARI example: ARI([0,0,1,1],[0,0,1,2]) = 0.5714...
        a = np.array([0, 0, 1, 1])
        t = np.array([0, 0, 1, 2])
        assert adjusted_rand_index(a, t) == pytest.approx(4 / 7, rel=1e-9)


class TestSilhouette:
    def test_well_separated_blobs_score_high(self):
        X, labels = gaussian_blobs(n=300, k=3, d=4, spread=0.01, seed=2)
        assert silhouette_score(X, labels, sample_size=None) > 0.8

    def test_random_labels_score_low(self):
        X, _ = gaussian_blobs(n=300, k=3, d=4, spread=0.01, seed=2)
        rng = np.random.default_rng(0)
        bad = rng.integers(0, 3, size=300)
        assert silhouette_score(X, bad, sample_size=None) < 0.1

    def test_sampling_close_to_exact(self):
        X, labels = gaussian_blobs(n=500, k=4, d=6, seed=5)
        exact = silhouette_score(X, labels, sample_size=None)
        sampled = silhouette_score(X, labels, sample_size=200, seed=1)
        assert sampled == pytest.approx(exact, abs=0.1)

    def test_single_cluster_rejected(self):
        X, _ = gaussian_blobs(n=20, k=2, d=2, seed=0)
        with pytest.raises(ConfigurationError):
            silhouette_score(X, np.zeros(20, dtype=int))

    def test_hand_worked_two_points_per_cluster(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.array([0, 0, 1, 1])
        # a = 1 for all; b = mean dist to other cluster.
        # point 0: b = (10+11)/2 = 10.5 -> s = 9.5/10.5
        score = silhouette_score(X, labels, sample_size=None)
        expected = np.mean([9.5 / 10.5, 8.5 / 9.5, 8.5 / 9.5, 9.5 / 10.5])
        assert score == pytest.approx(expected)


class TestDaviesBouldin:
    def test_tight_separated_clusters_score_low(self):
        X, labels = gaussian_blobs(n=300, k=3, d=4, spread=0.01, seed=7)
        centroids = np.stack([X[labels == j].mean(0) for j in range(3)])
        good = davies_bouldin(X, labels, centroids)
        rng = np.random.default_rng(0)
        bad_labels = rng.integers(0, 3, size=300)
        bad_centroids = np.stack(
            [X[bad_labels == j].mean(0) for j in range(3)])
        assert good < davies_bouldin(X, bad_labels, bad_centroids)

    def test_needs_two_clusters(self):
        X = np.zeros((5, 2))
        with pytest.raises(ConfigurationError):
            davies_bouldin(X, np.zeros(5, dtype=int), np.zeros((2, 2)))
