"""Kernel-backend and ledger-observer seams.

Two invariants hold across the whole executor stack:

* the ``gemm`` backend produces the same assignments (and inertias within
  1e-9) as the ``naive`` reference on every level, for arbitrary (n, k, d);
* ``model_costs=False`` (NullLedger) changes nothing about the numerics —
  identical centroids and assignments, just no time ledger.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import (
    KERNELS,
    GemmKernel,
    KernelBackend,
    NaiveKernel,
    PrunedKernel,
    resolve_kernel,
)
from repro.core.kmeans import HierarchicalKMeans
from repro.core.lloyd import lloyd
from repro.errors import ConfigurationError
from repro.machine.machine import toy_machine
from repro.runtime.ledger import LedgerProtocol, NullLedger, TimeLedger


@pytest.fixture(scope="module")
def machine():
    return toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                       ldm_bytes=16 * 1024)


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(3)
    return rng.normal(size=(2000, 16))


# ---------------------------------------------------------------------------
# Raw backend parity
# ---------------------------------------------------------------------------

class TestBackendParity:
    @given(n=st.integers(2, 400), k=st.integers(1, 32),
           d=st.integers(1, 48), seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_assign_parity(self, n, k, d, seed):
        rng = np.random.default_rng(seed)
        k = min(k, n)
        X = rng.normal(size=(n, d))
        C = rng.normal(size=(k, d))
        np.testing.assert_array_equal(
            NaiveKernel().assign(X, C), GemmKernel().assign(X, C))

    @given(n=st.integers(2, 200), k=st.integers(1, 16),
           d=st.integers(1, 32), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_pairwise_parity(self, n, k, d, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        C = rng.normal(size=(min(k, n), d))
        np.testing.assert_allclose(
            GemmKernel().pairwise_sq(X, C), NaiveKernel().pairwise_sq(X, C),
            rtol=0, atol=1e-9)

    def test_assign_with_distances_parity(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(500, 24))
        C = rng.normal(size=(12, 24))
        ia, da = NaiveKernel().assign_with_distances(X, C)
        ib, db = GemmKernel().assign_with_distances(X, C)
        np.testing.assert_array_equal(ia, ib)
        np.testing.assert_allclose(da, db, rtol=0, atol=1e-9)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_assign_accumulate_matches_unfused(self, kernel):
        from repro.core._common import accumulate
        rng = np.random.default_rng(19)
        X = rng.normal(size=(700, 20))
        C = rng.normal(size=(11, 20))
        backend = resolve_kernel(kernel)
        for chunk in (256, 4_000_000):
            idx, best, sums, counts = backend.assign_accumulate(
                X, C, chunk_elements=chunk)
            ref_idx, ref_best = backend.assign_with_distances(
                X, C, chunk_elements=chunk)
            ref_sums, ref_counts = accumulate(X, ref_idx, C.shape[0])
            np.testing.assert_array_equal(idx, ref_idx)
            np.testing.assert_array_equal(best, ref_best)
            np.testing.assert_array_equal(sums, ref_sums)
            np.testing.assert_array_equal(counts, ref_counts)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_sweep_winner_matches_assign_on_ties(self, kernel):
        # assign() and the sweeps behind assign_with_distances() /
        # assign_accumulate() must break near-exact ties identically: the
        # winner has to come from the same distance form in both paths
        # (the gemm partial form drops |x|^2; adding it back and clamping
        # before the argmin can flip ties).
        backend = resolve_kernel(kernel)
        rng = np.random.default_rng(23)
        for _ in range(20):
            base = rng.normal(size=(6, 4))
            # Duplicated / barely-perturbed centroids make exact and
            # near-exact ties; the 1e3 offset makes |x|^2 dwarf the gaps.
            C = np.vstack([base,
                           base + rng.normal(scale=1e-12, size=base.shape)])
            C += 1e3
            X = np.repeat(base, 4, axis=0) + 1e3
            ref = backend.assign(X, C)
            idx, _ = backend.assign_with_distances(X, C)
            np.testing.assert_array_equal(idx, ref)
            np.testing.assert_array_equal(
                backend.assign_accumulate(X, C)[0], ref)

    def test_chunk_rows_policy(self):
        # The naive form materialises a (rows, k, d) temporary, so its rows
        # shrink by a factor of d relative to the (rows, k) GEMM output.
        n, k, d, budget = 10_000, 16, 32, 4096
        assert NaiveKernel().chunk_rows(n, k, d, budget) == budget // (k * d)
        assert GemmKernel().chunk_rows(n, k, d, budget) == budget // k
        # Degenerate budgets still make progress.
        assert NaiveKernel().chunk_rows(n, k, d, 1) == 1

    def test_chunked_equals_unchunked(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(300, 8))
        C = rng.normal(size=(9, 8))
        g = GemmKernel()
        np.testing.assert_array_equal(
            g.assign(X, C, chunk_elements=2 * C.shape[0]), g.assign(X, C))

    def test_resolve_kernel(self):
        assert resolve_kernel("naive").name == "naive"
        assert resolve_kernel("gemm").name == "gemm"
        assert resolve_kernel("pruned").name == "pruned"
        inst = GemmKernel()
        assert resolve_kernel(inst) is inst
        with pytest.raises(ConfigurationError, match="kernel"):
            resolve_kernel("blas3000")
        assert set(KERNELS) == {"naive", "gemm", "pruned"}

    def test_resolve_kernel_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel(None).name == "naive"
        monkeypatch.setenv("REPRO_KERNEL", "pruned")
        assert resolve_kernel(None).name == "pruned"
        # Explicit arguments win over the environment.
        assert resolve_kernel("gemm").name == "gemm"
        monkeypatch.setenv("REPRO_KERNEL", "blas3000")
        with pytest.raises(ConfigurationError, match="kernel"):
            resolve_kernel(None)

    def test_backends_are_kernel_backends(self):
        assert isinstance(NaiveKernel(), KernelBackend)
        assert isinstance(GemmKernel(), KernelBackend)
        assert isinstance(PrunedKernel(), GemmKernel)


# ---------------------------------------------------------------------------
# Whole-stack parity: every level, both backends
# ---------------------------------------------------------------------------

LEVEL_KWARGS = [
    pytest.param(1, {}, id="level1"),
    pytest.param(2, {}, id="level2"),
    pytest.param(3, {}, id="level3"),
    pytest.param(3, {"bounded": True}, id="level3-bounded"),
]


class TestExecutorKernelParity:
    @pytest.mark.parametrize("level,extra", LEVEL_KWARGS)
    def test_gemm_matches_naive(self, machine, blobs, level, extra):
        runs = {}
        for kernel in KERNELS:
            model = HierarchicalKMeans(8, machine=machine, level=level,
                                       init="first", max_iter=25,
                                       kernel=kernel, **extra)
            runs[kernel] = model.fit(blobs)
        np.testing.assert_array_equal(runs["naive"].assignments,
                                      runs["gemm"].assignments)
        assert abs(runs["naive"].inertia
                   - runs["gemm"].inertia) <= 1e-9
        np.testing.assert_allclose(runs["naive"].centroids,
                                   runs["gemm"].centroids,
                                   rtol=0, atol=1e-9)

    @given(n=st.integers(50, 600), k=st.integers(2, 12),
           d=st.integers(2, 24), seed=st.integers(0, 999))
    @settings(max_examples=15, deadline=None)
    def test_lloyd_gemm_matches_naive(self, n, k, d, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        C0 = X[:k].copy()
        a = lloyd(X, C0, max_iter=10)
        b = lloyd(X, C0, max_iter=10, kernel="gemm")
        np.testing.assert_array_equal(a.assignments, b.assignments)
        assert abs(a.inertia - b.inertia) <= 1e-9

    def test_gemm_modelled_seconds_equal_naive(self, machine, blobs):
        """The cost model prices the plan, not the host arithmetic — both
        backends must charge identical modelled time."""
        runs = [HierarchicalKMeans(8, machine=machine, level=2,
                                   init="first", max_iter=10,
                                   kernel=kern).fit(blobs)
                for kern in KERNELS]
        assert runs[0].ledger.total() == runs[1].ledger.total()

    def test_strict_cpe_requires_naive(self, machine):
        from repro.core.level2 import Level2Executor
        with pytest.raises(ConfigurationError, match="strict_cpe"):
            Level2Executor(machine, strict_cpe=True, kernel="gemm")

    def test_predict_uses_selected_kernel(self, machine, blobs):
        model = HierarchicalKMeans(8, machine=machine, init="first",
                                   max_iter=10, kernel="gemm")
        model.fit(blobs)
        np.testing.assert_array_equal(
            model.predict(blobs),
            NaiveKernel().assign(blobs, model.result_.centroids))


# ---------------------------------------------------------------------------
# Ledger observer: NullLedger runs are numerically identical
# ---------------------------------------------------------------------------

class TestModelCostsOff:
    @pytest.mark.parametrize("level,extra", LEVEL_KWARGS)
    def test_null_ledger_preserves_numerics(self, machine, blobs, level,
                                            extra):
        ledgered = HierarchicalKMeans(8, machine=machine, level=level,
                                      init="first", max_iter=25,
                                      **extra).fit(blobs)
        pure = HierarchicalKMeans(8, machine=machine, level=level,
                                  init="first", max_iter=25,
                                  model_costs=False, **extra).fit(blobs)
        np.testing.assert_array_equal(ledgered.assignments, pure.assignments)
        np.testing.assert_array_equal(ledgered.centroids, pure.centroids)
        assert ledgered.inertia == pure.inertia
        assert ledgered.n_iter == pure.n_iter
        assert pure.ledger is None
        assert ledgered.ledger is not None and ledgered.ledger.total() > 0.0
        assert pure.mean_iteration_seconds() == 0.0

    def test_history_still_counts_iterations(self, machine, blobs):
        pure = HierarchicalKMeans(8, machine=machine, level=1, init="first",
                                  max_iter=25, model_costs=False).fit(blobs)
        assert [h.iteration for h in pure.history] == \
            list(range(1, pure.n_iter + 1))
        assert all(h.modelled_seconds == 0.0 for h in pure.history)

    def test_null_ledger_interface(self):
        ledger = NullLedger()
        assert isinstance(ledger, LedgerProtocol)
        assert not ledger.enabled
        ledger.charge("compute", "x", 1.0)  # discarded, not validated
        ledger.charge("not-a-category", "x", -5.0)  # still discarded
        assert ledger.charge_parallel("dma", "y", [1.0, 2.0]) == 0.0
        assert ledger.total() == 0.0
        assert ledger.records == ()
        assert ledger.next_iteration() == 1
        assert ledger.n_iterations == 1
        assert set(ledger.total_by_category()) == \
            set(TimeLedger().total_by_category())

    def test_time_ledger_is_protocol(self):
        assert isinstance(TimeLedger(), LedgerProtocol)
        assert TimeLedger().enabled
