"""Tests for the paper's LDM feasibility constraints (C1-C3 per level)."""

import numpy as np
import pytest

from repro.core.constraints import (
    bender_window,
    ldm_elements,
    level1_feasibility,
    level2_feasibility,
    level3_feasibility,
    max_feasible_k_level1,
    min_mgroup_level2,
    min_mprime_group_level3,
)
from repro.errors import ConfigurationError
from repro.machine.specs import sunway_spec, toy_spec

SPEC = sunway_spec(128)


class TestLdmElements:
    def test_float64(self):
        assert ldm_elements(65536, np.float64) == 8192

    def test_float32(self):
        assert ldm_elements(65536, np.float32) == 16384


class TestLevel1:
    def test_small_problem_feasible(self):
        assert level1_feasibility(16, 64, SPEC).feasible

    def test_c1_formula(self):
        report = level1_feasibility(10, 20, SPEC)
        c1 = next(c for c in report.checks if c.name == "C1")
        assert c1.required == 20 * 21 + 10

    def test_large_kd_infeasible(self):
        report = level1_feasibility(1000, 1000, SPEC)
        assert not report.feasible
        assert any(c.name == "C1" for c in report.violated())

    def test_c2_binds_alone(self):
        # d too big even with k = 1.
        report = level1_feasibility(1, 8192, SPEC)
        names = {c.name for c in report.violated()}
        assert "C2" in names

    def test_c3_binds_alone(self):
        report = level1_feasibility(8192, 1, SPEC)
        names = {c.name for c in report.violated()}
        assert "C3" in names

    def test_invalid_kd_rejected(self):
        with pytest.raises(ConfigurationError):
            level1_feasibility(0, 10, SPEC)

    def test_report_str_mentions_level(self):
        assert "Level 1" in str(level1_feasibility(4, 4, SPEC))


class TestLevel2:
    def test_mgroup_scales_k(self):
        k, d = 4000, 64
        assert not level2_feasibility(k, d, 1, SPEC).feasible
        assert level2_feasibility(k, d, 64, SPEC).feasible

    def test_c2_not_relaxed_by_mgroup(self):
        # The sample must still fit one LDM whatever mgroup is.
        report = level2_feasibility(4, 8192, 64, SPEC)
        assert not report.feasible

    def test_mgroup_bounds(self):
        with pytest.raises(ConfigurationError):
            level2_feasibility(4, 4, 0, SPEC)
        with pytest.raises(ConfigurationError):
            level2_feasibility(4, 4, 65, SPEC)

    def test_min_mgroup_is_minimal(self):
        k, d = 2048, 32
        mg = min_mgroup_level2(k, d, SPEC)
        assert mg is not None
        assert level2_feasibility(k, d, mg, SPEC).feasible
        if mg > 1:
            assert not level2_feasibility(k, d, mg - 1, SPEC).feasible

    def test_min_mgroup_none_when_hopeless(self):
        assert min_mgroup_level2(4, 10_000, SPEC) is None


class TestLevel3:
    def test_dimension_partition_relaxes_c2(self):
        # d = 8192 fails Level 1/2's C2 but fits 64 CPEs (C2'').
        assert not level2_feasibility(4, 8192, 64, SPEC).feasible
        assert level3_feasibility(4, 8192, 1, SPEC).feasible

    def test_c1_scales_with_group(self):
        k, d = 10_000, 4096
        small = level3_feasibility(k, d, 1, SPEC)
        large = level3_feasibility(k, d, 512, SPEC)
        assert not small.feasible
        assert large.feasible

    def test_paper_headline_d_extreme(self):
        # d=196,608 at k=2,000 must be feasible on the 4,096-node machine
        # with float32 (the experiments' storage type).
        spec = sunway_spec(4096)
        m = min_mprime_group_level3(2000, 196_608, spec, dtype=np.float32)
        assert m is not None
        assert level3_feasibility(2000, 196_608, m, spec,
                                  dtype=np.float32).feasible

    def test_paper_headline_k_extreme(self):
        spec = sunway_spec(4096)
        m = min_mprime_group_level3(160_000, 3072, spec, dtype=np.float32)
        assert m is not None

    def test_min_mprime_minimal(self):
        k, d = 10_000, 4096
        m = min_mprime_group_level3(k, d, SPEC)
        assert m is not None
        assert level3_feasibility(k, d, m, SPEC).feasible
        if m > 1:
            assert not level3_feasibility(k, d, m - 1, SPEC).feasible

    def test_mprime_cannot_exceed_machine(self):
        with pytest.raises(ConfigurationError):
            level3_feasibility(4, 4, SPEC.n_cgs + 1, SPEC)

    def test_none_when_d_slice_too_big(self):
        tiny = toy_spec(n_nodes=1, cgs_per_node=1, mesh=2, ldm_bytes=64)
        assert min_mprime_group_level3(2, 1000, tiny) is None


class TestConstraintOrdering:
    """Level l+1 must dominate level l: anything level l fits, l+1 fits."""

    @pytest.mark.parametrize("k,d", [(4, 4), (64, 32), (100, 60), (256, 16)])
    def test_level2_dominates_level1(self, k, d):
        if level1_feasibility(k, d, SPEC).feasible:
            assert level2_feasibility(k, d, 64, SPEC).feasible

    @pytest.mark.parametrize("k,d", [(4, 4), (4096, 64), (100, 2000)])
    def test_level3_dominates_level2(self, k, d):
        if level2_feasibility(k, d, 64, SPEC).feasible:
            assert level3_feasibility(k, d, SPEC.n_cgs, SPEC).feasible


class TestBenderWindow:
    def test_inside_window(self):
        assert bender_window(18, 140_256, cache_elements=10**5,
                             scratchpad_elements=10**8)

    def test_below_cache_not_interesting(self):
        assert not bender_window(2, 10, cache_elements=10**5,
                                 scratchpad_elements=10**8)

    def test_above_scratchpad_impossible(self):
        assert not bender_window(10**5, 10**5, cache_elements=10**5,
                                 scratchpad_elements=10**8)

    def test_invalid_memory_sizes(self):
        with pytest.raises(ConfigurationError):
            bender_window(4, 4, cache_elements=100, scratchpad_elements=100)
