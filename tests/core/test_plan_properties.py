"""Property-based tests on partition plans across random machines/workloads.

The plans are the contract between the planner, the LDM allocator, and the
executors; these properties assert, for arbitrary feasible configurations:

* slice maps tile their domains exactly (no overlap, no gap),
* the byte-level staging always fits once a plan was accepted,
* CG groups partition the machine disjointly,
* per-CPE element accounting matches the slice maps.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    plan_level1,
    plan_level2,
    plan_level3,
    stage_level1,
    stage_level2,
    stage_level3,
    stream_gate,
)
from repro.errors import PartitionError
from repro.machine.machine import toy_machine

machines = st.builds(
    toy_machine,
    n_nodes=st.integers(1, 4),
    cgs_per_node=st.integers(1, 3),
    mesh=st.sampled_from([2, 4]),
    ldm_bytes=st.sampled_from([4 * 1024, 16 * 1024, 64 * 1024]),
)

problems = st.tuples(
    st.integers(8, 2000),    # n
    st.integers(1, 64),      # k
    st.integers(1, 512),     # d
)


def _tiles(slices, total):
    assert slices[0][0] == 0
    assert slices[-1][1] == total
    for (a0, a1), (b0, b1) in zip(slices, slices[1:]):
        assert a1 == b0
        assert a0 <= a1


@given(machine=machines, problem=problems)
@settings(max_examples=60, deadline=None)
def test_level1_plan_invariants(machine, problem):
    n, k, d = problem
    assume(k <= n)
    try:
        plan = plan_level1(machine, n, k, d)
    except PartitionError:
        assume(False)
    _tiles(plan.sample_blocks, n)
    assert plan.units <= machine.n_cpes
    assert plan.units <= n
    assert all(0 <= cg < machine.n_cgs for cg in plan.cg_of_unit)
    stage_level1(plan, machine)  # byte-exact fit, never raises


@given(machine=machines, problem=problems,
       streaming=st.booleans())
@settings(max_examples=60, deadline=None)
def test_level2_plan_invariants(machine, problem, streaming):
    n, k, d = problem
    assume(k <= n)
    try:
        plan = plan_level2(machine, n, k, d, streaming=streaming)
    except PartitionError:
        assume(False)
    _tiles(plan.sample_blocks, n)
    _tiles(plan.centroid_slices, k)
    assert len(plan.centroid_slices) == plan.mgroup
    assert 1 <= plan.mgroup <= machine.cpes_per_cg
    assert plan.groups_per_cg * plan.mgroup <= machine.cpes_per_cg
    assert plan.cent_traffic_bytes_per_cpe() >= 0.0
    stage_level2(plan, machine)


@given(machine=machines, problem=problems,
       streaming=st.booleans(), aware=st.booleans())
@settings(max_examples=60, deadline=None)
def test_level3_plan_invariants(machine, problem, streaming, aware):
    n, k, d = problem
    assume(k <= n)
    try:
        plan = plan_level3(machine, n, k, d, streaming=streaming,
                           supernode_aware=aware)
    except PartitionError:
        assume(False)
    _tiles(plan.sample_blocks, n)
    _tiles(plan.centroid_slices, k)
    _tiles(plan.dim_slices, d)
    assert len(plan.dim_slices) == machine.cpes_per_cg
    assert len(plan.centroid_slices) == plan.mprime_group
    # Groups are disjoint, equally sized, in range.
    flat = [cg for g in plan.cg_groups for cg in g]
    assert len(flat) == len(set(flat))
    assert all(0 <= cg < machine.n_cgs for cg in flat)
    assert {len(g) for g in plan.cg_groups} == {plan.mprime_group}
    stage_level3(plan, machine)


@given(machine=machines, problem=problems)
@settings(max_examples=40, deadline=None)
def test_level_escalation_is_consistent(machine, problem):
    """If a lower level plans, so does every higher one (resident mode)."""
    n, k, d = problem
    assume(k <= n)

    def feasible(planner):
        try:
            planner(machine, n, k, d)
            return True
        except PartitionError:
            return False

    l1, l2, l3 = (feasible(p) for p in (plan_level1, plan_level2,
                                        plan_level3))
    if l1:
        assert l2
    if l2:
        assert l3


@given(machine=machines, problem=problems)
@settings(max_examples=40, deadline=None)
def test_streaming_dominates_resident(machine, problem):
    """Anything a resident Level-2/3 plan accepts, streaming accepts too —
    whenever streaming's own staging buffers fit the LDM.

    The two modes gate on different working sets: a resident plan needs the
    centroid/accumulator slices in LDM, a streaming plan needs
    ``STREAM_BUFFERS`` sample-slice staging buffers.  With a tiny LDM and a
    wide sample (e.g. d=129 at 4 KiB) the resident windows can fit while
    the staging double-buffers cannot, so streaming is legitimately
    infeasible there and dominance only holds where the stream gate passes.
    """
    n, k, d = problem
    assume(k <= n)
    itemsize = 8  # float64, the planners' default dtype
    d_slice_l3 = -(-d // machine.cpes_per_cg)
    for planner, stream_elems in ((plan_level2, d), (plan_level3, d_slice_l3)):
        try:
            planner(machine, n, k, d)
        except PartitionError:
            continue
        if not stream_gate(stream_elems, machine.ldm_bytes, itemsize):
            continue  # staging buffers cannot fit: streaming infeasible
        planner(machine, n, k, d, streaming=True)  # must not raise
