"""Tests for centroid initialisation strategies."""

import numpy as np
import pytest

from repro.core.init import init_centroids, spread_centroids
from repro.data.synthetic import gaussian_blobs
from repro.errors import ConfigurationError, DataShapeError


@pytest.fixture
def X():
    X, _ = gaussian_blobs(n=300, k=6, d=8, seed=1)
    return X


class TestFirst:
    def test_takes_first_k_rows(self, X):
        C = init_centroids(X, 4, method="first")
        np.testing.assert_allclose(C, X[:4])

    def test_returns_copy(self, X):
        C = init_centroids(X, 2, method="first")
        C[0, 0] = 1e9
        assert X[0, 0] != 1e9


class TestRandom:
    def test_rows_come_from_data(self, X):
        C = init_centroids(X, 5, method="random", seed=3)
        for row in C:
            assert any(np.allclose(row, x) for x in X)

    def test_distinct_rows(self, X):
        C = init_centroids(X, 50, method="random", seed=3)
        assert len(np.unique(C, axis=0)) == 50

    def test_seeded_reproducibility(self, X):
        a = init_centroids(X, 5, method="random", seed=42)
        b = init_centroids(X, 5, method="random", seed=42)
        np.testing.assert_array_equal(a, b)

    def test_generator_accepted(self, X):
        rng = np.random.default_rng(7)
        C = init_centroids(X, 3, method="random", seed=rng)
        assert C.shape == (3, 8)


class TestKMeansPlusPlus:
    def test_shape_and_membership(self, X):
        C = init_centroids(X, 6, method="kmeans++", seed=0)
        assert C.shape == (6, 8)
        for row in C:
            assert any(np.allclose(row, x) for x in X)

    def test_seeded_reproducibility(self, X):
        a = init_centroids(X, 6, method="kmeans++", seed=5)
        b = init_centroids(X, 6, method="kmeans++", seed=5)
        np.testing.assert_array_equal(a, b)

    def test_spreads_better_than_first(self, X):
        # D^2 seeding should cover the 6 true blobs better than the first
        # 6 rows (which may share a blob): compare min pairwise distance.
        def min_pairwise(C):
            d = ((C[:, None] - C[None]) ** 2).sum(-1)
            return d[~np.eye(len(C), dtype=bool)].min()

        pp = init_centroids(X, 6, method="kmeans++", seed=0)
        first = init_centroids(X, 6, method="first")
        assert min_pairwise(pp) >= min_pairwise(first)

    def test_duplicate_points_fallback(self):
        X = np.ones((10, 3))  # all identical: D^2 mass goes to zero
        C = init_centroids(X, 3, method="kmeans++", seed=0)
        assert C.shape == (3, 3)
        np.testing.assert_allclose(C, 1.0)


class TestValidation:
    def test_unknown_method(self, X):
        with pytest.raises(ConfigurationError, match="unknown init method"):
            init_centroids(X, 3, method="forgy")

    def test_k_bounds(self, X):
        with pytest.raises(ConfigurationError):
            init_centroids(X, 0)
        with pytest.raises(ConfigurationError):
            init_centroids(X, X.shape[0] + 1)

    def test_non_2d_rejected(self):
        with pytest.raises(DataShapeError):
            init_centroids(np.zeros(10), 2)


class TestSpreadCentroids:
    def test_shape_and_bounds(self):
        C = spread_centroids(5, 3, low=-2.0, high=2.0, seed=1)
        assert C.shape == (5, 3)
        assert (C >= -2.0).all() and (C <= 2.0).all()

    def test_invalid_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            spread_centroids(0, 3)
