"""A worker SIGKILL'd mid-run never changes the numbers.

Sibling of ``test_resume.py``: that file kills the whole *parent* and
proves the durable checkpoint restores the trajectory; this one kills a
*worker* under the process engine and proves the run does not even notice
numerically — the supervisor respawns the slot, re-executes the lost task
in canonical order, and the result stays bit-identical to the fault-free
serial engine.

Two kill vectors are covered: a chaos-injected SIGKILL pinned to a task
that runs at iteration >= 1 (deterministic placement), and an external
``os.kill`` from a watcher thread with no coordination at all (lands
wherever it lands — parity must hold regardless).
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.init import init_centroids
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.runtime.chaos import ChaosInjector, parse_chaos_plan
from repro.runtime.engine import SerialEngine, shutdown_pools
from repro.runtime.process_engine import _PROCESS_POOLS, ProcessEngine


@pytest.fixture(scope="module")
def workload():
    X, _ = gaussian_blobs(n=600, k=4, d=5, seed=13)
    C0 = init_centroids(X, 4, method="first")
    return X, C0


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_pools()


#: Small chunks so one lloyd iteration fans out over many tasks (and a
#: kill mid-iteration leaves genuinely in-flight work to re-execute).
CHUNK = 64


def _run(engine, workload, max_iter=10):
    X, C0 = workload
    return lloyd(X, C0, max_iter=max_iter, engine=engine,
                 chunk_elements=CHUNK)


def _assert_bit_identical(a, b):
    np.testing.assert_array_equal(a.centroids, b.centroids)
    np.testing.assert_array_equal(a.assignments, b.assignments)
    assert a.inertia == b.inertia
    assert a.n_iter == b.n_iter
    assert [s.inertia for s in a.history] == [s.inertia for s in b.history]


def test_worker_killed_at_iteration_one_is_bit_identical(workload):
    # Task ids are issued in submission order across the whole run, so a
    # kill pinned past one iteration's worth of tasks lands at
    # iteration >= 1 by construction.
    X, _ = workload
    tasks_per_iter = -(-X.size // CHUNK)  # ceil: blocks per assign phase
    victim = tasks_per_iter + 2
    plan = parse_chaos_plan(f"worker_kill@{victim};seed=3")
    engine = ProcessEngine(workers=2, chaos=ChaosInjector(plan))

    serial = _run(SerialEngine(), workload)
    crashed = _run(engine, workload)
    _assert_bit_identical(serial, crashed)

    kinds = [e.kind for e in crashed.host_events]
    assert "worker_lost" in kinds
    assert "worker_respawn" in kinds
    lost = next(e for e in crashed.host_events if e.kind == "worker_lost")
    assert lost.iteration >= 1


def test_externally_sigkilled_worker_is_bit_identical(workload):
    # No chaos plan at all: a watcher thread SIGKILLs a live worker while
    # the run is in flight, exactly like an OOM killer would.
    engine = ProcessEngine(workers=2)
    serial = _run(SerialEngine(), workload, max_iter=30)

    killed = threading.Event()

    def _assassin():
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and not killed.is_set():
            pool = _PROCESS_POOLS.get(2)
            if pool is not None:
                for worker in pool.slots:
                    if worker is not None and worker.process.is_alive():
                        try:
                            os.kill(worker.process.pid, signal.SIGKILL)
                        except (OSError, TypeError):
                            continue
                        killed.set()
                        return
            time.sleep(0.002)

    watcher = threading.Thread(target=_assassin, daemon=True)
    watcher.start()
    crashed = _run(engine, workload, max_iter=30)
    watcher.join(timeout=12.0)

    _assert_bit_identical(serial, crashed)
    if killed.is_set():
        kinds = [e.kind for e in crashed.host_events]
        assert "worker_lost" in kinds or "worker_respawn" in kinds


def test_repeated_kills_across_iterations_stay_identical(workload):
    # A flaky host: every task has a kill chance, spread over the whole
    # run.  Deaths at any iteration must leave the trajectory untouched.
    plan = parse_chaos_plan("worker_kill:p=0.15;seed=29")
    engine = ProcessEngine(workers=2, chaos=ChaosInjector(plan))
    serial = _run(SerialEngine(), workload)
    crashed = _run(engine, workload)
    _assert_bit_identical(serial, crashed)
    respawns = [e for e in crashed.host_events if e.kind == "worker_respawn"]
    assert respawns, "expected the flaky plan to kill at least one worker"
