"""Tests for the Level 1/2/3 executors: correctness vs the serial baseline.

The central contract of the reproduction: every partitioned executor must
produce exactly the serial Lloyd trajectory (identical assignments,
centroids within fp-reassociation tolerance) for any feasible configuration,
while charging a plausible cost breakdown to its ledger.
"""

import warnings

import numpy as np
import pytest

from repro.core.init import init_centroids
from repro.core.level1 import Level1Executor, run_level1
from repro.core.level2 import Level2Executor, run_level2
from repro.core.level3 import Level3Executor, run_level3
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.errors import ConfigurationError, ConvergenceWarning
from repro.machine.machine import toy_machine

RUNNERS = {1: run_level1, 2: run_level2, 3: run_level3}
EXECUTORS = {1: Level1Executor, 2: Level2Executor, 3: Level3Executor}


@pytest.fixture(scope="module")
def machine():
    return toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                       ldm_bytes=64 * 1024)


@pytest.fixture(scope="module")
def workload():
    X, _ = gaussian_blobs(n=500, k=7, d=12, seed=13)
    C0 = init_centroids(X, 7, method="first")
    return X, C0


@pytest.fixture(scope="module")
def reference(workload):
    X, C0 = workload
    return lloyd(X, C0, max_iter=60)


@pytest.mark.parametrize("level", [1, 2, 3])
class TestEquivalenceWithSerial:
    def test_assignments_identical(self, level, machine, workload, reference):
        X, C0 = workload
        result = RUNNERS[level](X, C0, machine, max_iter=60)
        np.testing.assert_array_equal(result.assignments,
                                      reference.assignments)

    def test_centroids_match(self, level, machine, workload, reference):
        X, C0 = workload
        result = RUNNERS[level](X, C0, machine, max_iter=60)
        np.testing.assert_allclose(result.centroids, reference.centroids,
                                   rtol=1e-9, atol=1e-12)

    def test_same_iteration_count_and_convergence(self, level, machine,
                                                  workload, reference):
        X, C0 = workload
        result = RUNNERS[level](X, C0, machine, max_iter=60)
        assert result.n_iter == reference.n_iter
        assert result.converged == reference.converged

    def test_inertia_matches(self, level, machine, workload, reference):
        X, C0 = workload
        result = RUNNERS[level](X, C0, machine, max_iter=60)
        assert result.inertia == pytest.approx(reference.inertia, rel=1e-9)

    def test_level_attribute(self, level, machine, workload):
        X, C0 = workload
        result = RUNNERS[level](X, C0, machine, max_iter=2)
        assert result.level == level


@pytest.mark.parametrize("level", [2, 3])
class TestStrictCpeDataflow:
    """Strict mode walks the per-CPE/per-slice dataflow explicitly and must
    agree with both the fast path and the serial baseline."""

    def test_strict_equals_fast(self, level, machine, workload):
        X, C0 = workload
        fast = RUNNERS[level](X, C0, machine, max_iter=10)
        strict = RUNNERS[level](X, C0, machine, max_iter=10, strict_cpe=True)
        np.testing.assert_array_equal(fast.assignments, strict.assignments)
        np.testing.assert_allclose(fast.centroids, strict.centroids,
                                   rtol=1e-9)

    def test_strict_with_real_slicing(self, level):
        # A tiny LDM forces k (and d for Level 3) to be genuinely sliced.
        machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                              ldm_bytes=2048)
        X, _ = gaussian_blobs(n=300, k=20, d=16, seed=5)
        C0 = init_centroids(X, 20, method="first")
        ref = lloyd(X, C0, max_iter=30)
        result = RUNNERS[level](X, C0, machine, max_iter=30, strict_cpe=True)
        np.testing.assert_array_equal(result.assignments, ref.assignments)


class TestLedgers:
    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_every_iteration_charged(self, level, machine, workload):
        X, C0 = workload
        result = RUNNERS[level](X, C0, machine, max_iter=5)
        ledger = result.ledger
        assert ledger is not None
        assert ledger.n_iterations == result.n_iter
        for i in range(1, result.n_iter + 1):
            assert ledger.iteration_time(i) > 0

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_all_categories_used(self, level, machine, workload):
        X, C0 = workload
        result = RUNNERS[level](X, C0, machine, max_iter=3)
        totals = result.ledger.total_by_category()
        assert totals["dma"] > 0
        assert totals["compute"] > 0
        assert totals["regcomm"] > 0
        assert totals["network"] > 0  # multi-node machine

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_history_records_modelled_seconds(self, level, machine, workload):
        X, C0 = workload
        result = RUNNERS[level](X, C0, machine, max_iter=3)
        assert all(s.modelled_seconds > 0 for s in result.history)

    def test_single_node_has_no_network_time_at_level1(self, workload):
        machine = toy_machine(n_nodes=1, cgs_per_node=1, mesh=2,
                              ldm_bytes=64 * 1024)
        X, C0 = workload
        result = run_level1(X, C0, machine, max_iter=2)
        assert result.ledger.total_by_category()["network"] == 0.0


class TestCostTrends:
    """Modelled time must respond to scale the way the paper's analysis says."""

    def test_level1_scales_down_with_more_nodes(self):
        # Big enough that compute/DMA dominate the collective latency;
        # undersized workloads genuinely stop strong-scaling.
        X, _ = gaussian_blobs(n=6000, k=24, d=64, seed=13)
        C0 = init_centroids(X, 24, method="first")
        small = run_level1(X, C0, toy_machine(1, 2, 2, 64 * 1024), max_iter=2)
        big = run_level1(X, C0, toy_machine(4, 2, 2, 64 * 1024), max_iter=2)
        assert big.mean_iteration_seconds() < small.mean_iteration_seconds()

    def test_level2_read_amplification(self, machine):
        # Larger mgroup re-reads every sample more times: T'read grows.
        X, _ = gaussian_blobs(n=400, k=8, d=16, seed=2)
        C0 = init_centroids(X, 8, method="first")
        small = run_level2(X, C0, machine, mgroup=1, max_iter=2)
        large = run_level2(X, C0, machine, mgroup=4, max_iter=2)
        dma_small = small.ledger.total_by_category()["dma"]
        dma_large = large.ledger.total_by_category()["dma"]
        assert dma_large > dma_small

    def test_level3_mprime_affects_groups(self, machine):
        X, _ = gaussian_blobs(n=400, k=8, d=16, seed=2)
        C0 = init_centroids(X, 8, method="first")
        one = Level3Executor(machine, mprime_group=1)
        r1 = one.run(X, C0, max_iter=2)
        two = Level3Executor(machine, mprime_group=2)
        r2 = two.run(X, C0, max_iter=2)
        assert one.plan.n_groups == 4
        assert two.plan.n_groups == 2
        np.testing.assert_array_equal(r1.assignments, r2.assignments)


class TestEdgeCases:
    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_n_smaller_than_units(self, level, machine):
        X, _ = gaussian_blobs(n=6, k=2, d=4, seed=1)
        C0 = init_centroids(X, 2, method="first")
        ref = lloyd(X, C0, max_iter=20)
        result = RUNNERS[level](X, C0, machine, max_iter=20)
        np.testing.assert_array_equal(result.assignments, ref.assignments)

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_k_equals_one(self, level, machine):
        X, _ = gaussian_blobs(n=64, k=2, d=4, seed=1)
        C0 = X[:1].copy()
        result = RUNNERS[level](X, C0, machine, max_iter=10)
        np.testing.assert_allclose(result.centroids[0], X.mean(axis=0))

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_max_iter_one(self, level, machine, workload):
        X, C0 = workload
        result = RUNNERS[level](X, C0, machine, max_iter=1)
        assert result.n_iter == 1

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_unconverged_run_warns(self, level, machine, workload):
        X, C0 = workload
        with pytest.warns(ConvergenceWarning, match="did not converge"):
            result = RUNNERS[level](X, C0, machine, max_iter=1)
        assert not result.converged

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_converged_run_does_not_warn(self, level, machine, workload):
        X, C0 = workload
        with warnings.catch_warnings():
            warnings.simplefilter("error", ConvergenceWarning)
            result = RUNNERS[level](X, C0, machine, max_iter=60)
        assert result.converged

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_empty_cluster_keeps_centroid(self, level, machine):
        # Place one centroid far away so it captures nothing.
        X = np.random.default_rng(3).normal(size=(60, 4))
        C0 = np.vstack([X[:3], np.full((1, 4), 1e6)])
        result = RUNNERS[level](X, C0, machine, max_iter=3)
        np.testing.assert_allclose(result.centroids[3], 1e6)

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_invalid_max_iter(self, level, machine, workload):
        X, C0 = workload
        with pytest.raises(ConfigurationError):
            RUNNERS[level](X, C0, machine, max_iter=0)

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_executor_reports_plan_after_setup(self, level, machine,
                                               workload):
        X, C0 = workload
        executor = EXECUTORS[level](machine)
        with pytest.raises(RuntimeError):
            _ = executor.plan
        executor.run(X, C0, max_iter=1)
        assert executor.plan.n == X.shape[0]


class TestCollectiveAlgorithms:
    @pytest.mark.parametrize("algorithm",
                             ["ring", "tree", "recursive-doubling"])
    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_results_independent_of_algorithm(self, level, algorithm,
                                              machine, workload, reference):
        X, C0 = workload
        result = RUNNERS[level](X, C0, machine, max_iter=60,
                                collective_algorithm=algorithm)
        np.testing.assert_array_equal(result.assignments,
                                      reference.assignments)
