"""Tests for executor internals: phase labels, setup epoch, charge helper."""

import numpy as np
import pytest

from repro.core.executor_base import LevelExecutor
from repro.core.init import init_centroids
from repro.core.level1 import run_level1
from repro.core.level2 import run_level2
from repro.core.level3 import run_level3
from repro.data.synthetic import gaussian_blobs
from repro.machine.machine import toy_machine

RUNNERS = {1: run_level1, 2: run_level2, 3: run_level3}


@pytest.fixture(scope="module")
def machine():
    return toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                       ldm_bytes=64 * 1024)


@pytest.fixture(scope="module")
def workload():
    X, _ = gaussian_blobs(n=400, k=6, d=10, seed=2)
    return X, init_centroids(X, 6, method="first")


class TestPhaseLabels:
    @pytest.mark.parametrize("level,expected", [
        (1, {"l1.assign.stream", "l1.assign.distances",
             "l1.update.intra_cg_allreduce", "l1.update.divide"}),
        (2, {"l2.assign.stream", "l2.assign.distances",
             "l2.assign.minloc", "l2.update.accumulate",
             "l2.update.divide"}),
        (3, {"l3.assign.stream", "l3.assign.distances",
             "l3.assign.dim_reduce", "l3.update.accumulate",
             "l3.update.divide"}),
    ])
    def test_expected_phases_charged(self, machine, workload, level,
                                     expected):
        X, C0 = workload
        result = RUNNERS[level](X, C0, machine, max_iter=2)
        labels = {r.label for r in result.ledger.records}
        missing = expected - labels
        assert not missing, f"level {level} never charged {missing}"

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_setup_charges_live_in_epoch_zero(self, machine, workload,
                                              level):
        X, C0 = workload
        result = RUNNERS[level](X, C0, machine, max_iter=2)
        setup_records = [r for r in result.ledger.records
                         if r.iteration == 0]
        assert setup_records, "setup epoch must charge the initial scatter"
        assert all("setup" in r.label for r in setup_records)

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_iterations_have_constant_cost_structure(self, machine,
                                                     workload, level):
        """Lloyd iterations are data-oblivious in volume: every iteration
        charges the same phase set (amounts may differ via accumulate
        skew, but only mildly)."""
        X, C0 = workload
        result = RUNNERS[level](X, C0, machine, max_iter=4)
        per_iter_labels = {}
        for r in result.ledger.records:
            if r.iteration >= 1:
                per_iter_labels.setdefault(r.iteration, set()).add(r.label)
        label_sets = list(per_iter_labels.values())
        assert all(s == label_sets[0] for s in label_sets)


class TestChargeStreamHelper:
    class _Dummy(LevelExecutor):
        level = 1

        def setup(self, X, C):  # pragma: no cover - unused
            pass

        def iterate(self, X, C):  # pragma: no cover - unused
            raise NotImplementedError

    @pytest.fixture
    def executor(self, machine):
        return self._Dummy(machine)

    def test_no_overlap_charges_both(self, executor):
        executor.charge_stream_phases("t", [1.0, 2.0], [3.0, 0.5])
        totals = executor.ledger.total_by_category()
        assert totals["dma"] == pytest.approx(2.0)
        assert totals["compute"] == pytest.approx(3.0)

    def test_overlap_charges_max_to_dominant_category(self, machine):
        ex = self._Dummy(machine, overlap_dma=True)
        ex.charge_stream_phases("t", [5.0], [3.0])
        totals = ex.ledger.total_by_category()
        assert totals["dma"] == pytest.approx(5.0)
        assert totals["compute"] == 0.0

        ex2 = self._Dummy(machine, overlap_dma=True)
        ex2.charge_stream_phases("t", [1.0], [3.0])
        totals2 = ex2.ledger.total_by_category()
        assert totals2["compute"] == pytest.approx(3.0)
        assert totals2["dma"] == 0.0

    def test_overlap_total_is_max(self, machine):
        ex = self._Dummy(machine, overlap_dma=True)
        ex.charge_stream_phases("t", [4.0], [7.0])
        assert ex.ledger.total() == pytest.approx(7.0)


class TestLedgerIsolationBetweenRuns:
    def test_fresh_executor_has_fresh_ledger(self, machine, workload):
        X, C0 = workload
        a = run_level2(X, C0, machine, max_iter=2)
        b = run_level2(X, C0, machine, max_iter=2)
        assert a.ledger is not b.ledger
        assert a.ledger.total() == pytest.approx(b.ledger.total())

    def test_deterministic_charging(self, machine, workload):
        X, C0 = workload
        runs = [run_level3(X, C0, machine, max_iter=3) for _ in range(2)]
        t0 = [r.seconds for r in runs[0].ledger.records]
        t1 = [r.seconds for r in runs[1].ledger.records]
        np.testing.assert_array_equal(t0, t1)
