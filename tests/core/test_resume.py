"""Resume-from-durable-checkpoint: the continuation is bit-identical.

Assignments are a pure function of ``(X, C)``, so ``(iteration,
centroids)`` is complete restart state: a run killed at any point and
resumed from its last durable snapshot must converge to exactly the
centroids, assignments, and inertia of the uninterrupted run.
"""

import os
import signal
import subprocess
import sys
import time
import warnings

import numpy as np
import pytest

import repro
from repro.core.checkpoint import CHECKPOINT_FILENAME
from repro.core.init import init_centroids
from repro.core.kmeans import HierarchicalKMeans
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.errors import ConfigurationError, ConvergenceWarning
from repro.machine.machine import toy_machine


@pytest.fixture(scope="module")
def workload():
    X, _ = gaussian_blobs(n=420, k=4, d=6, seed=8)
    C0 = init_centroids(X, 4, method="first")
    return X, C0


def _assert_same_result(a, b):
    np.testing.assert_array_equal(a.centroids, b.centroids)
    np.testing.assert_array_equal(a.assignments, b.assignments)
    assert a.inertia == b.inertia
    assert a.n_iter == b.n_iter
    assert a.converged == b.converged


class TestLloydResume:
    def test_interrupt_and_resume_bit_identical(self, tmp_path, workload):
        X, C0 = workload
        full = lloyd(X, C0, max_iter=60)
        assert full.converged

        # "Crash" after 5 iterations (the iteration cap plays the kill),
        # then resume from the durable snapshot.
        ckpt = str(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            lloyd(X, C0, max_iter=5, checkpoint_every=1, checkpoint_dir=ckpt)
        resumed = lloyd(X, C0, max_iter=60, checkpoint_every=1,
                        checkpoint_dir=ckpt, resume=True)
        _assert_same_result(full, resumed)
        assert any(e.kind == "resume" for e in resumed.host_events)

    def test_resume_from_empty_dir_is_cold_start(self, tmp_path, workload):
        X, C0 = workload
        full = lloyd(X, C0, max_iter=60)
        resumed = lloyd(X, C0, max_iter=60, checkpoint_dir=str(tmp_path),
                        resume=True)
        _assert_same_result(full, resumed)

    def test_resume_without_dir_rejected(self, workload):
        X, C0 = workload
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            lloyd(X, C0, resume=True)

    def test_resume_shape_mismatch_rejected(self, tmp_path, workload):
        X, C0 = workload
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            lloyd(X, C0, max_iter=3, checkpoint_every=1,
                  checkpoint_dir=str(tmp_path))
        with pytest.raises(ConfigurationError, match="shape"):
            lloyd(X, C0[:-1], max_iter=10, checkpoint_dir=str(tmp_path),
                  resume=True)

    def test_resume_past_max_iter_still_usable(self, tmp_path, workload):
        # A snapshot at iteration >= max_iter runs zero iterations; the
        # result must still label against the restored centroids.
        X, C0 = workload
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            lloyd(X, C0, max_iter=6, checkpoint_every=1,
                  checkpoint_dir=str(tmp_path))
        result = lloyd(X, C0, max_iter=5, checkpoint_dir=str(tmp_path),
                       resume=True)
        assert (result.assignments >= 0).all()
        assert np.isfinite(result.inertia)


def _fit(level, tmp_path=None, resume=False, max_iter=60, engine=None,
         workers=None):
    X, _ = gaussian_blobs(n=420, k=4, d=6, seed=8)
    model = HierarchicalKMeans(
        4, machine=toy_machine(n_nodes=2), level=level, seed=13,
        max_iter=max_iter, checkpoint_every=1,
        checkpoint_dir=None if tmp_path is None else str(tmp_path),
        resume=resume, engine=engine, workers=workers)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        return model.fit(X)


class TestExecutorResume:
    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_interrupt_and_resume_bit_identical(self, tmp_path, level):
        full = _fit(level)
        _fit(level, tmp_path, max_iter=4)  # the "killed" run
        resumed = _fit(level, tmp_path, resume=True)
        _assert_same_result(full, resumed)
        # Epoch numbering continued where the killed run left off, so the
        # overlapping telemetry lines up.
        full_by_it = {s.iteration: s.inertia for s in full.history}
        for stats in resumed.history:
            assert full_by_it[stats.iteration] == stats.inertia

    def test_resume_across_engines(self, tmp_path):
        # Killed under the serial engine, resumed under the thread engine:
        # the engine changes scheduling only, so the continuation is still
        # bit-identical.
        full = _fit(1)
        _fit(1, tmp_path, max_iter=4, engine="serial")
        resumed = _fit(1, tmp_path, resume=True, engine="thread", workers=4)
        _assert_same_result(full, resumed)

    def test_facade_resume_needs_dir(self):
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            HierarchicalKMeans(4, machine=toy_machine(n_nodes=1),
                               resume=True)

    def test_facade_resume_rejects_multi_init(self, tmp_path):
        with pytest.raises(ConfigurationError, match="n_init"):
            HierarchicalKMeans(4, machine=toy_machine(n_nodes=1),
                               checkpoint_dir=str(tmp_path), resume=True,
                               n_init=3)


def _fit_like_cli(ckpt=None, resume=False):
    """In-process run matching the CLI invocation of the kill test exactly.

    Same data seed, same toy-machine geometry, same model knobs: the block
    boundaries (and hence the float summation order) are a function of the
    machine, so only an identical configuration replays the identical
    trajectory.
    """
    X, _ = gaussian_blobs(n=420, k=4, d=6, seed=13)
    machine = toy_machine(n_nodes=1, cgs_per_node=2, mesh=4,
                          ldm_bytes=16 * 1024)
    model = HierarchicalKMeans(
        4, machine=machine, level=1, seed=13, max_iter=60,
        checkpoint_every=1,
        checkpoint_dir=None if ckpt is None else str(ckpt), resume=resume)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        return model.fit(X)


class TestKillAndResume:
    def test_sigkilled_run_resumes_bit_identical(self, tmp_path):
        """Hard-kill a clustering process mid-run; resume from its snapshot.

        The child is slowed with host chaos (slow_task on every block, a
        pure scheduling perturbation) so SIGKILL lands mid-run; whatever
        snapshot the atomic writes left behind, the resumed run must land
        on exactly the uninterrupted trajectory's fixed point.
        """
        ckpt = tmp_path / "ckpt"
        src = os.path.join(os.path.dirname(repro.__file__), os.pardir)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src) \
            + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CHAOS"] = "slow_task:p=1.0,delay=0.05"
        child = subprocess.Popen(
            [sys.executable, "-m", "repro", "cluster",
             "--n", "420", "--k", "4", "--d", "6", "--toy",
             "--level", "1", "--seed", "13", "--max-iter", "60",
             "--checkpoint-every", "1", "--checkpoint-dir", str(ckpt)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # Wait for at least one durable snapshot, then kill -9.
            deadline = time.monotonic() + 120
            path = ckpt / CHECKPOINT_FILENAME
            while not path.exists():
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("child never wrote a checkpoint")
                if child.poll() is not None:  # pragma: no cover
                    pytest.fail("child exited before it could be killed")
                time.sleep(0.01)
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=60)
        finally:
            if child.poll() is None:  # pragma: no cover
                child.kill()
                child.wait(timeout=60)

        full = _fit_like_cli()
        resumed = _fit_like_cli(ckpt, resume=True)
        _assert_same_result(full, resumed)
