"""Tests for the HierarchicalKMeans facade and level auto-selection."""

import numpy as np
import pytest

from repro.core.kmeans import HierarchicalKMeans, select_level
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.errors import ConfigurationError, PartitionError
from repro.machine.machine import toy_machine


@pytest.fixture(scope="module")
def machine():
    # 8 KiB LDM = 1024 f64 elements per CPE.
    return toy_machine(n_nodes=2, cgs_per_node=2, mesh=2, ldm_bytes=8192)


@pytest.fixture(scope="module")
def blobs():
    X, labels = gaussian_blobs(n=400, k=6, d=8, seed=17)
    return X, labels


class TestLevelSelection:
    def test_small_problem_selects_level1(self, machine):
        assert select_level(machine, n=400, k=6, d=8) == 1

    def test_large_k_selects_level2(self, machine):
        # k=200, d=8: C1 needs 3408 elements > 1024 -> Level 1 out;
        # mgroup slicing fits -> Level 2.
        assert select_level(machine, n=400, k=200, d=8) == 2

    def test_large_d_selects_level3(self, machine):
        # d=1001 overflows one LDM (C2) but fits 4 CPEs' dim slices.
        assert select_level(machine, n=400, k=4, d=1001) == 3

    def test_impossible_problem_raises(self, machine):
        with pytest.raises(PartitionError, match="no partition level"):
            select_level(machine, n=10**5, k=10**5, d=10**4)

    def test_selection_matches_paper_flexibility_story(self, machine):
        """Paper section III.D: levels form an escalation ladder."""
        ladder = [
            select_level(machine, 400, 6, 8),
            select_level(machine, 400, 200, 8),
            select_level(machine, 400, 4, 1001),
        ]
        assert ladder == [1, 2, 3]


class TestFitPredict:
    def test_fit_returns_result_and_sets_state(self, machine, blobs):
        X, _ = blobs
        model = HierarchicalKMeans(6, machine=machine, seed=0, max_iter=40)
        result = model.fit(X)
        assert model.selected_level_ == 1
        assert model.result_ is result
        assert result.centroids.shape == (6, 8)

    def test_fit_matches_serial_with_same_init(self, machine, blobs):
        X, _ = blobs
        model = HierarchicalKMeans(6, machine=machine, init="first",
                                   max_iter=40)
        result = model.fit(X)
        ref = lloyd(X, np.array(X[:6], dtype=np.float64), max_iter=40)
        np.testing.assert_array_equal(result.assignments, ref.assignments)

    def test_forced_level(self, machine, blobs):
        X, _ = blobs
        model = HierarchicalKMeans(6, machine=machine, level=3, init="first",
                                   max_iter=20)
        result = model.fit(X)
        assert result.level == 3
        assert model.selected_level_ == 3

    def test_level_zero_runs_serial(self, blobs):
        X, _ = blobs
        model = HierarchicalKMeans(6, level=0, init="first", max_iter=20)
        result = model.fit(X)
        assert result.level == 0
        assert result.ledger is None

    def test_predict_assigns_new_points(self, machine, blobs):
        X, _ = blobs
        model = HierarchicalKMeans(6, machine=machine, seed=1, max_iter=40)
        model.fit(X)
        fresh = X[:10] + 1e-6
        pred = model.predict(fresh)
        np.testing.assert_array_equal(pred, model.result_.assignments[:10])

    def test_predict_before_fit_raises(self, machine):
        model = HierarchicalKMeans(3, machine=machine)
        with pytest.raises(ConfigurationError, match="fit"):
            model.predict(np.zeros((2, 4)))

    def test_fit_predict_returns_assignments(self, machine, blobs):
        X, _ = blobs
        model = HierarchicalKMeans(6, machine=machine, seed=1, max_iter=40)
        out = model.fit_predict(X)
        np.testing.assert_array_equal(out, model.result_.assignments)

    def test_explicit_init_array(self, machine, blobs):
        X, _ = blobs
        C0 = np.array(X[:6], dtype=np.float64)
        model = HierarchicalKMeans(6, machine=machine, init=C0, max_iter=20)
        result = model.fit(X)
        ref = lloyd(X, C0, max_iter=20)
        np.testing.assert_array_equal(result.assignments, ref.assignments)

    def test_executor_kwargs_forwarded(self, machine, blobs):
        X, _ = blobs
        model = HierarchicalKMeans(6, machine=machine, level=2,
                                   init="first", max_iter=5, mgroup=2)
        model.fit(X)  # mgroup reaches Level2Executor without error

    def test_quality_on_blobs(self, machine, blobs):
        X, labels = blobs
        model = HierarchicalKMeans(6, machine=machine, seed=5, max_iter=60)
        result = model.fit(X)
        purity = 0
        for j in range(6):
            members = labels[result.assignments == j]
            if members.size:
                purity += np.bincount(members).max()
        assert purity / X.shape[0] > 0.9


class TestValidation:
    def test_bad_n_clusters(self):
        with pytest.raises(ConfigurationError):
            HierarchicalKMeans(0)

    def test_bad_level(self):
        with pytest.raises(ConfigurationError):
            HierarchicalKMeans(3, level=4)

    def test_bad_init_name(self):
        with pytest.raises(ConfigurationError):
            HierarchicalKMeans(3, init="zzz")

    def test_bad_init_shape(self, machine, blobs):
        X, _ = blobs
        model = HierarchicalKMeans(6, machine=machine,
                                   init=np.zeros((3, 8)))
        with pytest.raises(ConfigurationError, match="shape"):
            model.fit(X)

    def test_non_2d_data(self, machine):
        model = HierarchicalKMeans(2, machine=machine)
        with pytest.raises(ConfigurationError):
            model.fit(np.zeros(10))

    def test_resolve_level_without_running(self, machine, blobs):
        X, _ = blobs
        model = HierarchicalKMeans(6, machine=machine)
        assert model.resolve_level(X) == 1
        assert model.result_ is None


class TestMultiRestart:
    def test_best_restart_wins(self, machine, blobs):
        X, _ = blobs
        model = HierarchicalKMeans(6, machine=machine, n_init=5, seed=3,
                                   max_iter=40)
        result = model.fit(X)
        assert len(model.all_inertias_) == 5
        assert result.inertia == min(model.all_inertias_)

    def test_restarts_explore_different_optima(self, machine, blobs):
        X, _ = blobs
        model = HierarchicalKMeans(6, machine=machine, n_init=8, seed=3,
                                   max_iter=40)
        model.fit(X)
        assert len(set(round(v, 9) for v in model.all_inertias_)) > 1

    def test_multi_restart_never_worse_than_single(self, machine, blobs):
        X, _ = blobs
        single = HierarchicalKMeans(6, machine=machine, n_init=1, seed=3,
                                    max_iter=40).fit(X)
        multi = HierarchicalKMeans(6, machine=machine, n_init=6, seed=3,
                                   max_iter=40)
        best = multi.fit(X)
        assert best.inertia <= min(single.inertia,
                                   max(multi.all_inertias_))

    def test_deterministic_across_runs(self, machine, blobs):
        X, _ = blobs
        a = HierarchicalKMeans(6, machine=machine, n_init=4, seed=11,
                               max_iter=30).fit(X)
        b = HierarchicalKMeans(6, machine=machine, n_init=4, seed=11,
                               max_iter=30).fit(X)
        np.testing.assert_array_equal(a.centroids, b.centroids)

    def test_single_restart_records_inertia(self, machine, blobs):
        X, _ = blobs
        model = HierarchicalKMeans(6, machine=machine, seed=1, max_iter=30)
        result = model.fit(X)
        assert model.all_inertias_ == [result.inertia]

    def test_deterministic_init_rejected_with_restarts(self):
        with pytest.raises(ConfigurationError, match="stochastic"):
            HierarchicalKMeans(3, n_init=2, init="first")
        with pytest.raises(ConfigurationError, match="stochastic"):
            HierarchicalKMeans(3, n_init=2, init=np.zeros((3, 4)))

    def test_invalid_n_init(self):
        with pytest.raises(ConfigurationError):
            HierarchicalKMeans(3, n_init=0)


class TestBoundedFacade:
    def test_bounded_level3_via_kwarg(self, machine, blobs):
        X, _ = blobs
        plain = HierarchicalKMeans(6, machine=machine, level=3,
                                   init="first", max_iter=40).fit(X)
        bounded = HierarchicalKMeans(6, machine=machine, level=3,
                                     init="first", max_iter=40,
                                     bounded=True).fit(X)
        np.testing.assert_array_equal(plain.assignments,
                                      bounded.assignments)
        assert (bounded.mean_iteration_seconds()
                <= plain.mean_iteration_seconds())

    def test_bounded_requires_level3(self, machine, blobs):
        X, _ = blobs
        with pytest.raises(ConfigurationError, match="Level 3"):
            HierarchicalKMeans(6, machine=machine, level=1, init="first",
                               max_iter=5, bounded=True).fit(X)
