"""Tests for recovery policies and the executor's fault-handling loop."""

import numpy as np
import pytest

from repro.core.kmeans import HierarchicalKMeans
from repro.core.level3 import Level3Executor
from repro.core.lloyd import lloyd
from repro.core.recovery import (
    RECOVERY_POLICIES,
    FailFastPolicy,
    RecoveryAction,
    ReplanPolicy,
    RetryPolicy,
    resolve_recovery,
)
from repro.errors import (
    CGFailedError,
    ConfigurationError,
    NumericalFaultError,
    TransientDMAError,
)
from repro.machine.machine import DegradedMachine, toy_machine
from repro.runtime.faults import FaultPlan, FaultSpec


def _transient():
    return TransientDMAError("boom", iteration=1)


def _permanent():
    return CGFailedError("gone", iteration=1, cg_index=0)


class TestPolicies:
    def test_fail_fast_always_raises(self):
        policy = FailFastPolicy()
        assert policy.decide(_transient(), 1).kind == "raise"
        assert policy.decide(_permanent(), 1).kind == "raise"

    def test_retry_backs_off_exponentially(self):
        policy = RetryPolicy(max_retries=3, backoff=1e-3, factor=2.0)
        delays = [policy.decide(_transient(), a).delay for a in (1, 2, 3)]
        assert delays == pytest.approx([1e-3, 2e-3, 4e-3])
        assert policy.decide(_transient(), 4).kind == "raise"

    def test_retry_refuses_permanent_faults(self):
        assert RetryPolicy().decide(_permanent(), 1).kind == "raise"

    def test_replan_on_cg_failure_retry_on_transient(self):
        policy = ReplanPolicy()
        assert policy.decide(_permanent(), 1).kind == "replan"
        assert policy.decide(_transient(), 1).kind == "retry"

    def test_replan_rolls_back_numerical_faults(self):
        # Poisoned numbers on healthy hardware: restore the checkpoint
        # (no re-plan, no excised CGs) while attempts remain, then give up.
        policy = ReplanPolicy(max_retries=3)
        exc = NumericalFaultError("non-finite centroid", iteration=4)
        assert policy.decide(exc, 1).kind == "rollback"
        assert policy.decide(exc, 3).kind == "rollback"
        assert policy.decide(exc, 4).kind == "raise"

    def test_fail_fast_raises_numerical_faults(self):
        exc = NumericalFaultError("non-finite centroid", iteration=4)
        assert FailFastPolicy().decide(exc, 1).kind == "raise"

    def test_retry_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(factor=0.5)

    def test_resolve_recovery(self):
        for name in RECOVERY_POLICIES:
            assert resolve_recovery(name).name == name
        policy = RetryPolicy(max_retries=7)
        assert resolve_recovery(policy) is policy
        with pytest.raises(ConfigurationError, match="unknown recovery"):
            resolve_recovery("pray")


class TestDegradedMachine:
    def test_logical_remap(self):
        base = toy_machine(n_nodes=2)  # 4 CGs, 2 per node
        dm = DegradedMachine(base, [1])
        assert dm.n_cgs == 3
        assert [dm.physical_cg(i) for i in range(3)] == [0, 2, 3]
        assert dm.node_of_cg(0) == 0
        assert dm.node_of_cg(1) == 1
        assert dm.core_group(1).index == 2
        assert dm.n_cpes == 3 * base.cpes_per_cg

    def test_cannot_kill_everything(self):
        base = toy_machine(n_nodes=1)
        with pytest.raises(ConfigurationError, match="zero surviving"):
            DegradedMachine(base, range(base.n_cgs))

    def test_out_of_range_failure_rejected(self):
        with pytest.raises(ConfigurationError):
            DegradedMachine(toy_machine(n_nodes=1), [99])


@pytest.fixture
def workload():
    rng = np.random.default_rng(42)
    X = rng.normal(size=(400, 6))
    C0 = X[:4].copy()
    return X, C0


class TestExecutorRecovery:
    def test_fail_fast_propagates(self, workload):
        X, C0 = workload
        machine = toy_machine(n_nodes=2)
        plan = FaultPlan([FaultSpec("transient_dma", iteration=2)])
        executor = Level3Executor(machine, faults=plan)
        with pytest.raises(TransientDMAError):
            executor.run(X, C0, max_iter=30)

    def test_retry_recovers_transient(self, workload):
        X, C0 = workload
        machine = toy_machine(n_nodes=2)
        clean = Level3Executor(toy_machine(n_nodes=2)).run(X, C0, max_iter=30)
        plan = FaultPlan([FaultSpec("transient_dma", iteration=2)])
        executor = Level3Executor(machine, faults=plan, recovery="retry")
        result = executor.run(X, C0, max_iter=30)
        np.testing.assert_array_equal(result.centroids, clean.centroids)
        assert [e.action for e in result.fault_events] == ["retried"]
        # Backoff time is visible in the recovery category.
        assert result.ledger.total_by_category()["recovery"] > 0.0
        # ... and the faulty run costs more than the clean one.
        assert result.ledger.total() > clean.ledger.total()

    def test_retry_gives_up_eventually(self, workload):
        X, C0 = workload
        machine = toy_machine(n_nodes=2)
        plan = FaultPlan([FaultSpec("transient_dma", probability=1.0)])
        executor = Level3Executor(
            machine, faults=plan,
            recovery=RetryPolicy(max_retries=2),
        )
        with pytest.raises(TransientDMAError):
            executor.run(X, C0, max_iter=30)
        assert executor.injector.events[-1].action == "fatal"

    def test_replan_survives_cg_failure(self, workload):
        X, C0 = workload
        machine = toy_machine(n_nodes=2)
        plan = FaultPlan([FaultSpec("cg_failure", iteration=3, cg_index=1)])
        executor = Level3Executor(machine, faults=plan, recovery="replan",
                                  checkpoint_every=1)
        result = executor.run(X, C0, max_iter=50)
        assert result.converged
        assert [e.action for e in result.fault_events] == ["replanned"]
        assert isinstance(executor.machine, DegradedMachine)
        assert executor.machine.failed_cgs == (1,)
        cats = result.ledger.total_by_category()
        assert cats["checkpoint"] > 0.0
        assert cats["recovery"] > 0.0

    def test_replan_matches_lloyd_restarted_from_checkpoint(self, workload):
        """Acceptance: post-failure trajectory == Lloyd from the snapshot.

        With checkpoint_every=1 the snapshot taken right before the
        iteration-3 failure holds the end-of-iteration-2 centroids, so the
        faulty run must finish exactly where serial Lloyd finishes when
        restarted from those centroids.
        """
        X, C0 = workload
        machine = toy_machine(n_nodes=2)
        plan = FaultPlan([FaultSpec("cg_failure", iteration=3, cg_index=1)])
        executor = Level3Executor(machine, faults=plan, recovery="replan",
                                  checkpoint_every=1)
        result = executor.run(X, C0, max_iter=50)

        with pytest.warns(Warning):  # max_iter=2 is deliberately short
            reference = lloyd(X, C0, max_iter=2)  # state the checkpoint froze
        resumed = lloyd(X, reference.centroids, max_iter=50)
        # Same fp-reassociation tolerance as the clean equivalence tests:
        # the degraded machine re-partitions the reduction tree.
        np.testing.assert_allclose(result.centroids, resumed.centroids,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_array_equal(result.assignments,
                                      resumed.assignments)

    def test_replan_falls_back_to_initial_centroids(self, workload):
        """Without periodic checkpoints the free epoch-0 snapshot is used,
        so the run is a full restart on the degraded machine — and still
        reaches the same fixed point as clean Lloyd."""
        X, C0 = workload
        machine = toy_machine(n_nodes=2)
        plan = FaultPlan([FaultSpec("cg_failure", iteration=2, cg_index=0)])
        executor = Level3Executor(machine, faults=plan, recovery="replan")
        result = executor.run(X, C0, max_iter=60)
        clean = lloyd(X, C0, max_iter=60)
        np.testing.assert_allclose(result.centroids, clean.centroids,
                                   rtol=1e-9, atol=1e-12)

    def test_repeated_failures_accumulate(self, workload):
        X, C0 = workload
        machine = toy_machine(n_nodes=2)
        plan = FaultPlan([
            FaultSpec("cg_failure", iteration=2, cg_index=1),
            FaultSpec("cg_failure", iteration=4, cg_index=3),
        ])
        executor = Level3Executor(machine, faults=plan, recovery="replan",
                                  checkpoint_every=1)
        result = executor.run(X, C0, max_iter=60)
        assert result.converged
        assert executor.machine.failed_cgs == (1, 3)
        assert [e.action for e in result.fault_events] \
            == ["replanned", "replanned"]


class TestFacadeKnobs:
    def test_faults_require_model_costs(self):
        with pytest.raises(ConfigurationError, match="model_costs"):
            HierarchicalKMeans(4, machine=toy_machine(2), level=1,
                               faults="transient_dma@1",
                               model_costs=False)

    def test_faults_refuse_serial_level(self):
        with pytest.raises(ConfigurationError, match="simulated level"):
            HierarchicalKMeans(4, machine=toy_machine(2), level=0,
                               faults="transient_dma@1")

    def test_bad_spec_string_fails_at_construction(self):
        with pytest.raises(ConfigurationError):
            HierarchicalKMeans(4, machine=toy_machine(2), level=1,
                               faults="meteor_strike@1")

    def test_facade_fault_run_end_to_end(self, workload):
        X, C0 = workload
        machine = toy_machine(n_nodes=2)
        clean = HierarchicalKMeans(
            4, machine=machine, level=1, init=C0, max_iter=50).fit(X)
        faulty = HierarchicalKMeans(
            4, machine=toy_machine(n_nodes=2), level=1, init=C0, max_iter=50,
            faults="transient_dma@2", recovery="retry").fit(X)
        np.testing.assert_array_equal(clean.centroids, faulty.centroids)
        assert len(faulty.fault_events) == 1
        assert clean.fault_events == []
