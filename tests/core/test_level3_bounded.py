"""Tests for the bounded (Hamerly-filtered) Level-3 executor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.init import init_centroids
from repro.core.level3 import run_level3
from repro.core.level3_bounded import Level3BoundedExecutor, run_level3_bounded
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs, uniform_cloud
from repro.machine.machine import toy_machine


@pytest.fixture(scope="module")
def machine():
    return toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                       ldm_bytes=64 * 1024)


@pytest.fixture(scope="module")
def workload():
    X, _ = gaussian_blobs(n=900, k=10, d=14, seed=51)
    C0 = init_centroids(X, 10, method="first")
    return X, C0


class TestExactness:
    def test_matches_serial_lloyd(self, machine, workload):
        X, C0 = workload
        ref = lloyd(X, C0, max_iter=50)
        result = run_level3_bounded(X, C0, machine, max_iter=50)
        np.testing.assert_array_equal(result.assignments, ref.assignments)
        np.testing.assert_allclose(result.centroids, ref.centroids,
                                   rtol=1e-9, atol=1e-12)
        assert result.n_iter == ref.n_iter
        assert result.converged == ref.converged

    def test_matches_unbounded_executor(self, machine, workload):
        X, C0 = workload
        plain = run_level3(X, C0, machine, max_iter=50)
        bounded = run_level3_bounded(X, C0, machine, max_iter=50)
        np.testing.assert_array_equal(plain.assignments,
                                      bounded.assignments)

    def test_k_equals_one(self, machine):
        X = uniform_cloud(64, 4, seed=2)
        result = run_level3_bounded(X, X[:1].copy(), machine, max_iter=10)
        np.testing.assert_allclose(result.centroids[0], X.mean(axis=0))

    @given(n=st.integers(30, 200), k=st.integers(2, 8),
           d=st.integers(2, 12), seed=st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_property_equals_lloyd(self, n, k, d, seed):
        if k > n:
            k = n
        machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                              ldm_bytes=64 * 1024)
        X = uniform_cloud(n, d, seed=seed)
        C0 = init_centroids(X, k, method="first")
        ref = lloyd(X, C0, max_iter=15)
        result = run_level3_bounded(X, C0, machine, max_iter=15)
        np.testing.assert_array_equal(result.assignments, ref.assignments)


class TestFiltering:
    def test_first_iteration_examines_everything(self, machine, workload):
        X, C0 = workload
        executor = Level3BoundedExecutor(machine)
        executor.run(X, C0, max_iter=10)
        assert executor.candidates_per_iteration[0] == X.shape[0]

    def test_candidates_shrink_as_clusters_stabilise(self, machine,
                                                     workload):
        X, C0 = workload
        executor = Level3BoundedExecutor(machine)
        result = executor.run(X, C0, max_iter=50)
        cands = executor.candidates_per_iteration
        assert len(cands) == result.n_iter
        if result.n_iter >= 4:
            assert cands[-1] < 0.5 * X.shape[0]

    def test_bounded_is_cheaper_modelled(self, machine, workload):
        X, C0 = workload
        # Pin the kernel: this compares the *filtering* strategy against
        # the plain executor under a fixed cost baseline.  An env-sourced
        # kernel="pruned" would prune the plain baseline too and erase
        # the margin this test measures.
        plain = run_level3(X, C0, machine, max_iter=50, kernel="gemm")
        bounded = run_level3_bounded(X, C0, machine, max_iter=50,
                                     kernel="gemm")
        assert (bounded.mean_iteration_seconds()
                < plain.mean_iteration_seconds())

    def test_final_iteration_minloc_shrinks(self, machine, workload):
        """The skipped samples skip the inter-CG MINLOC too.

        m'group is forced to 2 so the MINLOC actually crosses CGs (the
        planner would pick 1 for this small k and charge nothing).
        """
        X, C0 = workload
        plain = run_level3(X, C0, machine, max_iter=50, mprime_group=2)
        bounded = run_level3_bounded(X, C0, machine, max_iter=50,
                                     mprime_group=2)

        def minloc_time(ledger, iteration, needle):
            return sum(r.seconds for r in ledger.records
                       if r.iteration == iteration and needle in r.label)

        last = bounded.n_iter
        t_plain = minloc_time(plain.ledger, last, "minloc")
        t_bound = minloc_time(bounded.ledger, last, "minloc")
        assert t_bound < t_plain

    def test_streaming_composes_with_bounds(self, machine):
        """Bounds + streaming mode: still exact, still plans."""
        X, _ = gaussian_blobs(n=400, k=40, d=64, seed=8)
        C0 = init_centroids(X, 40, method="first")
        small = toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                            ldm_bytes=4096)
        ref = lloyd(X, C0, max_iter=20)
        result = run_level3_bounded(X, C0, small, max_iter=20,
                                    streaming=True)
        np.testing.assert_array_equal(result.assignments, ref.assignments)
