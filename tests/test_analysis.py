"""Tests for the model-selection / stability analysis tools."""

import numpy as np
import pytest

from repro.analysis import (
    bootstrap_stability,
    inertia_sweep,
    knee_point,
    silhouette_sweep,
)
from repro.data.synthetic import gaussian_blobs, uniform_cloud
from repro.errors import ConfigurationError
from repro.machine.machine import toy_machine


@pytest.fixture(scope="module")
def machine():
    return toy_machine(n_nodes=1, cgs_per_node=2, mesh=2,
                       ldm_bytes=64 * 1024)


@pytest.fixture(scope="module")
def blobs():
    X, labels = gaussian_blobs(n=600, k=5, d=6, spread=0.03, seed=29)
    return X, labels


class TestKneePoint:
    def test_synthetic_elbow(self):
        # A curve that drops fast to k=4 then flattens: the knee is 4.
        ks = [2, 3, 4, 5, 6, 7]
        inertias = [100.0, 50.0, 10.0, 9.0, 8.5, 8.2]
        assert knee_point(ks, inertias) == 4

    def test_linear_curve_picks_interior(self):
        ks = [1, 2, 3, 4]
        inertias = [4.0, 3.0, 2.0, 1.0]
        assert knee_point(ks, inertias) in ks

    def test_needs_three_points(self):
        with pytest.raises(ConfigurationError):
            knee_point([1, 2], [2.0, 1.0])


class TestInertiaSweep:
    def test_monotone_decreasing_scores(self, machine, blobs):
        X, _ = blobs
        sweep = inertia_sweep(X, [2, 3, 5, 8], machine=machine, seed=1)
        assert all(b <= a * 1.05 for a, b in zip(sweep.scores,
                                                 sweep.scores[1:]))

    def test_finds_true_k_neighbourhood(self, machine, blobs):
        X, _ = blobs
        sweep = inertia_sweep(X, [2, 3, 4, 5, 6, 7, 8], machine=machine,
                              seed=1, n_init=3)
        assert sweep.best_k in (4, 5, 6)

    def test_validation(self, machine, blobs):
        X, _ = blobs
        with pytest.raises(ConfigurationError):
            inertia_sweep(X, [], machine=machine)
        with pytest.raises(ConfigurationError):
            inertia_sweep(X, [3, 2], machine=machine)
        with pytest.raises(ConfigurationError):
            inertia_sweep(X, [0, 2], machine=machine)


class TestSilhouetteSweep:
    def test_peaks_at_true_k(self, machine, blobs):
        X, _ = blobs
        sweep = silhouette_sweep(X, [2, 3, 5, 8], machine=machine, seed=1,
                                 sample_size=None)
        assert sweep.best_k == 5

    def test_rejects_k_of_one(self, machine, blobs):
        X, _ = blobs
        with pytest.raises(ConfigurationError):
            silhouette_sweep(X, [1, 2], machine=machine)


class TestBootstrapStability:
    def test_structured_data_is_stable(self, machine, blobs):
        X, _ = blobs
        report = bootstrap_stability(X, k=5, machine=machine, n_rounds=5,
                                     seed=3)
        assert report.stable
        assert report.mean > 0.8
        assert len(report.scores) == 5

    def test_noise_is_less_stable_than_structure(self, machine, blobs):
        X, _ = blobs
        noise = uniform_cloud(600, 6, seed=1)
        structured = bootstrap_stability(X, k=5, machine=machine,
                                         n_rounds=5, seed=3)
        unstructured = bootstrap_stability(noise, k=5, machine=machine,
                                           n_rounds=5, seed=3)
        assert structured.mean > unstructured.mean

    def test_validation(self, machine, blobs):
        X, _ = blobs
        with pytest.raises(ConfigurationError):
            bootstrap_stability(X, k=3, machine=machine, n_rounds=0)
        with pytest.raises(ConfigurationError):
            bootstrap_stability(X, k=3, machine=machine, subsample=0.0)
