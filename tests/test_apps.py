"""Tests for the land-cover application pipeline."""

import numpy as np
import pytest

from repro.apps.landcover import (
    PAPER_D,
    PAPER_K,
    PAPER_N,
    PAPER_NODES,
    classify_land_cover,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def result():
    return classify_land_cover(height=64, width=64, patch=4, n_classes=5,
                               seed=7, predict_paper_scale=True)


class TestPipeline:
    def test_class_map_shape(self, result):
        assert result.class_map.shape == (16, 16)

    def test_accuracy_beats_chance(self, result):
        assert result.accuracy > 1.0 / 5

    def test_accuracy_is_good_on_synthetic_tiles(self, result):
        assert result.accuracy > 0.7

    def test_cluster_mapping_covers_all_clusters(self, result):
        assert set(result.cluster_to_class) == set(range(5))

    def test_class_shares_sum_to_one(self, result):
        assert sum(result.class_shares().values()) == pytest.approx(1.0)

    def test_ascii_rendering(self, result):
        art = result.render_ascii(max_width=16)
        assert len(art.splitlines()) >= 8

    def test_kmeans_result_attached(self, result):
        assert result.kmeans.k == 5
        assert result.kmeans.ledger is not None


class TestPaperScale:
    def test_constants_match_paper(self):
        assert (PAPER_N, PAPER_K, PAPER_D, PAPER_NODES) == (
            5_838_480, 7, 4096, 400)

    def test_prediction_feasible_and_fast(self, result):
        assert result.paper_scale is not None
        assert result.paper_scale.feasible
        assert result.paper_scale.total < 1.0  # a k=7 problem is easy

    def test_prediction_skipped_by_default(self):
        r = classify_land_cover(height=32, width=32, patch=4, n_classes=3,
                                seed=1)
        assert r.paper_scale is None


class TestValidation:
    def test_indivisible_tile_rejected(self):
        with pytest.raises(ConfigurationError):
            classify_land_cover(height=30, width=30, patch=4)
