"""Property: identical ``(seed, FaultPlan)`` replays bit-identically.

The fault subsystem's core guarantee — everything stochastic flows from the
plan's seed through one generator, and the executors are deterministic — so
re-running the same workload with the same plan reproduces the centroids,
the modelled seconds, and the fault-event log exactly.  And with *no* plan,
a run is bit-identical to one on a build without fault support (zero
overhead), which the ledger totals of the clean runs below pin down.
"""

import numpy as np
import pytest

from repro.core.kmeans import HierarchicalKMeans
from repro.data.synthetic import gaussian_blobs
from repro.machine.machine import toy_machine
from repro.runtime.faults import FaultPlan, FaultSpec


def _run(level, faults=None, recovery="fail_fast", checkpoint_every=None,
         seed=13, engine=None, workers=None):
    X, _ = gaussian_blobs(n=420, k=4, d=6, seed=8)
    model = HierarchicalKMeans(
        4, machine=toy_machine(n_nodes=2), level=level, seed=seed,
        max_iter=40, faults=faults, recovery=recovery,
        checkpoint_every=checkpoint_every,
        engine=engine, workers=workers,
    )
    return model.fit(X)


def _mixed_plan():
    return FaultPlan([
        FaultSpec("transient_dma", iteration=2),
        FaultSpec("collective_timeout", probability=0.02),
        FaultSpec("degraded_link", iteration=1, bandwidth_factor=0.5,
                  duration=2),
    ], seed=99)


@pytest.mark.parametrize("level", [1, 2, 3])
def test_identical_seed_and_plan_replay_bit_identically(level):
    a = _run(level, faults=_mixed_plan(), recovery="retry",
             checkpoint_every=2)
    b = _run(level, faults=_mixed_plan(), recovery="retry",
             checkpoint_every=2)
    np.testing.assert_array_equal(a.centroids, b.centroids)
    np.testing.assert_array_equal(a.assignments, b.assignments)
    assert a.inertia == b.inertia
    assert a.n_iter == b.n_iter
    # Modelled time replays exactly (==, not approx): same charges in the
    # same order.
    assert a.ledger.total() == b.ledger.total()
    assert a.ledger.total_by_category() == b.ledger.total_by_category()
    # The fault-event log replays too (FaultEvent is an eq-dataclass).
    assert a.fault_events == b.fault_events
    assert len(a.fault_events) >= 2


@pytest.mark.parametrize("level", [1, 2, 3])
def test_replan_replays_bit_identically(level):
    # iteration=2: late enough that a checkpoint exists, early enough that
    # the run (which converges in ~3 iterations) actually reaches it.
    plan = FaultPlan([FaultSpec("cg_failure", iteration=2, cg_index=1)])
    a = _run(level, faults=plan, recovery="replan", checkpoint_every=1)
    b = _run(level, faults=plan, recovery="replan", checkpoint_every=1)
    np.testing.assert_array_equal(a.centroids, b.centroids)
    assert a.ledger.total() == b.ledger.total()
    assert a.fault_events == b.fault_events
    assert any(e.action == "replanned" for e in a.fault_events)


@pytest.mark.parametrize("level", [1, 2, 3])
@pytest.mark.parametrize("workers", [2, 4])
def test_replan_replays_bit_identically_across_engines(level, workers):
    # The replan path restores a mid-run checkpoint, excises the failed CG
    # and re-plans — all of which must be invisible to the engine choice:
    # the thread engine's retry-capable task path replays the same
    # trajectory, fault log, and modelled seconds as serial.
    plan = FaultPlan([FaultSpec("cg_failure", iteration=2, cg_index=1)])
    serial = _run(level, faults=plan, recovery="replan", checkpoint_every=1,
                  engine="serial")
    threaded = _run(level, faults=plan, recovery="replan",
                    checkpoint_every=1, engine="thread", workers=workers)
    np.testing.assert_array_equal(serial.centroids, threaded.centroids)
    np.testing.assert_array_equal(serial.assignments, threaded.assignments)
    assert serial.fault_events == threaded.fault_events
    assert any(e.action == "replanned" for e in serial.fault_events)
    assert serial.ledger.records == threaded.ledger.records


@pytest.mark.parametrize("level", [1, 2, 3])
def test_different_fault_seed_changes_stochastic_trajectory(level):
    # Sanity check that the seed actually matters: a high-probability
    # stochastic plan under generous retries yields different event logs
    # for different seeds (the *numerics* still converge identically).
    def run_with(seed):
        plan = FaultPlan([FaultSpec("transient_dma", probability=0.2)],
                         seed=seed)
        from repro.core.recovery import RetryPolicy
        return _run(level, faults=plan,
                    recovery=RetryPolicy(max_retries=10 ** 6))

    a, b = run_with(1), run_with(2)
    np.testing.assert_array_equal(a.centroids, b.centroids)
    assert [e.iteration for e in a.fault_events] \
        != [e.iteration for e in b.fault_events] or \
        len(a.fault_events) != len(b.fault_events)


@pytest.mark.parametrize("level", [1, 2, 3])
def test_no_fault_plan_means_zero_overhead(level):
    a = _run(level)
    b = _run(level, faults=None, recovery="replan", checkpoint_every=None)
    np.testing.assert_array_equal(a.centroids, b.centroids)
    assert a.ledger.total() == b.ledger.total()
    assert a.fault_events == [] and b.fault_events == []
    cats = a.ledger.total_by_category()
    assert cats["checkpoint"] == 0.0 and cats["recovery"] == 0.0
