"""Suppression comments: reasons are mandatory, coverage is line-scoped."""

import textwrap

from repro.analysis.reprolint import lint_source

CORE = "src/repro/core/snippet.py"


def lint(source):
    return lint_source(textwrap.dedent(source), CORE)


def active(findings):
    return [f for f in findings if not f.suppressed]


def test_inline_suppression_with_reason_mutes_the_finding():
    found = lint("""
    def _merge(partials):
        for k, v in partials.items():  # reprolint: disable=D103 -- keys are inserted sorted upstream
            consume(k, v)
    """)
    assert active(found) == []
    muted = [f for f in found if f.suppressed]
    assert [f.rule for f in muted] == ["D103"]
    assert muted[0].reason == "keys are inserted sorted upstream"


def test_standalone_suppression_covers_the_next_line():
    found = lint("""
    def _merge(partials):
        # reprolint: disable=D103 -- keys are inserted sorted upstream
        for k, v in partials.items():
            consume(k, v)
    """)
    assert active(found) == []


def test_suppression_does_not_leak_to_other_lines():
    found = lint("""
    def _merge(partials):
        for k, v in partials.items():  # reprolint: disable=D103 -- first loop only
            consume(k, v)
        for k, v in partials.items():
            consume(k, v)
    """)
    assert [f.rule for f in active(found)] == ["D103"]


def test_suppression_without_reason_is_r001_and_does_not_mute():
    found = lint("""
    def _merge(partials):
        for k, v in partials.items():  # reprolint: disable=D103
            consume(k, v)
    """)
    rules = sorted(f.rule for f in active(found))
    assert rules == ["D103", "R001"]


def test_unknown_rule_id_is_r002():
    found = lint("""
    x = 1  # reprolint: disable=Z999 -- no such rule
    """)
    assert [f.rule for f in active(found)] == ["R002"]


def test_disable_file_covers_every_occurrence():
    found = lint("""
    # reprolint: disable-file=D103 -- synthetic ordering fixture
    def _merge(partials):
        for k, v in partials.items():
            consume(k, v)
        for k, v in partials.items():
            consume(k, v)
    """)
    assert active(found) == []
    assert len([f for f in found if f.suppressed]) == 2


def test_disable_file_only_covers_its_listed_rules():
    found = lint("""
    # reprolint: disable-file=D103 -- ordering is synthetic here
    import random

    def _merge(partials):
        for k, v in partials.items():
            consume(k, v)
    """)
    assert [f.rule for f in active(found)] == ["D101"]


def test_syntax_error_becomes_r003():
    found = lint_source("def broken(:\n", CORE)
    assert [f.rule for f in found] == ["R003"]


def test_multiple_ids_in_one_comment():
    found = lint("""
    import random  # reprolint: disable=D101,D103 -- fixture exercising both ids
    """)
    assert active(found) == []
