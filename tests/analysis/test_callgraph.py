"""The whole-program project model: summaries, resolution, call graph."""

import ast
import textwrap

from repro.analysis.dataflow import TaintEngine, TaintSpec
from repro.analysis.project import (
    Project,
    extract_summary,
    module_name_for,
)


def summarize(source, path):
    parts = tuple(path.replace("\\", "/").split("/"))
    parts = parts[:-1] + (parts[-1].rsplit(".", 1)[0],)
    return extract_summary(ast.parse(textwrap.dedent(source)), path, parts)


def project_of(*files):
    return Project([summarize(src, path) for path, src in files])


# ---------------------------------------------------------------------------
# module naming + extraction
# ---------------------------------------------------------------------------

def test_module_name_for_roots_at_repro_and_tests():
    assert module_name_for("src/repro/core/lloyd.py") == "repro.core.lloyd"
    assert module_name_for("tests/analysis/test_x.py") \
        == "tests.analysis.test_x"
    assert module_name_for("benchmarks/bench_engine.py") == "bench_engine"


def test_extract_summary_captures_functions_classes_and_module_scope():
    summary = summarize(
        """
        import numpy as np

        CONSTANT = 3

        def helper(x):
            return x + CONSTANT

        class Runner:
            def run(self, items):
                return helper(items)
        """,
        "src/repro/core/mod.py",
    )
    names = {f.qualname for f in summary.functions}
    assert names == {"repro.core.mod:helper", "repro.core.mod:Runner.run",
                     "repro.core.mod:<module>"}
    (runner,) = [c for c in summary.classes if c.name == "Runner"]
    assert runner.methods == ("run",)


def test_summaries_are_picklable():
    import pickle

    summary = summarize(
        """
        def fn(a, b=1):
            return [x for x in a]
        """,
        "src/repro/core/mod.py",
    )
    clone = pickle.loads(pickle.dumps(summary))
    assert clone == summary


# ---------------------------------------------------------------------------
# resolution
# ---------------------------------------------------------------------------

def test_cross_module_import_resolution():
    project = project_of(
        ("src/repro/core/util.py", """
            def helper(x):
                return x
        """),
        ("src/repro/core/main.py", """
            from repro.core.util import helper

            def run(x):
                return helper(x)
        """),
    )
    run = project.functions["repro.core.main:run"]
    (call,) = run.calls
    target, _ = project.resolve_call(run, call)
    assert target == "repro.core.util:helper"


def test_method_resolution_via_annotated_receiver():
    project = project_of(
        ("src/repro/core/mod.py", """
            class Worker:
                def step(self):
                    return 1

            def drive(w: Worker):
                return w.step()
        """),
    )
    drive = project.functions["repro.core.mod:drive"]
    (call,) = drive.calls
    target, _ = project.resolve_call(drive, call)
    assert target == "repro.core.mod:Worker.step"


def test_engine_sites_detected_for_engine_receivers_only():
    project = project_of(
        ("src/repro/core/mod.py", """
            def run(engine, pool, items, fn):
                pool.map(fn, items)          # not an engine
                return engine.map_reduce(fn, items)
        """),
    )
    sites = project.graph.engine_sites
    assert [(s.method, s.line) for s in sites] == [("map_reduce", 4)]


def test_self_receiver_in_engine_class_is_engine_site():
    project = project_of(
        ("src/repro/runtime/mod.py", """
            class ThingEngine:
                def map(self, fn, items):
                    return [fn(i) for i in items]

                def map_reduce(self, fn, items, combine):
                    partials = self.map(fn, items)
                    return partials
        """),
    )
    methods = {s.method for s in project.graph.engine_sites}
    assert methods == {"map"}


def test_reachability_is_transitive():
    project = project_of(
        ("src/repro/core/mod.py", """
            def a():
                return b()

            def b():
                return c()

            def c():
                return 1

            def unrelated():
                return 2
        """),
    )
    reached = project.graph.reachable_from(["repro.core.mod:a"])
    assert "repro.core.mod:c" in reached
    assert "repro.core.mod:unrelated" not in reached


def test_resolve_callable_value_follows_partials_and_locals():
    project = project_of(
        ("src/repro/core/mod.py", """
            import functools

            def task(block, scale):
                return block * scale

            def run(engine, blocks):
                fn = functools.partial(task, scale=2.0)
                bound = fn
                return engine.map(bound, blocks)
        """),
    )
    run = project.functions["repro.core.mod:run"]
    (site,) = project.graph.engine_sites
    resolved = project.resolve_callable_value(run, site.call.args[0])
    assert resolved == ["repro.core.mod:task"]


# ---------------------------------------------------------------------------
# taint engine basics
# ---------------------------------------------------------------------------

def test_taint_flows_through_returns_and_arguments():
    project = project_of(
        ("src/repro/core/mod.py", """
            def source(engine, items, fn):
                return engine.map(fn, items)

            def consume(parts):
                out = parts
                return out

            def run(engine, items, fn):
                data = source(engine, items, fn)
                final = consume(data)
                return final
        """),
    )

    def seed(prj, func, call):
        return call.attr == "map" and prj.is_engine_receiver(
            func, call.receiver)

    engine = TaintEngine(project, TaintSpec(name="t", seed_call=seed))
    state = engine.run()
    assert "data" in state.tainted_in("repro.core.mod:run")
    assert "final" in state.tainted_in("repro.core.mod:run")
    assert "parts" in state.tainted_in("repro.core.mod:consume")
    assert "repro.core.mod:consume" in state.returns


def test_taint_does_not_leak_to_unrelated_functions():
    project = project_of(
        ("src/repro/core/mod.py", """
            def source(engine, items, fn):
                return engine.map(fn, items)

            def clean(x):
                y = x + 1
                return y
        """),
    )

    def seed(prj, func, call):
        return call.attr == "map" and prj.is_engine_receiver(
            func, call.receiver)

    state = TaintEngine(project, TaintSpec(name="t", seed_call=seed)).run()
    assert state.tainted_in("repro.core.mod:clean") == set()
