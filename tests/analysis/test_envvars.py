"""The central REPRO_* registry and its typed accessors."""

import pytest

from repro.analysis import envvars
from repro.analysis.envvars import (
    ENV_DEADLINE,
    ENV_ENGINE,
    ENV_WORKERS,
    EnvVar,
    REGISTRY,
    read_float,
    read_int,
    read_str,
)
from repro.errors import ConfigurationError


def test_registry_covers_every_exported_declaration():
    declared = [getattr(envvars, name) for name in envvars.__all__
                if name.startswith("ENV_")]
    assert {v.name for v in declared} == set(REGISTRY)
    for var in declared:
        assert REGISTRY[var.name] is var


def test_declarations_are_validated():
    with pytest.raises(ConfigurationError):
        EnvVar(name="NOT_NAMESPACED", kind="str", description="x",
               consumer="y")
    with pytest.raises(ConfigurationError):
        EnvVar(name="REPRO_X", kind="bool", description="x", consumer="y")


def test_unset_reads_as_none(monkeypatch):
    monkeypatch.delenv(ENV_ENGINE.name, raising=False)
    assert read_str(ENV_ENGINE) is None


@pytest.mark.parametrize("raw", ["", "   ", "\t"])
def test_empty_and_whitespace_read_as_unset(monkeypatch, raw):
    monkeypatch.setenv(ENV_ENGINE.name, raw)
    assert read_str(ENV_ENGINE) is None
    monkeypatch.setenv(ENV_WORKERS.name, raw)
    assert read_int(ENV_WORKERS) is None
    monkeypatch.setenv(ENV_DEADLINE.name, raw)
    assert read_float(ENV_DEADLINE) is None


def test_values_are_stripped(monkeypatch):
    monkeypatch.setenv(ENV_ENGINE.name, "  thread  ")
    assert read_str(ENV_ENGINE) == "thread"


def test_typed_reads_parse(monkeypatch):
    monkeypatch.setenv(ENV_WORKERS.name, " 4 ")
    assert read_int(ENV_WORKERS) == 4
    monkeypatch.setenv(ENV_DEADLINE.name, "2.5")
    assert read_float(ENV_DEADLINE) == 2.5


def test_junk_values_raise_configuration_error(monkeypatch):
    monkeypatch.setenv(ENV_WORKERS.name, "four")
    with pytest.raises(ConfigurationError, match="REPRO_WORKERS"):
        read_int(ENV_WORKERS)
    monkeypatch.setenv(ENV_DEADLINE.name, "soon")
    with pytest.raises(ConfigurationError, match="REPRO_DEADLINE"):
        read_float(ENV_DEADLINE)


def test_unregistered_variable_is_rejected():
    rogue = EnvVar(name="REPRO_ROGUE", kind="str", description="x",
                   consumer="y")
    with pytest.raises(ConfigurationError, match="REPRO_ROGUE"):
        read_str(rogue)


def test_registry_rows_are_sorted_and_complete():
    rows = envvars.registry_rows()
    names = [row[0] for row in rows]
    assert names == sorted(REGISTRY)
    assert all(len(row) == 4 for row in rows)


def test_consumers_still_alias_the_registry():
    # The legacy *_ENV module constants must stay bound to the registry so
    # existing tests and scripts keep working.
    from repro.core.checkpoint import CHECKPOINT_DIR_ENV
    from repro.core.kernels import KERNEL_ENV
    from repro.runtime.chaos import CHAOS_ENV
    from repro.runtime.engine import (
        ENGINE_ENV,
        TASK_RETRIES_ENV,
        TASK_TIMEOUT_ENV,
        WORKERS_ENV,
    )
    from repro.runtime.integrity import INTEGRITY_ENV
    from repro.runtime.process_engine import HEARTBEAT_ENV
    from repro.runtime.reduce import REDUCE_ENV
    from repro.runtime.supervisor import DEADLINE_ENV

    aliased = {ENGINE_ENV, WORKERS_ENV, TASK_RETRIES_ENV, TASK_TIMEOUT_ENV,
               DEADLINE_ENV, CHAOS_ENV, CHECKPOINT_DIR_ENV, REDUCE_ENV,
               HEARTBEAT_ENV, KERNEL_ENV, INTEGRITY_ENV}
    # Newer knobs are consumed through the typed accessors directly and
    # never grew a legacy *_ENV alias; they are exempt on purpose.
    modern = {envvars.ENV_LINT_CACHE.name}
    assert aliased == set(REGISTRY) - modern
