"""`python -m repro.analysis` — exit codes, JSON output, rule selection."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.__main__ import main

REPO = Path(__file__).resolve().parents[2]

DIRTY = textwrap.dedent("""
    import random

    def merge(partials):
        for k, v in partials.items():
            consume(k, v)
""")

CLEAN = textwrap.dedent("""
    import numpy as np

    def assign(X: np.ndarray, C: np.ndarray) -> np.ndarray:
        return X @ C
""")


def write_tree(tmp_path, source):
    # The fabricated layout puts the file in scope of the core rules.
    target = tmp_path / "src" / "repro" / "core"
    target.mkdir(parents=True)
    (target / "snippet.py").write_text(source, encoding="utf-8")
    return tmp_path / "src"


def test_clean_tree_exits_zero(tmp_path, capsys):
    root = write_tree(tmp_path, CLEAN)
    assert main(["--check", str(root)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_dirty_tree_exits_one(tmp_path, capsys):
    root = write_tree(tmp_path, DIRTY)
    assert main(["--check", str(root)]) == 1
    out = capsys.readouterr().out
    assert "D101" in out and "D103" in out


def test_json_output_is_parseable(tmp_path, capsys):
    root = write_tree(tmp_path, DIRTY)
    assert main(["--check", "--json", str(root)]) == 1
    payload = json.loads(capsys.readouterr().out)
    rules = {f["rule"] for f in payload["findings"]}
    assert {"D101", "D103"} <= rules
    assert payload["counts"]["active"] >= 2


def test_rule_selection_limits_the_run(tmp_path, capsys):
    root = write_tree(tmp_path, DIRTY)
    assert main(["--check", "--rules", "D101", str(root)]) == 1
    out = capsys.readouterr().out
    assert "D101" in out and "D103" not in out


def test_unknown_rule_id_is_usage_error(tmp_path, capsys):
    root = write_tree(tmp_path, CLEAN)
    assert main(["--check", "--rules", "Z999", str(root)]) == 2
    assert "Z999" in capsys.readouterr().err


def test_list_rules_prints_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("D101", "L201", "C301", "E401", "T501"):
        assert rule_id in out


def test_fixture_directories_are_skipped(tmp_path, capsys):
    root = write_tree(tmp_path, CLEAN)
    bad = tmp_path / "src" / "repro" / "core" / "fixtures"
    bad.mkdir()
    (bad / "violation.py").write_text(DIRTY, encoding="utf-8")
    assert main(["--check", str(root)]) == 0


def test_module_entrypoint_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-rules"],
        cwd=REPO, capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "D101" in proc.stdout
