"""`python -m repro.analysis` — exit codes, JSON output, rule selection."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.__main__ import main

REPO = Path(__file__).resolve().parents[2]

DIRTY = textwrap.dedent("""
    import random

    def merge(partials):
        for k, v in partials.items():
            consume(k, v)
""")

CLEAN = textwrap.dedent("""
    import numpy as np

    def assign(X: np.ndarray, C: np.ndarray) -> np.ndarray:
        return X @ C
""")


def write_tree(tmp_path, source):
    # The fabricated layout puts the file in scope of the core rules.
    target = tmp_path / "src" / "repro" / "core"
    target.mkdir(parents=True)
    (target / "snippet.py").write_text(source, encoding="utf-8")
    return tmp_path / "src"


def test_clean_tree_exits_zero(tmp_path, capsys):
    root = write_tree(tmp_path, CLEAN)
    assert main(["--check", str(root)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_dirty_tree_exits_one(tmp_path, capsys):
    root = write_tree(tmp_path, DIRTY)
    assert main(["--check", str(root)]) == 1
    out = capsys.readouterr().out
    assert "D101" in out and "D103" in out


def test_json_output_is_parseable(tmp_path, capsys):
    root = write_tree(tmp_path, DIRTY)
    assert main(["--check", "--json", str(root)]) == 1
    payload = json.loads(capsys.readouterr().out)
    rules = {f["rule"] for f in payload["findings"]}
    assert {"D101", "D103"} <= rules
    assert payload["counts"]["active"] >= 2


def test_rule_selection_limits_the_run(tmp_path, capsys):
    root = write_tree(tmp_path, DIRTY)
    assert main(["--check", "--rules", "D101", str(root)]) == 1
    out = capsys.readouterr().out
    assert "D101" in out and "D103" not in out


def test_unknown_rule_id_is_usage_error(tmp_path, capsys):
    root = write_tree(tmp_path, CLEAN)
    assert main(["--check", "--rules", "Z999", str(root)]) == 2
    assert "Z999" in capsys.readouterr().err


def test_list_rules_prints_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("D101", "L201", "C301", "E401", "T501"):
        assert rule_id in out


def test_fixture_directories_are_skipped(tmp_path, capsys):
    root = write_tree(tmp_path, CLEAN)
    bad = tmp_path / "src" / "repro" / "core" / "fixtures"
    bad.mkdir()
    (bad / "violation.py").write_text(DIRTY, encoding="utf-8")
    assert main(["--check", str(root)]) == 0


def test_module_entrypoint_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-rules"],
        cwd=REPO, capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "D101" in proc.stdout


# ---------------------------------------------------------------------------
# output formats
# ---------------------------------------------------------------------------

def test_github_format_emits_workflow_commands(tmp_path, capsys):
    root = write_tree(tmp_path, DIRTY)
    assert main(["--check", "--format", "github", str(root)]) == 1
    out = capsys.readouterr().out
    annotations = [line for line in out.splitlines()
                   if line.startswith("::error ")]
    assert annotations, out
    first = annotations[0]
    assert "file=" in first and "line=" in first and "col=" in first
    assert "title=reprolint D" in first


def test_github_format_escapes_newlines_and_commas(capsys):
    from repro.analysis.reprolint import Finding, render_github

    finding = Finding(rule="D101", path="a,b.py", line=1, col=1,
                      message="multi\nline % message")
    out = render_github([finding])
    assert "%0A" in out and "%25" in out
    assert "file=a%2Cb.py" in out
    assert "multi\nline" not in out


def test_format_json_matches_json_flag(tmp_path, capsys):
    root = write_tree(tmp_path, DIRTY)
    main(["--check", "--format", "json", str(root)])
    via_format = capsys.readouterr().out
    main(["--check", "--json", str(root)])
    via_flag = capsys.readouterr().out
    assert json.loads(via_format) == json.loads(via_flag)


# ---------------------------------------------------------------------------
# baselines
# ---------------------------------------------------------------------------

def test_baseline_grandfathers_existing_findings(tmp_path, capsys):
    root = write_tree(tmp_path, DIRTY)
    baseline = tmp_path / "baseline.json"
    assert main(["--write-baseline", str(baseline), str(root)]) == 0
    capsys.readouterr()
    # Everything is grandfathered: the gate passes.
    assert main(["--check", "--baseline", str(baseline), str(root)]) == 0
    out = capsys.readouterr().out
    assert "baselined finding" in out


def test_new_finding_fails_despite_baseline(tmp_path, capsys):
    root = write_tree(tmp_path, DIRTY)
    baseline = tmp_path / "baseline.json"
    assert main(["--write-baseline", str(baseline), str(root)]) == 0
    capsys.readouterr()
    # A new violation lands next to the grandfathered ones.
    snippet = tmp_path / "src" / "repro" / "core" / "snippet.py"
    snippet.write_text(snippet.read_text(encoding="utf-8")
                       + "\nimport time\nNOW = time.time()\n",
                       encoding="utf-8")
    assert main(["--check", "--baseline", str(baseline), str(root)]) == 1
    out = capsys.readouterr().out
    assert "D102" in out


def test_baseline_survives_line_shifts(tmp_path, capsys):
    root = write_tree(tmp_path, DIRTY)
    baseline = tmp_path / "baseline.json"
    assert main(["--write-baseline", str(baseline), str(root)]) == 0
    capsys.readouterr()
    # Prepend a harmless line: every finding moves down one line.
    snippet = tmp_path / "src" / "repro" / "core" / "snippet.py"
    snippet.write_text('"""docstring."""\n'
                       + snippet.read_text(encoding="utf-8"),
                       encoding="utf-8")
    assert main(["--check", "--baseline", str(baseline), str(root)]) == 0


def test_missing_baseline_is_usage_error(tmp_path, capsys):
    root = write_tree(tmp_path, CLEAN)
    missing = tmp_path / "nope.json"
    assert main(["--check", "--baseline", str(missing), str(root)]) == 2
    assert "baseline" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# cache flags
# ---------------------------------------------------------------------------

def test_cache_flag_creates_and_reuses_entries(tmp_path, capsys):
    root = write_tree(tmp_path, CLEAN)
    cache_dir = tmp_path / "lintcache"
    assert main(["--check", "--cache", str(cache_dir), str(root)]) == 0
    entries = list(cache_dir.iterdir())
    assert entries
    capsys.readouterr()
    assert main(["--check", "--cache", str(cache_dir), str(root)]) == 0


def test_no_cache_flag_ignores_env(tmp_path, monkeypatch, capsys):
    from repro.analysis.envvars import ENV_LINT_CACHE

    root = write_tree(tmp_path, CLEAN)
    cache_dir = tmp_path / "lintcache"
    monkeypatch.setenv(ENV_LINT_CACHE.name, str(cache_dir))
    assert main(["--check", "--no-cache", str(root)]) == 0
    assert not cache_dir.exists()
