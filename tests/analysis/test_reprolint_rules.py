"""Every reprolint rule catches its seeded violation and spares clean code.

Each rule gets at least one *positive* fixture (a minimal snippet carrying
the violation the rule exists for — the lint must flag it) and one
*negative* fixture (the disciplined variant — the lint must stay silent).
Snippets are linted under fabricated paths so the scope machinery is
exercised too.
"""

import textwrap

import pytest

from repro.analysis.reprolint import all_rules, lint_source

CORE = "src/repro/core/snippet.py"
RUNTIME = "src/repro/runtime/snippet.py"
EXPERIMENT = "experiments/snippet.py"


def findings_for(source, path, rule_id=None):
    found = lint_source(textwrap.dedent(source), path)
    active = [f for f in found if not f.suppressed]
    if rule_id is None:
        return active
    return [f for f in active if f.rule == rule_id]


def assert_clean(source, path, rule_id):
    hits = findings_for(source, path, rule_id)
    assert hits == [], [f.format() for f in hits]


# ---------------------------------------------------------------------------
# D101 unseeded randomness
# ---------------------------------------------------------------------------

class TestD101:
    def test_flags_stdlib_random_import(self):
        assert findings_for("import random\n", CORE, "D101")

    def test_flags_from_random_import(self):
        assert findings_for("from random import shuffle\n", CORE, "D101")

    def test_flags_argless_default_rng(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()
        """
        assert findings_for(src, CORE, "D101")

    def test_flags_global_stream_sampler(self):
        src = """
        import numpy as np
        x = np.random.rand(10)
        """
        assert findings_for(src, CORE, "D101")

    def test_accepts_seeded_generator(self):
        src = """
        import numpy as np

        def sample(seed: int):
            rng = np.random.default_rng(seed)
            return rng.normal(size=4)
        """
        assert_clean(src, CORE, "D101")

    def test_out_of_scope_module_is_ignored(self):
        assert_clean("import random\n", "src/repro/reporting/plots.py",
                     "D101")


# ---------------------------------------------------------------------------
# D102 wall clock in core numerics
# ---------------------------------------------------------------------------

class TestD102:
    def test_flags_perf_counter_in_core(self):
        src = """
        import time

        def cost():
            return time.perf_counter()
        """
        assert findings_for(src, CORE, "D102")

    def test_runtime_may_read_the_host_clock(self):
        src = """
        import time

        def elapsed():
            return time.perf_counter()
        """
        assert_clean(src, RUNTIME, "D102")


# ---------------------------------------------------------------------------
# D103 unordered iteration
# ---------------------------------------------------------------------------

class TestD103:
    def test_flags_dict_items_loop(self):
        src = """
        def merge(partials):
            for key, value in partials.items():
                consume(key, value)
        """
        assert findings_for(src, CORE, "D103")

    def test_flags_sum_over_dict_values(self):
        src = """
        def total(by_cg):
            return sum(by_cg.values())
        """
        assert findings_for(src, CORE, "D103")

    def test_flags_set_iteration(self):
        src = """
        def drain(ids):
            return [x for x in set(ids)]
        """
        assert findings_for(src, CORE, "D103")

    def test_accepts_sorted_items(self):
        src = """
        def merge(partials):
            for key, value in sorted(partials.items()):
                consume(key, value)
        """
        assert_clean(src, CORE, "D103")


# ---------------------------------------------------------------------------
# D104 float equality
# ---------------------------------------------------------------------------

class TestD104:
    def test_flags_inertia_equality(self):
        src = """
        def converged(prev_inertia, inertia):
            return prev_inertia == inertia
        """
        assert findings_for(src, CORE, "D104")

    def test_flags_float_literal_comparison(self):
        src = """
        def check(shift):
            return shift == 0.5
        """
        assert findings_for(src, CORE, "D104")

    def test_accepts_tolerance_comparison(self):
        src = """
        def converged(shift, tol):
            return shift <= tol
        """
        assert_clean(src, CORE, "D104")

    def test_accepts_shape_metadata_equality(self):
        src = """
        def compatible(centroids, other):
            return centroids.shape == other.shape
        """
        assert_clean(src, CORE, "D104")


# ---------------------------------------------------------------------------
# D105 completion-order collection
# ---------------------------------------------------------------------------

class TestD105:
    def test_flags_as_completed_import(self):
        src = "from concurrent.futures import as_completed\n"
        assert findings_for(src, RUNTIME, "D105")

    def test_flags_first_completed_wait(self):
        src = """
        import concurrent.futures as cf

        def drain(futures):
            return cf.wait(futures, return_when=cf.FIRST_COMPLETED)
        """
        assert findings_for(src, RUNTIME, "D105")

    def test_accepts_submission_order_collection(self):
        src = """
        def drain(futures):
            return [f.result() for f in futures]
        """
        assert_clean(src, RUNTIME, "D105")


# ---------------------------------------------------------------------------
# D106 manual accumulation over engine.map partials
# ---------------------------------------------------------------------------

class TestD106:
    def test_flags_augassign_loop_over_partials(self):
        src = """
        def iterate(self, X, C, k, d):
            import numpy as np
            partials = self.engine.map(self.shard_work, range(8))
            sums = np.zeros((k, d))
            counts = np.zeros(k)
            for s, c in partials:
                sums += s
                counts += c
            return sums, counts
        """
        assert findings_for(src, CORE, "D106")

    def test_flags_loop_over_derived_partials(self):
        src = """
        def iterate(self, plan):
            partials = self.engine.map(self.unit_work, range(plan.units))
            unit_sums = {u: partials[u][0] for u in range(plan.units)}
            total = 0.0
            for u in sorted(unit_sums):
                total += unit_sums[u].sum()
            return total
        """
        assert findings_for(src, RUNTIME, "D106")

    def test_flags_sum_comprehension_over_partials(self):
        src = """
        def iterate(self):
            partials = self.engine.map(self.work, range(4))
            return sum(p[0] for p in partials)
        """
        assert findings_for(src, CORE, "D106")

    def test_accepts_map_reduce(self):
        src = """
        def iterate(self, plan):
            sums, counts = self.engine.map_reduce(
                self.group_work, range(plan.n_groups), topology=self.reduce)
            return sums, counts
        """
        assert_clean(src, CORE, "D106")

    def test_accepts_non_accumulating_loop_over_partials(self):
        src = """
        def iterate(self):
            partials = self.engine.map(self.work, range(4))
            for value in partials:
                self.ledger.charge("compute", "ok", float(value))
            return partials
        """
        assert_clean(src, CORE, "D106")

    def test_reduce_module_is_exempt(self):
        src = """
        def fold(self, engine):
            partials = engine.map(self.work, range(4))
            total = 0.0
            for p in partials:
                total += p
            return total
        """
        assert_clean(src, "src/repro/runtime/reduce.py", "D106")

    def test_out_of_scope_module_is_ignored(self):
        src = """
        def collect(self):
            partials = self.engine.map(self.work, range(4))
            total = 0.0
            for p in partials:
                total += p
            return total
        """
        assert_clean(src, "benchmarks/bench_engine.py", "D106")


# ---------------------------------------------------------------------------
# D107 stale bounds after checkpoint restore
# ---------------------------------------------------------------------------

class TestD107:
    def test_flags_bounds_read_after_restore(self):
        src = """
        def recover(self, X, C):
            checkpoint = self.checkpoints.restore()
            return build_tasks(self.engine, X, C, self._pruned_bounds)
        """
        assert findings_for(src, CORE, "D107")

    def test_flags_bounds_read_after_load_checkpoint(self):
        src = """
        def resume(self, directory, X, C):
            snapshot = load_checkpoint(directory)
            if self._pruned_bounds.valid:
                return self._pruned_bounds.labels
            return None
        """
        assert findings_for(src, CORE, "D107")

    def test_accepts_invalidate_between_restore_and_read(self):
        src = """
        def recover(self, X, C):
            checkpoint = self.checkpoints.restore()
            self._pruned_bounds.invalidate()
            return build_tasks(self.engine, X, C, self._pruned_bounds)
        """
        assert_clean(src, CORE, "D107")

    def test_accepts_reset_hook_between_restore_and_read(self):
        src = """
        def recover(self, X, C):
            checkpoint = self.checkpoints.restore()
            self._reset_state_after_replan()
            return build_tasks(self.engine, X, C, self._pruned_bounds)
        """
        assert_clean(src, CORE, "D107")

    def test_accepts_carrier_rebuilt_after_restore(self):
        src = """
        def resume(self, directory, X, C):
            snapshot = load_checkpoint(directory)
            pruned_bounds = BlockBounds()
            return build_tasks(self.engine, X, C, pruned_bounds)
        """
        assert_clean(src, CORE, "D107")

    def test_accepts_read_before_restore(self):
        src = """
        def snapshot_then_restore(self):
            labels = self._pruned_bounds.labels
            checkpoint = self.checkpoints.restore()
            self._pruned_bounds.invalidate()
            return labels
        """
        assert_clean(src, CORE, "D107")

    def test_out_of_scope_module_is_ignored(self):
        src = """
        def recover(self):
            checkpoint = self.checkpoints.restore()
            return self._pruned_bounds.labels
        """
        assert_clean(src, "benchmarks/bench_engine.py", "D107")


# ---------------------------------------------------------------------------
# L201 ledger charge inside an engine task
# ---------------------------------------------------------------------------

class TestL201:
    def test_flags_charge_inside_mapped_function(self):
        src = """
        def iterate(self, X):
            def unit_work(unit):
                self.ledger.charge("compute", "bad", 1.0)
                return unit
            return self.engine.map(unit_work, range(4))
        """
        assert findings_for(src, CORE, "L201")

    def test_flags_charge_inside_mapped_lambda(self):
        src = """
        def iterate(self, X):
            return self.engine.map(
                lambda u: self.ledger.charge_parallel("dma", "bad", [u]),
                range(4))
        """
        assert findings_for(src, CORE, "L201")

    def test_accepts_charging_in_serial_loop(self):
        src = """
        def iterate(self, X):
            def unit_work(unit):
                return unit * 2
            partials = self.engine.map(unit_work, range(4))
            for value in partials:
                self.ledger.charge("compute", "ok", float(value))
            return partials
        """
        assert_clean(src, CORE, "L201")


# ---------------------------------------------------------------------------
# L202 unknown charge category
# ---------------------------------------------------------------------------

class TestL202:
    def test_flags_typoed_category(self):
        src = """
        def charge_it(ledger):
            ledger.charge("comptue", "l1.assign", 1.0)
        """
        assert findings_for(src, CORE, "L202")

    def test_accepts_canonical_categories(self):
        src = """
        def charge_it(ledger):
            ledger.charge("compute", "l1.assign", 1.0)
            ledger.charge_parallel("dma", "l1.stream", [1.0, 2.0])
        """
        assert_clean(src, CORE, "L202")


# ---------------------------------------------------------------------------
# C301 LDM-infeasible literal configs
# ---------------------------------------------------------------------------

class TestC301:
    def test_flags_level1_c1_violation(self):
        # d(1+2k)+k for k=2000, d=12288 is ~49e6 elements vs 8192 in LDM.
        src = """
        N, K, D = 1_000_000, 2000, 12_288
        plan = plan_level1(machine, N, K, D)
        """
        assert findings_for(src, EXPERIMENT, "C301")

    def test_flags_level2_c2_violation(self):
        # 3d+1 > 8192 elements: a whole sample no longer fits one CPE.
        src = """
        plan = plan_level2(machine, 10_000, 16, 12_288, mgroup=64)
        """
        assert findings_for(src, EXPERIMENT, "C301")

    def test_flags_level3_c1pp_violation(self):
        src = """
        plan = plan_level3(machine, 10_000, 200_000, 12_288, mprime_group=1)
        """
        assert findings_for(src, EXPERIMENT, "C301")

    def test_accepts_feasible_level1_config(self):
        # k=16, d=64: 64*33+16 = 2128 elements < 8192.
        src = """
        plan = plan_level1(machine, 100_000, 16, 64)
        """
        assert_clean(src, EXPERIMENT, "C301")

    def test_streaming_lifts_residency(self):
        src = """
        N, K, D = 1_000_000, 2000, 12_288
        plan = plan_level1(machine, N, K, D, streaming=True)
        """
        assert_clean(src, EXPERIMENT, "C301")

    def test_unresolvable_shapes_are_left_to_the_planner(self):
        src = """
        def run(machine, n, k, d):
            return plan_level1(machine, n, k, d)
        """
        assert_clean(src, EXPERIMENT, "C301")

    def test_core_is_out_of_scope(self):
        src = """
        plan = plan_level1(machine, 1_000_000, 2000, 12_288)
        """
        assert_clean(src, CORE, "C301")


# ---------------------------------------------------------------------------
# C302 partition parameter bounds
# ---------------------------------------------------------------------------

class TestC302:
    def test_flags_mgroup_above_cg_size(self):
        src = "plan = plan_level2(machine, 1000, 16, 64, mgroup=65)\n"
        assert findings_for(src, EXPERIMENT, "C302")

    def test_flags_zero_mprime_group(self):
        src = "plan = plan_level3(machine, 1000, 16, 64, mprime_group=0)\n"
        assert findings_for(src, EXPERIMENT, "C302")

    def test_accepts_legal_group_sizes(self):
        src = """
        a = plan_level2(machine, 1000, 16, 64, mgroup=8)
        b = plan_level3(machine, 1000, 16, 64, mprime_group=4)
        """
        assert_clean(src, EXPERIMENT, "C302")


# ---------------------------------------------------------------------------
# E401 raw environment reads
# ---------------------------------------------------------------------------

class TestE401:
    def test_flags_os_environ_get(self):
        src = """
        import os

        def engine_name():
            return os.environ.get("HOME")
        """
        assert findings_for(src, RUNTIME, "E401")

    def test_flags_os_getenv(self):
        src = """
        import os
        value = os.getenv("HOME")
        """
        assert findings_for(src, RUNTIME, "E401")

    def test_accessor_module_is_exempt(self):
        src = """
        import os
        value = os.environ.get("REPRO_ENGINE")
        """
        assert_clean(src, "src/repro/analysis/envvars.py", "E401")

    def test_accepts_typed_accessors(self):
        src = """
        from repro.analysis.envvars import ENV_ENGINE, read_str

        def engine_name():
            return read_str(ENV_ENGINE)
        """
        assert_clean(src, RUNTIME, "E401")


# ---------------------------------------------------------------------------
# E402 undeclared REPRO_* names
# ---------------------------------------------------------------------------

class TestE402:
    def test_flags_unregistered_variable(self):
        src = 'KNOB = "REPRO_SECRET_KNOB"\n'
        assert findings_for(src, RUNTIME, "E402")

    def test_accepts_registered_variable(self):
        src = 'KNOB = "REPRO_ENGINE"\n'
        assert_clean(src, RUNTIME, "E402")

    def test_non_repro_strings_are_ignored(self):
        src = 'OTHER = "PYTHONHASHSEED"\n'
        assert_clean(src, RUNTIME, "E402")


# ---------------------------------------------------------------------------
# E403 swallowed FaultError
# ---------------------------------------------------------------------------

class TestE403:
    def test_flags_broad_except_without_fault_arm(self):
        src = """
        def run(task):
            try:
                return task()
            except Exception:
                return None
        """
        assert findings_for(src, RUNTIME, "E403")

    def test_flags_bare_except(self):
        src = """
        def run(task):
            try:
                return task()
            except:
                return None
        """
        assert findings_for(src, RUNTIME, "E403")

    def test_accepts_fault_arm_before_broad_except(self):
        src = """
        from repro.errors import FaultError

        def run(task):
            try:
                return task()
            except FaultError:
                raise
            except Exception:
                return None
        """
        assert_clean(src, RUNTIME, "E403")

    def test_accepts_reraising_broad_except(self):
        src = """
        def run(task):
            try:
                return task()
            except Exception:
                cleanup()
                raise
        """
        assert_clean(src, RUNTIME, "E403")


# ---------------------------------------------------------------------------
# E404 unpicklable engine callable
# ---------------------------------------------------------------------------

class TestE404:
    def test_flags_lambda_task(self):
        src = """
        def run(engine, items):
            return engine.map(lambda item: item + 1, items)
        """
        assert findings_for(src, CORE, "E404")

    def test_flags_lambda_in_map_reduce(self):
        src = """
        class Executor:
            def step(self, items):
                return self.engine.map_reduce(lambda b: b.sum(), items)
        """
        assert findings_for(src, CORE, "E404")

    def test_flags_nested_def_task(self):
        src = """
        def run(engine, X, items):
            def block(item):
                return X[item].sum()
            return engine.map(block, items)
        """
        assert findings_for(src, RUNTIME, "E404")

    def test_flags_name_bound_to_lambda(self):
        src = """
        def run(engine, items):
            block = lambda item: item + 1
            return engine.map(block, items)
        """
        assert findings_for(src, CORE, "E404")

    def test_flags_partial_over_lambda(self):
        src = """
        import functools

        def run(engine, items):
            fn = functools.partial(lambda k, item: item + k, 2)
            return engine.map(fn, items)
        """
        assert findings_for(src, CORE, "E404")

    def test_accepts_module_level_function(self):
        src = """
        def block(item):
            return item + 1

        def run(engine, items):
            return engine.map(block, items)
        """
        assert_clean(src, CORE, "E404")

    def test_accepts_partial_over_module_function(self):
        src = """
        import functools

        def combine(a, b):
            return a + b

        def run(engine, partials, schedule):
            merge = functools.partial(combine)
            return engine.map(merge, schedule)
        """
        assert_clean(src, CORE, "E404")

    def test_accepts_imported_attribute(self):
        src = """
        from repro.core import block_tasks

        def run(engine, items):
            return engine.map(block_tasks.fused_assign_block, items)
        """
        assert_clean(src, CORE, "E404")

    def test_out_of_scope_module_is_ignored(self):
        src = """
        def run(engine, items):
            return engine.map(lambda item: item, items)
        """
        assert_clean(src, "src/repro/reporting/plots.py", "E404")


# ---------------------------------------------------------------------------
# E405 raw checkpoint I/O
# ---------------------------------------------------------------------------

class TestE405:
    def test_flags_raw_load_of_checkpoint_literal(self):
        src = """
        import numpy as np

        def peek(directory):
            return np.load(directory + "/checkpoint.npz")
        """
        assert findings_for(src, CORE, "E405")

    def test_flags_raw_savez_to_checkpoint_variable(self):
        src = """
        import numpy as np

        def snapshot(checkpoint_path, C):
            np.savez(checkpoint_path, centroids=C)
        """
        assert findings_for(src, RUNTIME, "E405")

    def test_flags_savez_compressed_to_registry_attribute(self):
        src = """
        import numpy as np

        def dump(store, C):
            np.savez_compressed(store.registry_path, centroids=C)
        """
        assert findings_for(src, CORE, "E405")

    def test_accepts_unrelated_paths(self):
        src = """
        import numpy as np

        def load_samples(path):
            return np.load(path)

        def save_result(path, C):
            np.savez_compressed(path, centroids=C)
        """
        assert_clean(src, CORE, "E405")

    def test_checkpoint_module_is_exempt(self):
        src = """
        import numpy as np

        def _persist(checkpoint_path, C):
            np.savez(checkpoint_path, centroids=C)
        """
        assert_clean(src, "src/repro/core/checkpoint.py", "E405")

    def test_store_methods_not_flagged(self):
        # Going through the sanctioned seam is the disciplined variant.
        src = """
        from repro.core.checkpoint import load_checkpoint

        def resume(checkpoint_dir):
            return load_checkpoint(checkpoint_dir)
        """
        assert_clean(src, CORE, "E405")


# ---------------------------------------------------------------------------
# T501 missing annotations
# ---------------------------------------------------------------------------

class TestT501:
    def test_flags_unannotated_public_function(self):
        src = """
        def assign(X, C):
            return X @ C
        """
        assert findings_for(src, CORE, "T501")

    def test_flags_missing_return_annotation(self):
        src = """
        import numpy as np

        def assign(X: np.ndarray, C: np.ndarray):
            return X @ C
        """
        assert findings_for(src, CORE, "T501")

    def test_accepts_fully_annotated_function(self):
        src = """
        import numpy as np

        def assign(X: np.ndarray, C: np.ndarray) -> np.ndarray:
            return X @ C
        """
        assert_clean(src, CORE, "T501")

    def test_private_helpers_and_self_are_exempt(self):
        src = """
        class Executor:
            def run(self, n: int) -> int:
                return self._helper(n)

            def _helper(self, n):
                return n
        """
        assert_clean(src, CORE, "T501")


# ---------------------------------------------------------------------------
# Registry integrity
# ---------------------------------------------------------------------------

def test_rule_ids_are_unique_and_stable():
    rules = all_rules()
    ids = [r.id for r in rules]
    assert len(ids) == len(set(ids))
    # The documented catalogue: removing a rule is an API break.
    assert {"D101", "D102", "D103", "D104", "D105", "D106", "D107",
            "L201", "L202", "C301", "C302",
            "E401", "E402", "E403", "E404", "T501"} <= set(ids)


def test_every_rule_has_summary_and_name():
    for rule in all_rules():
        assert rule.id and rule.name and rule.summary


@pytest.mark.parametrize("rule", all_rules(), ids=lambda r: r.id)
def test_rule_scopes_use_real_path_components(rule):
    known = {"core", "runtime", "machine", "analysis", "errors", "io",
             "repro", "experiments", "benchmarks", "examples", "envvars",
             "reduce", "checkpoint", "engine"}
    assert set(rule.scopes) <= known
    assert set(rule.exempt) <= known
