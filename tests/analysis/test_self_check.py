"""The linted tree is the shipping tree: src/repro itself must be clean.

This is the meta-test the whole PR hangs on — a rule set that the package
cannot pass is either a broken rule or undisciplined code, and either way
the build should say so.
"""

from pathlib import Path

import pytest

from repro.analysis import rules_config
from repro.analysis.envvars import REGISTRY
from repro.analysis.reprolint import lint_paths
from repro.machine.specs import CGSpec

REPO = Path(__file__).resolve().parents[2]


def test_src_repro_is_lint_clean():
    findings = [f for f in lint_paths([REPO / "src" / "repro"])
                if not f.suppressed]
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


@pytest.mark.parametrize("tree", ["experiments", "benchmarks", "examples"])
def test_script_trees_are_lint_clean(tree):
    root = REPO / tree
    if not root.exists():
        pytest.skip(f"{tree}/ not present")
    findings = [f for f in lint_paths([root]) if not f.suppressed]
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_suppressions_in_tree_all_carry_reasons():
    # R001 would have failed the clean check above; this documents the
    # stronger expectation explicitly.
    findings = lint_paths([REPO / "src" / "repro"])
    for f in findings:
        if f.suppressed:
            assert f.reason, f.format()


def test_c_series_budget_matches_machine_specs():
    cg = CGSpec()
    assert rules_config.LDM_BYTES_PER_CPE == cg.cpe.ldm_bytes
    assert rules_config.CPES_PER_CG == cg.n_cpes


def test_every_registered_env_var_is_documented():
    api = (REPO / "docs" / "api.md").read_text(encoding="utf-8")
    for name in REGISTRY:
        assert f"`{name}`" in api, (
            f"{name} is in the envvars registry but undocumented in "
            f"docs/api.md")


def test_invariants_doc_covers_every_rule():
    from repro.analysis.reprolint import all_rules

    doc = (REPO / "docs" / "invariants.md").read_text(encoding="utf-8")
    for rule in all_rules():
        assert rule.id in doc, (
            f"rule {rule.id} is registered but undocumented in "
            f"docs/invariants.md")


# ---------------------------------------------------------------------------
# whole-program graph self-check (the W rules see what the tree does)
# ---------------------------------------------------------------------------

#: Every engine.map / map_reduce / reduce_partials call site in src/repro,
#: pinned.  A new seam call site MUST show up in the constructed call graph
#: (or the W rules silently go blind to it) — update the count when one
#: lands, and investigate if the two scans ever disagree.
ENGINE_SEAM_SITE_COUNT = 10


def _build_src_project():
    from repro.analysis.project import Project, extract_summary
    from repro.analysis.reprolint import LintContext, iter_python_files

    summaries = []
    for path in iter_python_files([REPO / "src" / "repro"]):
        source = path.read_text(encoding="utf-8")
        ctx = LintContext.from_source(source, str(path))
        summaries.append(extract_summary(ctx.tree, ctx.path, ctx.parts))
    return Project(summaries)


def _textual_seam_scan():
    """Engine seam call sites found by an independent AST walk.

    Deliberately re-implements the receiver heuristic with separate,
    simpler code (last receiver segment named "engine", or `self` inside
    a class whose name ends in "Engine") so a project.py regression
    cannot hide from its own test.
    """
    import ast

    from repro.analysis.reprolint import iter_python_files

    sites = set()
    for path in iter_python_files([REPO / "src" / "repro"]):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        engine_classes = {node.name for node in ast.walk(tree)
                          if isinstance(node, ast.ClassDef)
                          and node.name.endswith("Engine")}
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("map", "map_reduce",
                                           "reduce_partials")):
                continue
            recv = node.func.value
            if isinstance(recv, ast.Name) and recv.id == "engine":
                sites.add((str(path), node.lineno))
            elif isinstance(recv, ast.Attribute) and recv.attr == "engine":
                sites.add((str(path), node.lineno))
            elif isinstance(recv, ast.Name) and recv.id == "self" \
                    and engine_classes:
                sites.add((str(path), node.lineno))
    return sites


def test_every_engine_seam_call_site_is_in_the_graph():
    project = _build_src_project()
    graph_sites = {(s.path, s.line) for s in project.graph.engine_sites}
    assert _textual_seam_scan() == graph_sites


def test_engine_seam_site_count_is_pinned():
    project = _build_src_project()
    assert len(project.graph.engine_sites) == ENGINE_SEAM_SITE_COUNT


def test_seam_sites_resolve_into_call_edges():
    # Each site must also exist as an edge from its caller, so taint can
    # enter the seam from anywhere in the graph.
    project = _build_src_project()
    for site in project.graph.engine_sites:
        edges = project.graph.by_caller.get(site.caller, [])
        assert any(e.call is site.call for e in edges), site
