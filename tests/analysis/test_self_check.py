"""The linted tree is the shipping tree: src/repro itself must be clean.

This is the meta-test the whole PR hangs on — a rule set that the package
cannot pass is either a broken rule or undisciplined code, and either way
the build should say so.
"""

from pathlib import Path

import pytest

from repro.analysis import rules_config
from repro.analysis.envvars import REGISTRY
from repro.analysis.reprolint import lint_paths
from repro.machine.specs import CGSpec

REPO = Path(__file__).resolve().parents[2]


def test_src_repro_is_lint_clean():
    findings = [f for f in lint_paths([REPO / "src" / "repro"])
                if not f.suppressed]
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


@pytest.mark.parametrize("tree", ["experiments", "benchmarks", "examples"])
def test_script_trees_are_lint_clean(tree):
    root = REPO / tree
    if not root.exists():
        pytest.skip(f"{tree}/ not present")
    findings = [f for f in lint_paths([root]) if not f.suppressed]
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_suppressions_in_tree_all_carry_reasons():
    # R001 would have failed the clean check above; this documents the
    # stronger expectation explicitly.
    findings = lint_paths([REPO / "src" / "repro"])
    for f in findings:
        if f.suppressed:
            assert f.reason, f.format()


def test_c_series_budget_matches_machine_specs():
    cg = CGSpec()
    assert rules_config.LDM_BYTES_PER_CPE == cg.cpe.ldm_bytes
    assert rules_config.CPES_PER_CG == cg.n_cpes


def test_every_registered_env_var_is_documented():
    api = (REPO / "docs" / "api.md").read_text(encoding="utf-8")
    for name in REGISTRY:
        assert f"`{name}`" in api, (
            f"{name} is in the envvars registry but undocumented in "
            f"docs/api.md")


def test_invariants_doc_covers_every_rule():
    from repro.analysis.reprolint import all_rules

    doc = (REPO / "docs" / "invariants.md").read_text(encoding="utf-8")
    for rule in all_rules():
        assert rule.id in doc, (
            f"rule {rule.id} is registered but undocumented in "
            f"docs/invariants.md")
