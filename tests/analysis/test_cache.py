"""The incremental lint cache: warm-skip, invalidation, degradation."""

import textwrap

from repro.analysis.cache import LintCache, default_cache_dir
from repro.analysis.envvars import ENV_LINT_CACHE
from repro.analysis.reprolint import lint_paths

DIRTY = """
    import random

    def merge(partials):
        for k, v in partials.items():
            consume(k, v)
"""

CLEAN = """
    import numpy as np

    def assign(X: np.ndarray, C: np.ndarray) -> np.ndarray:
        return X @ C
"""


def write_tree(tmp_path, files):
    target = tmp_path / "src" / "repro" / "core"
    target.mkdir(parents=True, exist_ok=True)
    for name, source in files.items():
        (target / name).write_text(textwrap.dedent(source),
                                   encoding="utf-8")
    return tmp_path / "src"


def test_warm_run_skips_unchanged_files(tmp_path):
    root = write_tree(tmp_path, {"a.py": DIRTY, "b.py": CLEAN})
    cache_dir = tmp_path / "cache"

    cold_cache = LintCache(cache_dir)
    cold = lint_paths([root], cache=cold_cache)
    assert cold_cache.hits == 0 and cold_cache.misses == 2

    warm_cache = LintCache(cache_dir)
    warm = lint_paths([root], cache=warm_cache)
    assert warm_cache.hits == 2 and warm_cache.misses == 0
    assert warm == cold


def test_whole_program_findings_cached_per_tree(tmp_path):
    root = write_tree(tmp_path, {"a.py": DIRTY})
    cache_dir = tmp_path / "cache"

    cold_cache = LintCache(cache_dir)
    lint_paths([root], cache=cold_cache)
    assert cold_cache.project_misses == 1

    warm_cache = LintCache(cache_dir)
    lint_paths([root], cache=warm_cache)
    assert warm_cache.project_hits == 1 and warm_cache.project_misses == 0


def test_edit_invalidates_only_the_changed_file(tmp_path):
    root = write_tree(tmp_path, {"a.py": CLEAN, "b.py": CLEAN})
    cache_dir = tmp_path / "cache"
    lint_paths([root], cache=LintCache(cache_dir))

    write_tree(tmp_path, {"a.py": DIRTY})  # b.py untouched
    warm_cache = LintCache(cache_dir)
    findings = lint_paths([root], cache=warm_cache)
    assert warm_cache.hits == 1 and warm_cache.misses == 1
    # The edited file's new findings are visible (no stale reuse) ...
    dirty_rules = {f.rule for f in findings
                   if f.path.endswith("a.py") and not f.suppressed}
    assert "D101" in dirty_rules
    # ... and the tree digest changed, so whole-program rules re-ran.
    assert warm_cache.project_hits == 0


def test_cached_and_cold_results_agree_on_edited_tree(tmp_path):
    root = write_tree(tmp_path, {"a.py": CLEAN, "b.py": DIRTY})
    cache_dir = tmp_path / "cache"
    lint_paths([root], cache=LintCache(cache_dir))

    write_tree(tmp_path, {"b.py": CLEAN})
    warm = lint_paths([root], cache=LintCache(cache_dir))
    cold = lint_paths([root])
    assert warm == cold


def test_corrupt_entry_degrades_to_miss(tmp_path):
    root = write_tree(tmp_path, {"a.py": CLEAN})
    cache_dir = tmp_path / "cache"
    lint_paths([root], cache=LintCache(cache_dir))

    for entry in cache_dir.iterdir():
        entry.write_bytes(b"not a pickle")
    warm_cache = LintCache(cache_dir)
    warm = lint_paths([root], cache=warm_cache)
    assert warm_cache.hits == 0 and warm_cache.misses == 1
    assert warm == lint_paths([root])


def test_default_cache_dir_reads_registered_knob(monkeypatch, tmp_path):
    monkeypatch.setenv(ENV_LINT_CACHE.name, str(tmp_path / "lintcache"))
    assert default_cache_dir() == tmp_path / "lintcache"
    monkeypatch.setenv(ENV_LINT_CACHE.name, "   ")
    assert default_cache_dir() is None
    monkeypatch.delenv(ENV_LINT_CACHE.name)
    assert default_cache_dir() is None
