"""W601–W605: the interprocedural rules, incl. holes the per-file rules miss.

Every positive fixture here launders the violation through at least one
helper-function hop, and each one asserts *both* that the W rule fires
and that its per-file counterpart (D106, L201, E401, E404, D103) stays
silent — that pairing is the whole point of the W series.
"""

import textwrap

from repro.analysis.reprolint import all_rules, lint_paths, lint_source

CORE = "src/repro/core/snippet.py"
RUNTIME = "src/repro/runtime/snippet.py"


def findings_for(source, path, rule_id):
    source = textwrap.dedent(source)
    return [f for f in lint_source(source, path)
            if f.rule == rule_id and not f.suppressed]


def assert_fires(source, path, rule_id):
    found = findings_for(source, path, rule_id)
    assert found, f"{rule_id} should fire on:\n{textwrap.dedent(source)}"
    return found


def assert_clean(source, path, rule_id):
    found = findings_for(source, path, rule_id)
    assert not found, f"{rule_id} should NOT fire: {found}"


def write_package(tmp_path, files):
    """Materialise {relpath: source} under tmp_path and return the root."""
    for rel, src in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(src), encoding="utf-8")
    return tmp_path


# ---------------------------------------------------------------------------
# W601 — engine.map partials reaching manual accumulation anywhere
# ---------------------------------------------------------------------------

W601_HELPER_HOP = """
    def fan_out(engine, items, fn):
        return engine.map(fn, items)

    def run(engine, items, fn):
        partials = fan_out(engine, items, fn)
        total = 0.0
        for p in partials:
            total += p.inertia
        return total
"""


def test_w601_fires_through_helper_return():
    assert_fires(W601_HELPER_HOP, CORE, "W601")


def test_w601_hole_is_invisible_to_d106():
    # The per-file rule loses the taint at the fan_out boundary.
    assert_clean(W601_HELPER_HOP, CORE, "D106")


def test_w601_fires_through_parameter_hop():
    assert_fires(
        """
        def accumulate(parts):
            total = 0.0
            for p in parts:
                total += p
            return total

        def run(engine, items, fn):
            return accumulate(engine.map(fn, items))
        """,
        CORE, "W601")


def test_w601_fires_on_sum_over_laundered_partials():
    assert_fires(
        """
        def fan_out(engine, items, fn):
            return engine.map(fn, items)

        def run(engine, items, fn):
            return sum(fan_out(engine, items, fn))
        """,
        CORE, "W601")


def test_w601_clean_on_map_reduce():
    assert_clean(
        """
        def run(engine, items, fn, combine):
            merged, partials = engine.map_reduce(fn, items, combine)
            return merged
        """,
        CORE, "W601")


def test_w601_clean_on_unrelated_accumulation():
    assert_clean(
        """
        def run(engine, items, fn):
            partials = engine.map(fn, items)
            total = 0.0
            for x in range(10):
                total += float(x)
            return partials, total
        """,
        CORE, "W601")


def test_w601_suppression_comment_mutes_the_sink():
    src = textwrap.dedent("""
        def fan_out(engine, items, fn):
            return engine.map(fn, items)

        def run(engine, items, fn):
            partials = fan_out(engine, items, fn)
            total = 0.0
            for p in partials:
                total += p  # reprolint: disable=W601 -- test probe
            return total
    """)
    found = [f for f in lint_source(src, CORE) if f.rule == "W601"]
    assert found and all(f.suppressed for f in found)


def test_w601_fires_across_modules(tmp_path):
    root = write_package(tmp_path, {
        "src/repro/core/fanout.py": """
            def fan_out(engine, items, fn):
                return engine.map(fn, items)
        """,
        "src/repro/core/consume.py": """
            from repro.core.fanout import fan_out

            def run(engine, items, fn):
                parts = fan_out(engine, items, fn)
                total = 0.0
                for p in parts:
                    total += p
                return total
        """,
    })
    findings = lint_paths([root / "src"])
    w601 = [f for f in findings if f.rule == "W601" and not f.suppressed]
    assert len(w601) == 1
    assert w601[0].path.endswith("consume.py")


# ---------------------------------------------------------------------------
# W602 — ledger charges reachable from engine task bodies
# ---------------------------------------------------------------------------

W602_DEEP_CHARGE = """
    def deep(ledger, t):
        ledger.charge("compute", t)

    def middle(ledger, t):
        deep(ledger, t)

    def task(block, ledger):
        middle(ledger, 1.0)
        return block

    def run(engine, blocks, ledger):
        import functools
        return engine.map(functools.partial(task, ledger=ledger), blocks)
"""


def test_w602_fires_two_calls_deep():
    found = assert_fires(W602_DEEP_CHARGE, CORE, "W602")
    assert "reached from task" in found[0].message


def test_w602_hole_is_invisible_to_l201():
    assert_clean(W602_DEEP_CHARGE, CORE, "L201")


def test_w602_fires_for_combine_callables():
    assert_fires(
        """
        def combine(a, b, ledger):
            ledger.charge("reduce", 1.0)
            return a

        def run(engine, parts, ledger):
            import functools
            fn = functools.partial(combine, ledger=ledger)
            return engine.reduce_partials(parts, fn)
        """,
        CORE, "W602")


def test_w602_clean_when_charging_in_serial_loop():
    assert_clean(
        """
        def task(block):
            return block

        def run(engine, blocks, ledger):
            partials = engine.map(task, blocks)
            for p in partials:
                ledger.charge("compute", p)
            return partials
        """,
        CORE, "W602")


def test_w602_clean_for_helper_not_reachable_from_task():
    assert_clean(
        """
        def charger(ledger, t):
            ledger.charge("compute", t)

        def task(block):
            return block

        def run(engine, blocks, ledger):
            partials = engine.map(task, blocks)
            charger(ledger, 1.0)
            return partials
        """,
        CORE, "W602")


# ---------------------------------------------------------------------------
# W603 — environment reads laundered past envvars.py
# ---------------------------------------------------------------------------

W603_IMPORT_ALIAS = """
    from os import environ

    def run():
        return environ["REPRO_ENGINE"]
"""


def test_w603_fires_on_from_import_alias():
    assert_fires(W603_IMPORT_ALIAS, RUNTIME, "W603")


def test_w603_hole_is_invisible_to_e401():
    # E401 matches dotted names ending in os.environ/os.getenv; the bare
    # `environ` alias from `from os import environ` slips through.
    assert_clean(W603_IMPORT_ALIAS, RUNTIME, "E401")


def test_w603_fires_on_rebound_getter():
    assert_fires(
        """
        import os

        def run():
            getter = os.getenv
            return getter("REPRO_ENGINE")
        """,
        RUNTIME, "W603")


def test_w603_fires_on_mapping_passed_through_helper():
    assert_fires(
        """
        from os import environ

        def pick(mapping, key):
            return mapping.get(key)

        def run():
            return pick(environ, "REPRO_ENGINE")
        """,
        RUNTIME, "W603")


def test_w603_clean_on_typed_accessors():
    assert_clean(
        """
        from repro.analysis import envvars

        def run():
            return envvars.read_str(envvars.ENV_ENGINE)
        """,
        RUNTIME, "W603")


def test_w603_does_not_double_report_e401_sites():
    # Direct os.environ reads are E401's finding; W603 stays quiet.
    assert_clean(
        """
        import os

        def run():
            return os.environ["REPRO_ENGINE"]
        """,
        RUNTIME, "W603")


# ---------------------------------------------------------------------------
# W604 — unpicklable callables flowing into the engine seam
# ---------------------------------------------------------------------------

W604_FACTORY = """
    def make_task(scale):
        return lambda b: b * scale

    def run(engine, blocks):
        fn = make_task(2.0)
        return engine.map(fn, blocks)
"""


def test_w604_fires_on_factory_returned_lambda():
    assert_fires(W604_FACTORY, CORE, "W604")


def test_w604_hole_is_invisible_to_e404():
    assert_clean(W604_FACTORY, CORE, "E404")


def test_w604_fires_through_wrapper_parameter():
    assert_fires(
        """
        def submit(engine, fn, blocks):
            return engine.map(fn, blocks)

        def run(engine, blocks):
            return submit(engine, lambda b: b + 1, blocks)
        """,
        CORE, "W604")


def test_w604_fires_on_partial_over_nested_def():
    assert_fires(
        """
        import functools

        def run(engine, blocks):
            def inner(b, scale):
                return b * scale

            fn = functools.partial(inner, scale=2.0)
            return engine.map(fn, blocks)
        """,
        CORE, "W604")


def test_w604_clean_on_module_level_partial():
    assert_clean(
        """
        import functools

        def task(block, scale):
            return block * scale

        def run(engine, blocks):
            fn = functools.partial(task, scale=2.0)
            return engine.map(fn, blocks)
        """,
        CORE, "W604")


# ---------------------------------------------------------------------------
# W605 — dict/set iteration order flowing into committed state
# ---------------------------------------------------------------------------

W605_HELPER_HOP = """
    def collect(parts):
        return [v for v in parts.values()]

    def run(parts, state):
        merged = collect(parts)
        state.centroids = merged
        return state
"""


def test_w605_fires_through_helper_hop():
    assert_fires(W605_HELPER_HOP, CORE, "W605")


def test_w605_hole_is_invisible_to_d103(tmp_path):
    # D103 only looks at iteration sites inside core/ and runtime/.  An
    # iteration in an unscoped module whose result flows into committed
    # core state is its blind spot; W605 follows the flow to the sink.
    root = write_package(tmp_path, {
        "src/repro/reporting/collect.py": """
            def collect(parts):
                return [v for v in parts.values()]
        """,
        "src/repro/core/commit.py": """
            from repro.reporting.collect import collect

            def run(parts, state):
                state.centroids = collect(parts)
                return state
        """,
    })
    findings = [f for f in lint_paths([root / "src"]) if not f.suppressed]
    assert not [f for f in findings if f.rule == "D103"]
    w605 = [f for f in findings if f.rule == "W605"]
    assert len(w605) == 1
    assert w605[0].path.endswith("commit.py")


def test_w605_fires_on_order_tainted_charge():
    assert_fires(
        """
        def weights(parts):
            return [v for v in parts.values()]

        def run(parts, ledger):
            for w in weights(parts):
                ledger.charge("compute", w)
        """,
        CORE, "W605")


def test_w605_sorted_cancels_the_taint():
    assert_clean(
        """
        def collect(parts):
            return [parts[k] for k in sorted(parts)]

        def run(parts, state):
            state.centroids = collect(parts)
            return state
        """,
        CORE, "W605")


def test_w605_clean_on_list_sources():
    assert_clean(
        """
        def collect(parts):
            return [v * 2 for v in parts]

        def run(parts, state):
            state.centroids = collect(parts)
            return state
        """,
        CORE, "W605")


# ---------------------------------------------------------------------------
# registry / scoping integration
# ---------------------------------------------------------------------------

def test_w_rules_are_registered_and_scoped():
    ids = {r.id for r in all_rules()}
    assert {"W601", "W602", "W603", "W604", "W605"} <= ids


def test_w_rules_skip_out_of_scope_paths():
    # Reporting code is outside every W scope except W603/W605 ("repro").
    assert_clean(W601_HELPER_HOP, "src/repro/reporting/snippet.py", "W601")
    assert_clean(W602_DEEP_CHARGE, "src/repro/reporting/snippet.py", "W602")
