"""Tests for the machine/partition text renderers."""

import numpy as np
import pytest

from repro.core.partition import plan_level3
from repro.errors import ConfigurationError
from repro.machine.machine import Machine, toy_machine
from repro.machine.render import (
    render_level3_partition,
    render_machine,
    render_processor,
)
from repro.machine.specs import sunway_spec, toy_spec


class TestRenderProcessor:
    def test_mentions_published_numbers(self):
        out = render_processor(sunway_spec(1))
        assert "4 core groups" in out
        assert "8x8 CPE mesh" in out
        assert "64 KB LDM" in out
        assert "46.4 GB/s" in out
        assert "32.0 GB/s" in out
        assert "32 GB" in out

    def test_toy_spec_renders_its_own_numbers(self):
        out = render_processor(toy_spec(1, cgs_per_node=2, mesh=2,
                                        ldm_bytes=8192))
        assert "2 core groups" in out
        assert "2x2 CPE mesh" in out
        assert "8 KB LDM" in out


class TestRenderMachine:
    def test_counts_and_supernodes(self):
        out = render_machine(sunway_spec(512))
        assert "512 node(s)" in out
        assert "2048 core groups" in out
        assert "supernodes: 2" in out

    def test_aggregate_numbers(self):
        out = render_machine(sunway_spec(4096))
        assert "1,048,576 CPEs" in out


class TestRenderPartition:
    @pytest.fixture(scope="class")
    def rendered(self):
        machine = Machine(sunway_spec(8), materialize_ldm=False)
        plan = plan_level3(machine, 10_000, 200, 4096, dtype=np.float32)
        return plan, machine, render_level3_partition(plan, machine)

    def test_header_states_the_partition(self, rendered):
        plan, _, out = rendered
        assert f"m'group={plan.mprime_group}" in out
        assert "k=200" in out
        assert "d=4,096" in out

    def test_shows_sample_blocks_and_slices(self, rendered):
        _, _, out = rendered
        assert "CG group 0: samples [0," in out
        assert "centroids [0," in out
        assert "dims/CPE" in out

    def test_elision_is_announced(self, rendered):
        plan, machine, out = rendered
        if plan.mprime_group > 4:
            assert "more member CG(s)" in out
        if plan.n_groups > 4:
            assert "more CG group(s)" in out

    def test_small_plan_not_elided(self):
        machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                              ldm_bytes=64 * 1024)
        plan = plan_level3(machine, 100, 4, 16)
        out = render_level3_partition(plan, machine)
        assert "more CG group(s)" not in out

    def test_validation(self):
        machine = toy_machine(n_nodes=1, cgs_per_node=2, mesh=2,
                              ldm_bytes=64 * 1024)
        plan = plan_level3(machine, 100, 4, 16)
        with pytest.raises(ConfigurationError):
            render_level3_partition(plan, machine, max_groups=0)
