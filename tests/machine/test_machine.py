"""Tests for the Machine facade and CG-group placement."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.machine import (
    Machine,
    machine_from_preset,
    sunway_machine,
    toy_machine,
)
from repro.machine.specs import sunway_spec


@pytest.fixture
def machine():
    # 8 nodes x 2 CGs = 16 CGs; toy supernodes hold 4 nodes (8 CGs).
    return toy_machine(n_nodes=8, cgs_per_node=2, mesh=2, ldm_bytes=4096)


class TestStructure:
    def test_counts(self, machine):
        assert machine.n_nodes == 8
        assert machine.n_cgs == 16
        assert machine.n_cpes == 64
        assert machine.cpes_per_cg == 4

    def test_node_of_cg_is_node_major(self, machine):
        assert machine.node_of_cg(0) == 0
        assert machine.node_of_cg(1) == 0
        assert machine.node_of_cg(2) == 1
        assert machine.node_of_cg(15) == 7

    def test_node_of_cg_range(self, machine):
        with pytest.raises(ConfigurationError):
            machine.node_of_cg(16)
        with pytest.raises(ConfigurationError):
            machine.node_of_cg(-1)

    def test_core_group_objects_have_node_index(self, machine):
        assert machine.core_group(3).node_index == 1

    def test_core_groups_iterates_all(self, machine):
        assert len(list(machine.core_groups())) == 16

    def test_reset_ldm(self, machine):
        machine.core_group(0).cpe(0).ldm.alloc("x", 64)
        machine.reset_ldm()
        assert machine.core_group(0).cpe(0).ldm.used_bytes == 0

    def test_sunway_machine_default_one_node(self):
        m = sunway_machine()
        assert m.n_nodes == 1
        assert m.n_cpes == 256
        assert m.ldm_bytes == 65536

    def test_unmaterialized_machine_rejects_cg_access(self):
        m = Machine(sunway_spec(4), materialize_ldm=False)
        with pytest.raises(ConfigurationError, match="materialize_ldm"):
            m.core_group(0)

    def test_large_sunway_defaults_to_unmaterialized(self):
        m = sunway_machine(4096)
        assert m.n_cgs == 16384
        with pytest.raises(ConfigurationError):
            m.core_group(0)

    def test_preset_constructor(self):
        m = machine_from_preset("sunway-128")
        assert m.n_nodes == 128


class TestPlacement:
    def test_contiguous_placement(self, machine):
        groups = machine.place_cg_groups(group_size=4, n_groups=4)
        assert groups[0] == [0, 1, 2, 3]
        assert groups[3] == [12, 13, 14, 15]

    def test_contiguous_groups_stay_in_supernode_when_possible(self, machine):
        # 4-node supernodes = 8 CGs; groups of 4 CGs fit inside.
        groups = machine.place_cg_groups(group_size=4, n_groups=4)
        assert not machine.group_spans_supernodes(groups[0])
        assert not machine.group_spans_supernodes(groups[1])

    def test_strided_placement_spans_supernodes(self, machine):
        groups = machine.place_cg_groups(group_size=4, n_groups=4,
                                         supernode_aware=False)
        assert groups[0] == [0, 4, 8, 12]
        assert machine.group_spans_supernodes(groups[0])

    def test_placement_covers_disjoint_cgs(self, machine):
        for aware in (True, False):
            groups = machine.place_cg_groups(4, 4, supernode_aware=aware)
            flat = [cg for g in groups for cg in g]
            assert sorted(flat) == list(range(16))

    def test_too_many_groups_rejected(self, machine):
        with pytest.raises(ConfigurationError, match="cannot place"):
            machine.place_cg_groups(group_size=4, n_groups=5)

    def test_invalid_sizes_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            machine.place_cg_groups(0, 1)
        with pytest.raises(ConfigurationError):
            machine.place_cg_groups(1, 0)

    def test_group_bandwidth_derated_across_supernodes(self, machine):
        inside = machine.group_bandwidth([0, 1, 2, 3])
        across = machine.group_bandwidth([0, 15])
        assert across < inside
