"""Tests for the LDM scratchpad allocator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, LDMOverflowError
from repro.machine.ldm import LDMAllocator


@pytest.fixture
def ldm():
    return LDMAllocator(1024)


class TestAllocation:
    def test_alloc_reserves_bytes(self, ldm):
        a = ldm.alloc("buf", 100)
        assert a.nbytes == 100
        assert a.offset == 0
        assert ldm.used_bytes == 100

    def test_sequential_offsets(self, ldm):
        a = ldm.alloc("a", 100)
        b = ldm.alloc("b", 200)
        assert b.offset == a.offset + a.nbytes

    def test_exact_fill_is_allowed(self, ldm):
        ldm.alloc("all", 1024)
        assert ldm.free_bytes == 0

    def test_overflow_raises_with_details(self, ldm):
        ldm.alloc("a", 1000)
        with pytest.raises(LDMOverflowError) as e:
            ldm.alloc("b", 100)
        assert e.value.requested == 100
        assert e.value.available == 24
        assert e.value.capacity == 1024
        assert "b" in str(e.value)

    def test_duplicate_label_rejected(self, ldm):
        ldm.alloc("x", 10)
        with pytest.raises(ConfigurationError, match="already allocated"):
            ldm.alloc("x", 10)

    def test_nonpositive_size_rejected(self, ldm):
        with pytest.raises(ConfigurationError):
            ldm.alloc("zero", 0)
        with pytest.raises(ConfigurationError):
            ldm.alloc("neg", -4)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            LDMAllocator(0)

    def test_alloc_array_uses_dtype_itemsize(self, ldm):
        a = ldm.alloc_array("arr", (16, 4), np.float64)
        assert a.nbytes == 16 * 4 * 8
        b = ldm.alloc_array("arr32", (16,), np.float32)
        assert b.nbytes == 64

    def test_alloc_array_scalar_shape(self, ldm):
        assert ldm.alloc_array("s", (), np.float64).nbytes == 8


class TestFreeing:
    def test_free_releases_accounting(self, ldm):
        ldm.alloc("a", 100)
        ldm.free("a")
        assert ldm.used_bytes == 0
        assert "a" not in ldm

    def test_free_top_retreats_cursor(self, ldm):
        ldm.alloc("a", 100)
        ldm.alloc("b", 100)
        ldm.free("b")
        c = ldm.alloc("c", 900)  # only fits if the cursor retreated
        assert c.offset == 100

    def test_free_unknown_raises(self, ldm):
        with pytest.raises(ConfigurationError, match="not allocated"):
            ldm.free("ghost")

    def test_interior_free_keeps_address_space(self, ldm):
        ldm.alloc("a", 400)
        ldm.alloc("b", 400)
        ldm.free("a")  # interior: cursor cannot retreat past b
        assert ldm.used_bytes == 400
        with pytest.raises(LDMOverflowError):
            ldm.alloc("c", 400)

    def test_reset_clears_everything(self, ldm):
        ldm.alloc("a", 500)
        ldm.alloc("b", 500)
        ldm.reset()
        assert ldm.used_bytes == 0
        assert len(ldm) == 0
        ldm.alloc("fresh", 1024)


class TestIntrospection:
    def test_would_fit(self, ldm):
        assert ldm.would_fit(1024)
        ldm.alloc("a", 1000)
        assert ldm.would_fit(24)
        assert not ldm.would_fit(25)

    def test_iteration_yields_allocations(self, ldm):
        ldm.alloc("a", 10)
        ldm.alloc("b", 20)
        labels = {a.label for a in ldm}
        assert labels == {"a", "b"}

    def test_report_mentions_labels_and_usage(self, ldm):
        ldm.alloc("centroids", 512)
        report = ldm.report()
        assert "centroids" in report
        assert "512" in report
        assert "50.0%" in report
