"""Tests for the two-level fat-tree topology."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.specs import NetworkSpec
from repro.machine.topology import FatTreeTopology


@pytest.fixture
def topo():
    # 10 nodes, 4 per supernode -> supernodes {0..3},{4..7},{8,9}.
    return FatTreeTopology(10, NetworkSpec(nodes_per_supernode=4))


class TestStructure:
    def test_supernode_membership(self, topo):
        assert topo.supernode_of(0) == 0
        assert topo.supernode_of(3) == 0
        assert topo.supernode_of(4) == 1
        assert topo.supernode_of(9) == 2

    def test_n_supernodes_rounds_up(self, topo):
        assert topo.n_supernodes == 3

    def test_same_supernode(self, topo):
        assert topo.same_supernode(0, 3)
        assert not topo.same_supernode(3, 4)

    def test_nodes_in_supernode(self, topo):
        assert topo.nodes_in_supernode(0) == [0, 1, 2, 3]
        assert topo.nodes_in_supernode(2) == [8, 9]

    def test_nodes_in_supernode_out_of_range(self, topo):
        with pytest.raises(ConfigurationError):
            topo.nodes_in_supernode(3)

    def test_node_out_of_range(self, topo):
        with pytest.raises(ConfigurationError):
            topo.supernode_of(10)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            FatTreeTopology(0, NetworkSpec())

    def test_graph_has_three_tiers(self, topo):
        kinds = {node[0] for node in topo.graph.nodes}
        assert kinds == {"node", "switch", "central"}

    def test_hop_counts(self, topo):
        assert topo.hop_count(5, 5) == 0
        assert topo.hop_count(0, 1) == 2       # via supernode switch
        assert topo.hop_count(0, 9) == 4       # via central router

    def test_path_through_central_router(self, topo):
        path = topo.path(0, 9)
        assert ("central", 0) in path
        path_local = topo.path(0, 1)
        assert ("central", 0) not in path_local


class TestMessageCost:
    def test_same_node_is_free(self, topo):
        assert topo.point_to_point_time(2, 2, 10**6) == 0.0

    def test_intra_supernode_cheaper_than_inter(self, topo):
        nbytes = 10**6
        intra = topo.point_to_point_time(0, 1, nbytes)
        inter = topo.point_to_point_time(0, 9, nbytes)
        assert intra < inter

    def test_cost_scales_with_bytes(self, topo):
        t1 = topo.point_to_point_time(0, 1, 10**6)
        t2 = topo.point_to_point_time(0, 1, 2 * 10**6)
        assert t2 > t1

    def test_bisection_bandwidth_drops_across_supernodes(self, topo):
        inside = topo.bisection_bandwidth([0, 1, 2])
        across = topo.bisection_bandwidth([0, 1, 8])
        assert across < inside

    def test_bisection_empty_set_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            topo.bisection_bandwidth([])

    def test_spans_supernodes(self, topo):
        assert not topo.spans_supernodes([0, 1, 3])
        assert topo.spans_supernodes([3, 4])
