"""Tests for the hardware spec dataclasses (published SW26010 numbers)."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.specs import (
    CGSpec,
    CPESpec,
    MachineSpec,
    NetworkSpec,
    PRESETS,
    ProcessorSpec,
    preset,
    sunway_spec,
    toy_spec,
)


class TestCPESpec:
    def test_default_clock_is_1_45_ghz(self):
        assert CPESpec().clock_hz == pytest.approx(1.45e9)

    def test_default_ldm_is_64_kib(self):
        assert CPESpec().ldm_bytes == 65536

    def test_peak_flops(self):
        cpe = CPESpec()
        assert cpe.peak_flops == pytest.approx(1.45e9 * 8.0)


class TestCGSpec:
    def test_mesh_is_8x8(self):
        cg = CGSpec()
        assert cg.mesh_rows == 8 and cg.mesh_cols == 8
        assert cg.n_cpes == 64

    def test_register_bandwidth_matches_paper(self):
        assert CGSpec().register_bw == pytest.approx(46.4e9)

    def test_dma_bandwidth_matches_paper(self):
        assert CGSpec().dma_bw == pytest.approx(32.0e9)

    def test_total_ldm(self):
        assert CGSpec().total_ldm_bytes == 64 * 65536

    def test_peak_flops_aggregates_cpes(self):
        cg = CGSpec()
        assert cg.peak_flops == pytest.approx(64 * cg.cpe.peak_flops)


class TestProcessorSpec:
    def test_sw26010_has_4_cgs_256_cpes(self):
        proc = ProcessorSpec()
        assert proc.n_cgs == 4
        assert proc.n_cpes == 256

    def test_main_memory_is_32_gib(self):
        assert ProcessorSpec().main_memory_bytes == 32 * 2**30


class TestNetworkSpec:
    def test_supernode_size(self):
        assert NetworkSpec().nodes_per_supernode == 256

    def test_link_bandwidth_matches_paper(self):
        assert NetworkSpec().link_bw == pytest.approx(16.0e9)

    def test_inter_supernode_is_derated(self):
        net = NetworkSpec()
        assert net.bandwidth(False) < net.bandwidth(True)

    def test_inter_supernode_latency_is_higher(self):
        net = NetworkSpec()
        assert net.latency(False) > net.latency(True)


class TestMachineSpec:
    def test_counts_scale_with_nodes(self):
        spec = sunway_spec(16)
        assert spec.n_cgs == 64
        assert spec.n_cpes == 4096

    def test_paper_level3_setup_core_count(self):
        # "4,096 SW26010 many-core processors ... 16,384 CGs in total"
        spec = sunway_spec(4096)
        assert spec.n_cgs == 16384
        assert spec.n_cpes == 1_048_576  # 64 CPEs/CG x 16384 CGs

    def test_supernode_count_rounds_up(self):
        assert sunway_spec(256).n_supernodes == 1
        assert sunway_spec(257).n_supernodes == 2
        assert sunway_spec(4096).n_supernodes == 16

    def test_total_ldm_level2_setup(self):
        # Paper: 256 processors => "4 GB LDM" in total.
        spec = sunway_spec(256)
        assert spec.total_ldm_bytes == 4 * 2**30

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(n_nodes=0)

    def test_with_nodes_copies(self):
        a = sunway_spec(1)
        b = a.with_nodes(8)
        assert a.n_nodes == 1 and b.n_nodes == 8
        assert b.processor == a.processor

    def test_spec_is_hashable(self):
        assert hash(sunway_spec(2)) == hash(sunway_spec(2))


class TestToySpec:
    def test_structure_is_scaled_down(self):
        spec = toy_spec(n_nodes=2, cgs_per_node=2, mesh=2, ldm_bytes=1024)
        assert spec.n_cgs == 4
        assert spec.processor.cg.n_cpes == 4
        assert spec.ldm_bytes_per_cpe == 1024

    def test_toy_supernodes_are_small(self):
        spec = toy_spec(n_nodes=8)
        assert spec.network.nodes_per_supernode == 4
        assert spec.n_supernodes == 2


class TestPresets:
    def test_all_presets_materialize(self):
        for name in PRESETS:
            assert preset(name).n_nodes >= 1

    def test_level_presets_match_paper_setups(self):
        assert preset("sunway-1").n_nodes == 1
        assert preset("sunway-256").n_nodes == 256
        assert preset("sunway-4096").n_nodes == 4096

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError, match="unknown machine preset"):
            preset("cray-xt5")
