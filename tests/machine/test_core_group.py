"""Tests for the core-group (MPE + CPE mesh) model."""

import pytest

from repro.errors import ConfigurationError, LDMOverflowError
from repro.machine.core_group import CoreGroup
from repro.machine.specs import CGSpec, CPESpec


@pytest.fixture
def cg():
    spec = CGSpec(cpe=CPESpec(ldm_bytes=1024), mesh_rows=2, mesh_cols=2)
    return CoreGroup(index=3, spec=spec, node_index=1)


class TestStructure:
    def test_cpe_count_matches_mesh(self, cg):
        assert cg.n_cpes == 4
        assert len(cg.cpes) == 4

    def test_mesh_positions_are_row_major(self, cg):
        assert cg.mesh_position(0) == (0, 0)
        assert cg.mesh_position(1) == (0, 1)
        assert cg.mesh_position(2) == (1, 0)
        assert cg.mesh_position(3) == (1, 1)

    def test_sunway_cg_has_64_cpes(self):
        cg64 = CoreGroup(index=0, spec=CGSpec(), node_index=0)
        assert cg64.n_cpes == 64
        assert cg64.mesh_position(63) == (7, 7)

    def test_cpe_out_of_range(self, cg):
        with pytest.raises(ConfigurationError):
            cg.cpe(4)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreGroup(index=-1, spec=CGSpec(), node_index=0)

    def test_global_label(self, cg):
        assert cg.cpe(2).global_label == "cg3/cpe2"


class TestLDMManagement:
    def test_each_cpe_has_private_ldm(self, cg):
        cg.cpe(0).ldm.alloc("x", 512)
        assert cg.cpe(1).ldm.used_bytes == 0

    def test_alloc_on_all(self, cg):
        cg.alloc_on_all("sample", 256)
        assert all(c.ldm.used_bytes == 256 for c in cg.cpes)

    def test_alloc_on_all_rolls_back_on_overflow(self, cg):
        cg.cpe(2).ldm.alloc("hog", 1000)
        with pytest.raises(LDMOverflowError):
            cg.alloc_on_all("sample", 256)
        # CPEs 0 and 1 must have been rolled back.
        assert cg.cpe(0).ldm.used_bytes == 0
        assert cg.cpe(1).ldm.used_bytes == 0

    def test_free_on_all_ignores_missing(self, cg):
        cg.cpe(0).ldm.alloc("partial", 64)
        cg.free_on_all("partial")  # only CPE 0 had it
        assert cg.cpe(0).ldm.used_bytes == 0

    def test_reset_ldm(self, cg):
        cg.alloc_on_all("a", 100)
        cg.reset_ldm()
        assert cg.ldm_used_bytes == 0

    def test_ldm_used_bytes_aggregates(self, cg):
        cg.cpe(0).ldm.alloc("a", 100)
        cg.cpe(1).ldm.alloc("b", 50)
        assert cg.ldm_used_bytes == 150
