"""Integration tests: the three levels against the serial baseline across a
grid of machines and workload shapes, plus end-to-end pipelines.

This is the reproduction's load-bearing guarantee: the partitioned
algorithms are *the same algorithm* as serial Lloyd, on any feasible
configuration — including awkward ones (non-dividing n/k/d, single CG,
many supernodes, forced group sizes).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.init import init_centroids
from repro.core.kmeans import HierarchicalKMeans
from repro.core.level1 import run_level1
from repro.core.level2 import run_level2
from repro.core.level3 import run_level3
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs, uniform_cloud
from repro.errors import PartitionError
from repro.machine.machine import toy_machine

RUNNERS = {1: run_level1, 2: run_level2, 3: run_level3}

MACHINES = {
    "single-cg": dict(n_nodes=1, cgs_per_node=1, mesh=2, ldm_bytes=65536),
    "one-node": dict(n_nodes=1, cgs_per_node=4, mesh=2, ldm_bytes=16384),
    "multi-node": dict(n_nodes=3, cgs_per_node=2, mesh=2, ldm_bytes=16384),
    "multi-supernode": dict(n_nodes=8, cgs_per_node=2, mesh=4,
                            ldm_bytes=16384),
}

WORKLOADS = {
    "small": dict(n=97, k=3, d=5),
    "odd-shapes": dict(n=501, k=11, d=13),
    "many-clusters": dict(n=600, k=37, d=6),
    "high-dim": dict(n=200, k=5, d=120),
}


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@pytest.mark.parametrize("level", [1, 2, 3])
def test_grid_equivalence(machine_name, workload_name, level):
    machine = toy_machine(**MACHINES[machine_name])
    shape = WORKLOADS[workload_name]
    X, _ = gaussian_blobs(n=shape["n"], k=shape["k"], d=shape["d"], seed=31)
    C0 = init_centroids(X, shape["k"], method="first")
    ref = lloyd(X, C0, max_iter=25)
    try:
        result = RUNNERS[level](X, C0, machine, max_iter=25)
    except PartitionError:
        pytest.skip(f"level {level} infeasible on {machine_name} "
                    f"for {workload_name}")
    np.testing.assert_array_equal(result.assignments, ref.assignments)
    np.testing.assert_allclose(result.centroids, ref.centroids,
                               rtol=1e-9, atol=1e-10)
    assert result.n_iter == ref.n_iter


@given(
    n=st.integers(20, 300),
    k=st.integers(2, 12),
    d=st.integers(2, 24),
    nodes=st.integers(1, 3),
    seed=st.integers(0, 10),
)
@settings(max_examples=25, deadline=None)
def test_random_configurations_all_levels_agree(n, k, d, nodes, seed):
    """Hypothesis sweep: any feasible (machine, workload) combination keeps
    all three levels on the serial trajectory."""
    if k > n:
        k = n
    machine = toy_machine(n_nodes=nodes, cgs_per_node=2, mesh=2,
                          ldm_bytes=32 * 1024)
    X = uniform_cloud(n, d, seed=seed)
    C0 = init_centroids(X, k, method="first")
    ref = lloyd(X, C0, max_iter=15)
    for level, runner in RUNNERS.items():
        result = runner(X, C0, machine, max_iter=15)
        np.testing.assert_array_equal(result.assignments, ref.assignments,
                                      err_msg=f"level {level}")


class TestEndToEnd:
    def test_auto_escalation_pipeline(self):
        """One facade, three workloads, three different levels — the paper's
        flexibility claim as a single integration scenario."""
        machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                              ldm_bytes=8192)
        scenarios = [
            (dict(n=300, k=6, d=8), 1),
            (dict(n=300, k=150, d=8), 2),
            (dict(n=300, k=4, d=900), 3),
        ]
        for shape, expected_level in scenarios:
            X, _ = gaussian_blobs(**shape, seed=3)
            model = HierarchicalKMeans(shape["k"], machine=machine,
                                       init="first", max_iter=20)
            result = model.fit(X)
            assert model.selected_level_ == expected_level
            ref = lloyd(X, np.array(X[:shape["k"]], dtype=np.float64),
                        max_iter=20)
            np.testing.assert_array_equal(result.assignments,
                                          ref.assignments)

    def test_refit_is_deterministic(self):
        machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                              ldm_bytes=8192)
        X, _ = gaussian_blobs(n=200, k=5, d=6, seed=9)
        runs = [
            HierarchicalKMeans(5, machine=machine, seed=123,
                               max_iter=30).fit(X)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(runs[0].assignments,
                                      runs[1].assignments)
        np.testing.assert_array_equal(runs[0].centroids, runs[1].centroids)

    def test_modelled_time_reported_end_to_end(self):
        machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                              ldm_bytes=8192)
        X, _ = gaussian_blobs(n=200, k=5, d=6, seed=9)
        result = HierarchicalKMeans(5, machine=machine, seed=1,
                                    max_iter=30).fit(X)
        assert result.mean_iteration_seconds() > 0
        assert "s/iter" in result.summary()
