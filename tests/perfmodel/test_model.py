"""Tests for the analytic performance model.

The model's contract is the paper's *shapes*: monotone growth in n/k/d,
strong scaling in nodes, the Level-2 memory wall at d=4096 (float32), the
Level 2/3 crossovers, and the <18 s headline.
"""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.specs import sunway_spec
from repro.perfmodel.model import PerformanceModel, predict
from repro.perfmodel.params import ModelParams

N_ILSVRC = 1_265_723


@pytest.fixture(scope="module")
def m128():
    return PerformanceModel(sunway_spec(128))


@pytest.fixture(scope="module")
def m4096():
    return PerformanceModel(sunway_spec(4096))


class TestBasics:
    def test_predict_dispatches_levels(self, m128):
        for level in (1, 2, 3):
            pred = m128.predict(level, 10_000, 16, 32)
            assert pred.level == level
            assert pred.feasible
            assert pred.total > 0

    def test_invalid_level_rejected(self, m128):
        with pytest.raises(ConfigurationError):
            m128.predict(4, 100, 4, 4)

    def test_invalid_nkd_rejected(self, m128):
        with pytest.raises(ConfigurationError):
            m128.predict(1, 0, 4, 4)

    def test_total_sums_categories(self, m128):
        p = m128.predict(3, 100_000, 100, 512)
        assert p.total == pytest.approx(
            p.overhead + p.dma + p.compute + p.regcomm + p.network)

    def test_infeasible_total_is_inf(self, m128):
        p = m128.predict(2, 1000, 10, 100_000)
        assert not p.feasible
        assert math.isinf(p.total)
        assert p.reason

    def test_module_level_predict_helper(self):
        p = predict(sunway_spec(4), 1, 1000, 8, 16)
        assert p.feasible

    def test_phases_breakdown_present(self, m128):
        p = m128.predict(3, N_ILSVRC, 2000, 4096)
        assert p.phases
        assert sum(p.phases.values()) == pytest.approx(
            p.total - p.overhead, rel=1e-9)


class TestMonotonicity:
    def test_grows_with_n(self, m128):
        times = [m128.predict(1, n, 64, 64).total
                 for n in (10**5, 10**6, 10**7)]
        assert times[0] < times[1] < times[2]

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_grows_with_k(self, m128, level):
        times = [m128.predict(level, 10**6, k, 64).total
                 for k in (16, 64, 256)]
        assert times[0] < times[2]

    @pytest.mark.parametrize("level", [2, 3])
    def test_grows_with_d(self, m128, level):
        times = [m128.predict(level, 10**6, 100, d).total
                 for d in (64, 512, 2048)]
        assert times[0] < times[2]

    def test_strong_scaling_in_nodes(self):
        times = [
            PerformanceModel(sunway_spec(nodes)).predict(
                3, N_ILSVRC, 2000, 4096).total
            for nodes in (16, 64, 256)
        ]
        assert times[0] > times[1] > times[2]


class TestMemoryWalls:
    def test_level2_wall_at_4096_float32(self, m128):
        assert m128.predict(2, N_ILSVRC, 2000, 4096).feasible
        assert not m128.predict(2, N_ILSVRC, 2000, 4097).feasible

    def test_level2_wall_at_2048_float64(self):
        model = PerformanceModel(sunway_spec(128),
                                 ModelParams(dtype=np.dtype(np.float64)))
        assert model.predict(2, N_ILSVRC, 2000, 2048).feasible
        assert not model.predict(2, N_ILSVRC, 2000, 2049).feasible

    def test_level3_wall_is_64x_higher(self, m128):
        # d/64 per CPE: the wall moves to 262,144 (float32).
        assert m128.predict(3, N_ILSVRC, 2000, 196_608).feasible
        assert m128.predict(3, N_ILSVRC, 2000, 262_144).feasible
        assert not m128.predict(3, N_ILSVRC, 2000, 262_145).feasible

    def test_level1_wall_same_as_level2(self, m128):
        assert m128.predict(1, 10**6, 4, 4096).feasible
        assert not m128.predict(1, 10**6, 4, 4097).feasible

    def test_residency_degrades_with_kd(self, m128):
        small = m128.predict(2, N_ILSVRC, 100, 512)
        large = m128.predict(2, N_ILSVRC, 10_000, 4096)
        assert small.resident_fraction > large.resident_fraction


class TestPartitionChoices:
    def test_level2_mgroup_grows_with_k(self, m128):
        small = m128.predict(2, 10**6, 16, 64)
        large = m128.predict(2, 10**6, 50_000, 64)
        assert small.mgroup < large.mgroup
        assert large.mgroup == 64

    def test_level3_mprime_grows_with_kd(self, m128):
        small = m128.predict(3, 10**6, 100, 512)
        large = m128.predict(3, 10**6, 2000, 8192)
        assert small.mprime_group < large.mprime_group

    def test_level3_mprime_capped_by_machine(self, m128):
        pred = m128.predict(3, 10**6, 10**6, 8192)
        assert pred.mprime_group <= 512
        assert pred.n_groups >= 1


class TestPaperHeadlines:
    def test_headline_under_18_seconds(self, m4096):
        p = m4096.predict(3, N_ILSVRC, 2000, 196_608)
        assert p.feasible
        assert p.total < 18.0

    def test_crossover_figure7(self, m128):
        """L2 wins at d=512; L3 wins at d >= 3072 (paper crossover 2560)."""
        l2_small = m128.predict(2, N_ILSVRC, 2000, 512).total
        l3_small = m128.predict(3, N_ILSVRC, 2000, 512).total
        assert l2_small < l3_small
        l2_big = m128.predict(2, N_ILSVRC, 2000, 3072).total
        l3_big = m128.predict(3, N_ILSVRC, 2000, 3072).total
        assert l3_big < l2_big

    def test_figure8_level3_always_wins_at_4096(self, m128):
        for k in (256, 2048, 16384, 131072):
            l2 = m128.predict(2, N_ILSVRC, k, 4096).total
            l3 = m128.predict(3, N_ILSVRC, k, 4096).total
            assert l3 < l2, f"Level 3 must win at k={k}"

    def test_figure9_gap_narrows(self):
        def gap(nodes):
            m = PerformanceModel(sunway_spec(nodes))
            return (m.predict(2, N_ILSVRC, 2000, 4096).total
                    / m.predict(3, N_ILSVRC, 2000, 4096).total)
        assert gap(2) > gap(256) > 1.0


class TestCalibrationParams:
    def test_invalid_efficiency(self):
        with pytest.raises(ConfigurationError):
            ModelParams(compute_efficiency=0.0)

    def test_invalid_stage_fraction(self):
        with pytest.raises(ConfigurationError):
            ModelParams(stage_fraction=1.0)

    def test_itemsize(self):
        assert ModelParams().itemsize == 4
        assert ModelParams(dtype=np.dtype(np.float64)).itemsize == 8
