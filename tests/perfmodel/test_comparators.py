"""Tests for the Table III comparator fixtures."""

import pytest

from repro.perfmodel.comparators import TABLE_III, compare_all


class TestFixtures:
    def test_five_rows_as_in_paper(self):
        assert len(TABLE_III) == 5

    def test_row_values_match_paper(self):
        rossbach = TABLE_III[0]
        assert rossbach.n == 10**9
        assert rossbach.k == 120 and rossbach.d == 40
        assert rossbach.their_seconds == pytest.approx(49.4)
        assert rossbach.sunway_nodes == 128
        assert rossbach.paper_speedup == 105.0

    def test_node_counts_match_paper(self):
        nodes = [r.sunway_nodes for r in TABLE_III]
        assert nodes == [128, 4, 1, 1, 16]


class TestComparison:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_all()

    def test_one_result_per_row(self, results):
        assert len(results) == len(TABLE_III)

    def test_sunway_wins_every_row(self, results):
        assert all(r.sunway_wins for r in results)

    def test_speedups_positive_and_finite(self, results):
        for r in results:
            assert 1.0 < r.our_speedup < 10_000

    def test_best_level_chosen(self, results):
        for r in results:
            assert r.our_level in (1, 2, 3)

    def test_fpga_row_is_tightest(self, results):
        fpga = next(r for r in results if "ZC706" in r.row.hardware)
        assert fpga.our_speedup == min(r.our_speedup for r in results)
