"""Tests for fitting model parameters to execute-backend measurements."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.machine import toy_machine
from repro.perfmodel.calibration import DEFAULT_WORKLOADS, calibrate
from repro.perfmodel.params import ModelParams


@pytest.fixture(scope="module")
def machine():
    return toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                       ldm_bytes=64 * 1024)


@pytest.fixture(scope="module")
def result(machine):
    return calibrate(machine, max_iter=2)


class TestCalibration:
    def test_never_worse_than_start(self, result):
        assert result.improved
        assert np.isfinite(result.error_after)

    def test_fitted_params_in_valid_ranges(self, result):
        assert 0.0 < result.params.compute_efficiency <= 1.0
        assert result.params.mpi_message_overhead > 0.0

    def test_fitted_model_within_one_order_of_magnitude(self, result):
        assert result.error_after < 1.0  # RMS log10 error < 10x
        for ratio in result.ratios.values():
            assert 0.02 < ratio < 50.0

    def test_ratio_keys_cover_grid(self, result):
        assert len(result.ratios) == 3 * len(DEFAULT_WORKLOADS)

    def test_badly_wrong_start_is_corrected(self, machine):
        bad = ModelParams(dtype=np.dtype(np.float64),
                          iteration_overhead=0.0,
                          compute_efficiency=0.01,
                          mpi_message_overhead=1e-3)
        fitted = calibrate(machine, base_params=bad, max_iter=2)
        assert fitted.error_after < fitted.error_before
        assert fitted.params.compute_efficiency > 0.01

    def test_dtype_and_overhead_preserved(self, machine, result):
        assert result.params.dtype == np.dtype(np.float64)
        assert result.params.iteration_overhead == 0.0

    def test_validation(self, machine):
        with pytest.raises(ConfigurationError):
            calibrate(machine, workloads=[])
        with pytest.raises(ConfigurationError):
            calibrate(machine, levels=[0])
