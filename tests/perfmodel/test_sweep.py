"""Tests for the parameter-sweep driver."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel.sweep import Series, best_level_series, sweep


class TestSweep:
    def test_k_axis(self):
        out = sweep("k", [16, 64], levels=[1, 2], n=10**5, k=0, d=32,
                    nodes=4)
        assert set(out) == {1, 2}
        assert out[1].x == [16.0, 64.0]
        assert len(out[1].predictions) == 2
        assert out[1].predictions[0].k == 16

    def test_d_axis(self):
        out = sweep("d", [32, 64], levels=[3], n=10**5, k=16, d=0, nodes=4)
        assert out[3].predictions[1].d == 64

    def test_nodes_axis_changes_machine(self):
        out = sweep("nodes", [2, 32], levels=[1], n=10**6, k=64, d=32,
                    nodes=0)
        assert out[1].y[1] < out[1].y[0]

    def test_infeasible_points_are_inf(self):
        out = sweep("d", [1024, 100_000], levels=[2], n=10**5, k=16, d=0,
                    nodes=4)
        assert math.isfinite(out[2].y[0])
        assert math.isinf(out[2].y[1])
        assert len(out[2].finite()) == 1

    def test_bad_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep("q", [1], levels=[1], n=10, k=1, d=1, nodes=1)

    def test_bad_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep("k", [1], levels=[0], n=10, k=1, d=1, nodes=1)
        with pytest.raises(ConfigurationError):
            sweep("k", [1], levels=[], n=10, k=1, d=1, nodes=1)

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep("k", [], levels=[1], n=10, k=1, d=1, nodes=1)


class TestSeries:
    def test_crossover_detection(self):
        a = Series("a", x=[1, 2, 3], y=[5.0, 3.0, 1.0])
        b = Series("b", x=[1, 2, 3], y=[2.0, 2.0, 2.0])
        assert a.crossover_with(b) == 3
        assert b.crossover_with(a) == 1

    def test_crossover_none_when_never_cheaper(self):
        a = Series("a", x=[1, 2], y=[5.0, 5.0])
        b = Series("b", x=[1, 2], y=[1.0, 1.0])
        assert a.crossover_with(b) is None

    def test_crossover_skips_infeasible(self):
        a = Series("a", x=[1, 2], y=[math.inf, 1.0])
        b = Series("b", x=[1, 2], y=[2.0, 2.0])
        assert a.crossover_with(b) == 2


class TestBestLevel:
    def test_pointwise_minimum(self):
        out = sweep("d", [256, 8192], levels=[2, 3], n=1_265_723, k=2000,
                    d=0, nodes=128)
        best = best_level_series(out)
        for i in range(2):
            assert best.y[i] == min(out[2].y[i], out[3].y[i])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            best_level_series({})
