"""Tests for result/experiment serialization."""

import json
import os

import numpy as np
import pytest

from repro.core.init import init_centroids
from repro.core.level2 import run_level2
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.errors import ConfigurationError
from repro.io import export_series_csv, load_result, save_experiment, save_result
from repro.machine.machine import toy_machine
from repro.perfmodel.sweep import Series


@pytest.fixture(scope="module")
def result():
    machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                          ldm_bytes=16 * 1024)
    X, _ = gaussian_blobs(n=300, k=6, d=8, seed=3)
    C0 = init_centroids(X, 6, method="first")
    return run_level2(X, C0, machine, max_iter=20)


class TestResultRoundTrip:
    def test_arrays_survive(self, result, tmp_path):
        path = str(tmp_path / "r.npz")
        save_result(result, path)
        loaded = load_result(path)
        np.testing.assert_array_equal(loaded.centroids, result.centroids)
        np.testing.assert_array_equal(loaded.assignments,
                                      result.assignments)

    def test_scalars_survive(self, result, tmp_path):
        path = str(tmp_path / "r.npz")
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.inertia == result.inertia
        assert loaded.n_iter == result.n_iter
        assert loaded.converged == result.converged
        assert loaded.level == result.level

    def test_history_survives(self, result, tmp_path):
        path = str(tmp_path / "r.npz")
        save_result(result, path)
        loaded = load_result(path)
        assert len(loaded.history) == len(result.history)
        assert loaded.history[0].inertia == result.history[0].inertia

    def test_ledger_survives(self, result, tmp_path):
        path = str(tmp_path / "r.npz")
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.ledger is not None
        assert loaded.ledger.total() == pytest.approx(result.ledger.total())
        assert loaded.mean_iteration_seconds() == pytest.approx(
            result.mean_iteration_seconds())

    def test_serial_result_without_ledger(self, tmp_path):
        X, _ = gaussian_blobs(n=100, k=3, d=4, seed=1)
        serial = lloyd(X, init_centroids(X, 3, method="first"), max_iter=10)
        path = str(tmp_path / "serial.npz")
        save_result(serial, path)
        loaded = load_result(path)
        assert loaded.ledger is None

    def test_npz_suffix_optional_on_load(self, result, tmp_path):
        path = str(tmp_path / "r")
        save_result(result, path)  # numpy appends .npz
        loaded = load_result(path)
        assert loaded.n_iter == result.n_iter

    def test_garbage_file_rejected(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, unrelated=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_result(path)

    def test_fault_events_survive(self, tmp_path):
        from repro.core.level3 import Level3Executor
        from repro.runtime.faults import FaultPlan, FaultSpec
        machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                              ldm_bytes=16 * 1024)
        X, _ = gaussian_blobs(n=300, k=4, d=6, seed=3)
        C0 = init_centroids(X, 4, method="first")
        plan = FaultPlan([FaultSpec("cg_failure", iteration=2, cg_index=1)])
        executor = Level3Executor(machine, faults=plan, recovery="replan",
                                  checkpoint_every=1)
        faulty = executor.run(X, C0, max_iter=40)
        assert faulty.fault_events

        path = str(tmp_path / "faulty.npz")
        save_result(faulty, path)
        loaded = load_result(path)
        assert loaded.fault_events == faulty.fault_events

    def test_results_without_fault_events_load_empty(self, result, tmp_path):
        path = str(tmp_path / "r.npz")
        save_result(result, path)
        assert load_result(path).fault_events == []


class TestExperimentExport:
    def test_series_csv_file(self, tmp_path):
        s = {"L2": Series("L2", x=[1, 2], y=[0.5, 1.0])}
        path = str(tmp_path / "fig.csv")
        export_series_csv(s, "d", path)
        lines = open(path).read().strip().splitlines()
        assert lines[0] == "d,L2"
        assert len(lines) == 3

    def test_save_experiment_writes_artifacts(self, tmp_path):
        from repro.experiments import run_experiment
        out = run_experiment("table2")
        save_experiment(out, str(tmp_path))
        assert (tmp_path / "table2.txt").exists()
        checks = json.loads((tmp_path / "table2.checks.json").read_text())
        assert all(checks["checks"].values())

    def test_save_experiment_with_series_writes_csv(self, tmp_path):
        from repro.experiments import run_experiment
        out = run_experiment("figure9")
        save_experiment(out, str(tmp_path))
        assert (tmp_path / "figure9.csv").exists()

    def test_multi_panel_figures_split_csvs(self, tmp_path):
        """Figure 6's two panels have different x axes: one CSV each."""
        from repro.experiments import run_experiment
        out = run_experiment("figure6")
        save_experiment(out, str(tmp_path))
        assert (tmp_path / "figure6.panel1.csv").exists()
        assert (tmp_path / "figure6.panel2.csv").exists()
        assert not (tmp_path / "figure6.csv").exists()

    def test_series_csv_rejects_mismatched_axes(self):
        from repro.errors import ConfigurationError
        from repro.reporting.figures import series_csv
        a = Series("a", x=[1.0], y=[1.0])
        b = Series("b", x=[2.0, 3.0], y=[1.0, 2.0])
        with pytest.raises(ConfigurationError):
            series_csv({"a": a, "b": b}, "x")
