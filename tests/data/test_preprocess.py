"""Tests for the preprocessing transformers (scalers, PCA, simplex blobs)."""

import numpy as np
import pytest

from repro.data.preprocess import (
    MinMaxScaler,
    PCA,
    StandardScaler,
    simplex_blobs,
)
from repro.errors import ConfigurationError, DataShapeError


@pytest.fixture
def X():
    rng = np.random.default_rng(3)
    return rng.normal(loc=5.0, scale=[1.0, 3.0, 0.5, 2.0], size=(300, 4))


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, X):
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, rtol=1e-12)

    def test_constant_feature_handled(self):
        X = np.ones((10, 2))
        X[:, 1] = np.arange(10)
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_inverse_round_trip(self, X):
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, rtol=1e-12)

    def test_transform_before_fit_rejected(self, X):
        with pytest.raises(ConfigurationError):
            StandardScaler().transform(X)

    def test_dimension_mismatch_rejected(self, X):
        scaler = StandardScaler().fit(X)
        with pytest.raises(DataShapeError):
            scaler.transform(X[:, :2])


class TestMinMaxScaler:
    def test_unit_box(self, X):
        Z = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(Z.min(axis=0), 0.0, atol=1e-15)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, rtol=1e-12)

    def test_constant_feature_maps_to_zero(self):
        X = np.full((5, 1), 7.0)
        Z = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(Z, 0.0)

    def test_transform_before_fit_rejected(self, X):
        with pytest.raises(ConfigurationError):
            MinMaxScaler().transform(X)


class TestPCA:
    def test_recovers_dominant_direction(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=500)
        direction = np.array([3.0, 4.0]) / 5.0
        X = np.outer(t, direction) + 0.01 * rng.normal(size=(500, 2))
        pca = PCA(n_components=1).fit(X)
        found = pca.components_[0]
        assert abs(abs(found @ direction)) > 0.99

    def test_projection_shape(self, X):
        Z = PCA(n_components=2).fit_transform(X)
        assert Z.shape == (300, 2)

    def test_components_orthonormal(self, X):
        pca = PCA(n_components=3).fit(X)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-10)

    def test_explained_variance_sorted(self, X):
        pca = PCA(n_components=4).fit(X)
        ev = pca.explained_variance_
        assert all(a >= b for a, b in zip(ev, ev[1:]))
        ratios = pca.explained_variance_ratio()
        assert ratios.sum() == pytest.approx(1.0)

    def test_whiten_unit_variance(self, X):
        Z = PCA(n_components=2, whiten=True).fit_transform(X)
        np.testing.assert_allclose(Z.std(axis=0, ddof=1), 1.0, rtol=1e-6)

    def test_invalid_components_rejected(self, X):
        with pytest.raises(ConfigurationError):
            PCA(n_components=0).fit(X)
        with pytest.raises(ConfigurationError):
            PCA(n_components=5).fit(X)

    def test_transform_before_fit_rejected(self, X):
        with pytest.raises(ConfigurationError):
            PCA(n_components=1).transform(X)

    def test_full_rank_projection_preserves_distances(self, X):
        """PCA to full rank is a rotation: pairwise distances survive."""
        Z = PCA(n_components=4).fit_transform(X)
        d_orig = ((X[:20, None] - X[None, :20]) ** 2).sum(-1)
        d_proj = ((Z[:20, None] - Z[None, :20]) ** 2).sum(-1)
        np.testing.assert_allclose(d_proj, d_orig, rtol=1e-8)


class TestSimplexBlobs:
    def test_shapes_and_labels(self):
        X, labels = simplex_blobs(n=200, k=10, d=32, seed=1)
        assert X.shape == (200, 32)
        assert set(labels) == set(range(10))

    def test_centres_are_one_hot(self):
        X, labels = simplex_blobs(n=500, k=5, d=8, noise=0.01, seed=2)
        for j in range(5):
            centre = X[labels == j].mean(axis=0)
            assert int(np.argmax(centre)) == j
            assert centre[j] == pytest.approx(1.0, abs=0.05)

    def test_structure_is_intrinsically_k_dimensional(self):
        """The top k-1 principal components carry almost all centre
        variance; far fewer cannot."""
        X, _ = simplex_blobs(n=1000, k=16, d=64, noise=0.02, seed=3)
        pca = PCA(n_components=32).fit(X)
        ratios = pca.explained_variance_ratio()
        assert ratios[:15].sum() > 0.8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simplex_blobs(10, 5, 3)  # k > d
        with pytest.raises(ConfigurationError):
            simplex_blobs(3, 5, 8)  # k > n
        with pytest.raises(ConfigurationError):
            simplex_blobs(10, 2, 4, noise=-1.0)

    def test_deterministic(self):
        a, la = simplex_blobs(50, 4, 8, seed=9)
        b, lb = simplex_blobs(50, 4, 8, seed=9)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(la, lb)
