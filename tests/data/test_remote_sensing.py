"""Tests for the synthetic remote-sensing substrate (Figure 10 data)."""

import numpy as np
import pytest

from repro.data.remote_sensing import (
    CLASS_NAMES,
    classification_accuracy,
    extract_patches,
    majority_class_map,
    synth_land_cover,
)
from repro.errors import ConfigurationError, DataShapeError


@pytest.fixture(scope="module")
def image():
    return synth_land_cover(64, 64, n_classes=5, seed=3)


class TestSynthLandCover:
    def test_shapes(self, image):
        assert image.pixels.shape == (64, 64, 3)
        assert image.labels.shape == (64, 64)

    def test_pixels_in_unit_range(self, image):
        assert image.pixels.min() >= 0.0
        assert image.pixels.max() <= 1.0

    def test_labels_in_class_range(self, image):
        assert image.labels.min() >= 0
        assert image.labels.max() < 5

    def test_regions_are_contiguous(self, image):
        """Smooth fields -> neighbours usually share a class."""
        same_right = (image.labels[:, :-1] == image.labels[:, 1:]).mean()
        assert same_right > 0.9

    def test_deterministic(self):
        a = synth_land_cover(32, 32, seed=1)
        b = synth_land_cover(32, 32, seed=1)
        np.testing.assert_array_equal(a.pixels, b.pixels)

    def test_seven_classes_supported(self):
        img = synth_land_cover(64, 64, n_classes=7, seed=0)
        assert img.labels.max() < 7
        assert len(CLASS_NAMES) == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synth_land_cover(4, 64)
        with pytest.raises(ConfigurationError):
            synth_land_cover(64, 64, n_classes=1)


class TestExtractPatches:
    def test_shapes(self, image):
        X, labels = extract_patches(image, patch=4)
        assert X.shape == (16 * 16, 4 * 4 * 3)
        assert labels.shape == (256,)

    def test_patch_one_is_pixels(self, image):
        X, labels = extract_patches(image, patch=1)
        np.testing.assert_allclose(X.reshape(64, 64, 3), image.pixels)
        np.testing.assert_array_equal(labels.reshape(64, 64), image.labels)

    def test_feature_order_round_trips(self, image):
        X, _ = extract_patches(image, patch=4)
        # First patch must be the top-left 4x4 block, flattened.
        np.testing.assert_allclose(
            X[0], image.pixels[:4, :4, :].reshape(-1))

    def test_majority_labels(self, image):
        _, labels = extract_patches(image, patch=8)
        assert labels.min() >= 0 and labels.max() < image.n_classes

    def test_indivisible_rejected(self, image):
        with pytest.raises(DataShapeError):
            extract_patches(image, patch=7)


class TestScoring:
    def test_perfect_clustering_scores_one(self):
        truth = np.array([0, 0, 1, 1, 2, 2])
        assignments = np.array([5, 5, 3, 3, 0, 0])
        assert classification_accuracy(assignments, truth, k=6) == 1.0

    def test_majority_map(self):
        truth = np.array([0, 0, 1])
        assignments = np.array([0, 0, 0])
        mapping = majority_class_map(assignments, truth, k=2)
        assert mapping[0] == 0
        assert mapping[1] == 0  # empty cluster defaults to class 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataShapeError):
            classification_accuracy(np.zeros(3, int), np.zeros(4, int), k=1)

    def test_random_assignment_scores_low(self):
        rng = np.random.default_rng(0)
        truth = rng.integers(0, 4, size=1000)
        assignments = rng.integers(0, 4, size=1000)
        acc = classification_accuracy(assignments, truth, k=4)
        assert acc < 0.5
