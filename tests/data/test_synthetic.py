"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    anisotropic_blobs,
    feature_vectors,
    gaussian_blobs,
    uniform_cloud,
)
from repro.errors import ConfigurationError


class TestGaussianBlobs:
    def test_shapes(self):
        X, labels = gaussian_blobs(n=100, k=5, d=7, seed=0)
        assert X.shape == (100, 7)
        assert labels.shape == (100,)
        assert set(labels) == set(range(5))

    def test_deterministic(self):
        a, la = gaussian_blobs(50, 3, 4, seed=9)
        b, lb = gaussian_blobs(50, 3, 4, seed=9)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(la, lb)

    def test_different_seeds_differ(self):
        a, _ = gaussian_blobs(50, 3, 4, seed=1)
        b, _ = gaussian_blobs(50, 3, 4, seed=2)
        assert not np.array_equal(a, b)

    def test_balanced_up_to_rounding(self):
        _, labels = gaussian_blobs(100, 3, 2, seed=0)
        counts = np.bincount(labels)
        assert counts.max() - counts.min() <= 1

    def test_blobs_are_separated_at_low_spread(self):
        X, labels = gaussian_blobs(300, 3, 8, spread=0.01, seed=4)
        centres = np.stack([X[labels == j].mean(0) for j in range(3)])
        within = max(np.linalg.norm(X[labels == j] - centres[j], axis=1).max()
                     for j in range(3))
        between = min(np.linalg.norm(centres[i] - centres[j])
                      for i in range(3) for j in range(i + 1, 3))
        assert between > 2 * within

    def test_dtype_option(self):
        X, _ = gaussian_blobs(10, 2, 3, dtype=np.float32)
        assert X.dtype == np.float32

    def test_k_greater_than_n_rejected(self):
        with pytest.raises(ConfigurationError):
            gaussian_blobs(3, 5, 2)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            gaussian_blobs(0, 1, 1)


class TestUniformCloud:
    def test_bounds(self):
        X = uniform_cloud(100, 4, low=2.0, high=3.0, seed=1)
        assert (X >= 2.0).all() and (X <= 3.0).all()

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_cloud(0, 4)


class TestAnisotropicBlobs:
    def test_shapes_and_labels(self):
        X, labels = anisotropic_blobs(120, 4, 6, seed=2)
        assert X.shape == (120, 6)
        assert set(labels) <= set(range(4))

    def test_condition_one_is_isotropic_like(self):
        X1, _ = anisotropic_blobs(100, 2, 4, condition=1.0, seed=3)
        assert np.isfinite(X1).all()

    def test_bad_condition_rejected(self):
        with pytest.raises(ConfigurationError):
            anisotropic_blobs(10, 2, 2, condition=0.5)


class TestFeatureVectors:
    def test_shape(self):
        X = feature_vectors(50, 128, seed=0)
        assert X.shape == (50, 128)

    def test_low_intrinsic_dimensionality(self):
        X = feature_vectors(200, 256, n_latent=4, seed=0)
        # Singular values should collapse after the latent dimension.
        s = np.linalg.svd(X - X.mean(0), compute_uv=False)
        assert s[3] > 20 * s[8]

    def test_latent_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            feature_vectors(10, 4, n_latent=5)

    def test_deterministic(self):
        np.testing.assert_array_equal(feature_vectors(20, 16, seed=3),
                                      feature_vectors(20, 16, seed=3))
