"""Tests for the Table II dataset registry."""

import pytest

from repro.data.datasets import TABLE_II, dataset
from repro.errors import ConfigurationError


class TestRegistry:
    def test_four_datasets(self):
        assert set(TABLE_II) == {"kegg", "road", "census", "ilsvrc2012"}

    def test_paper_shapes(self):
        assert TABLE_II["kegg"].shape() == (65_554, 28)
        assert TABLE_II["road"].shape() == (434_874, 4)
        assert TABLE_II["census"].shape() == (2_458_285, 68)
        assert TABLE_II["ilsvrc2012"].shape() == (1_265_723, 196_608)

    def test_paper_k_values(self):
        assert TABLE_II["kegg"].paper_k == 256
        assert TABLE_II["ilsvrc2012"].paper_k == 160_000

    def test_lookup_by_key(self):
        assert dataset("road").name == "Road Network"

    def test_unknown_key(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            dataset("mnist")


class TestLoading:
    def test_scaled_load_respects_caps(self):
        X = dataset("census").load(scale=0.001, max_n=100, max_d=10)
        assert X.shape[0] <= 100
        assert X.shape[1] <= 10

    def test_scale_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            dataset("kegg").load(scale=0.0)
        with pytest.raises(ConfigurationError):
            dataset("kegg").load(scale=1.5)

    def test_never_exceeds_published_shape(self):
        X = dataset("road").load(scale=1.0, max_n=500)
        assert X.shape[1] == 4

    def test_minimum_floor(self):
        X = dataset("kegg").load(scale=1e-9)
        assert X.shape[0] >= 8

    def test_deterministic_per_seed(self):
        import numpy as np
        a = dataset("kegg").load(scale=0.001, seed=1, max_n=64)
        b = dataset("kegg").load(scale=0.001, seed=1, max_n=64)
        np.testing.assert_array_equal(a, b)

    def test_ilsvrc_stand_in_is_feature_like(self):
        X = dataset("ilsvrc2012").load(max_n=32, max_d=64)
        assert X.shape == (32, 64)
