"""Property-based tests (hypothesis) on core data structures and invariants.

These pin down the algebraic contracts the whole system leans on:

* slicing helpers tile their domain exactly,
* the LDM allocator never over-commits and free/alloc round-trips,
* assignment is a true argmin and is invariant under the partition used,
* accumulate/update preserve mass (sum of cluster sums = sum of samples),
* one Lloyd iteration never increases the objective,
* every partitioned level reproduces the serial trajectory.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core._common import (
    accumulate,
    assign_chunked,
    even_slices,
    inertia,
    squared_distances,
    update_centroids,
)
from repro.core.init import init_centroids
from repro.core.lloyd import lloyd, lloyd_single_iteration
from repro.core.constraints import (
    level1_feasibility,
    level2_feasibility,
    level3_feasibility,
)
from repro.machine.ldm import LDMAllocator
from repro.machine.specs import sunway_spec
from repro.errors import LDMOverflowError

# Bounded, finite float matrices: the kernels must behave for any data.
finite_floats = st.floats(min_value=-100.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False, width=64)


def matrix(max_n=40, max_d=8):
    return st.integers(2, max_n).flatmap(
        lambda n: st.integers(1, max_d).flatmap(
            lambda d: st.lists(
                st.lists(finite_floats, min_size=d, max_size=d),
                min_size=n, max_size=n,
            ).map(np.array)
        )
    )


class TestEvenSlicesProperties:
    @given(total=st.integers(0, 10_000), parts=st.integers(1, 200))
    def test_tiles_domain_exactly(self, total, parts):
        slices = even_slices(total, parts)
        assert len(slices) == parts
        assert slices[0][0] == 0
        assert slices[-1][1] == total
        covered = 0
        for lo, hi in slices:
            assert lo <= hi
            assert lo == covered
            covered = hi
        assert covered == total

    @given(total=st.integers(1, 10_000), parts=st.integers(1, 200))
    def test_balance_within_one(self, total, parts):
        sizes = [hi - lo for lo, hi in even_slices(total, parts)]
        assert max(sizes) - min(sizes) <= 1


class TestLDMProperties:
    @given(st.lists(st.integers(1, 500), min_size=1, max_size=30))
    def test_never_overcommits(self, sizes):
        ldm = LDMAllocator(1024)
        allocated = 0
        for i, size in enumerate(sizes):
            try:
                ldm.alloc(f"b{i}", size)
                allocated += size
            except LDMOverflowError:
                pass
        assert allocated == ldm.used_bytes <= 1024

    @given(st.lists(st.integers(1, 200), min_size=1, max_size=10))
    def test_lifo_free_restores_capacity(self, sizes):
        assume(sum(sizes) <= 1024)
        ldm = LDMAllocator(1024)
        for i, size in enumerate(sizes):
            ldm.alloc(f"b{i}", size)
        for i in reversed(range(len(sizes))):
            ldm.free(f"b{i}")
        assert ldm.free_bytes == 1024
        ldm.alloc("full", 1024)


class TestAssignmentProperties:
    @given(matrix())
    @settings(max_examples=40, deadline=None)
    def test_assignment_is_argmin(self, X):
        k = min(3, X.shape[0])
        C = np.array(X[:k], dtype=np.float64)
        a = assign_chunked(X, C)
        d2 = squared_distances(X.astype(np.float64), C)
        chosen = d2[np.arange(len(X)), a]
        assert (chosen <= d2.min(axis=1) + 1e-9).all()

    @given(matrix(), st.integers(1, 7))
    @settings(max_examples=40, deadline=None)
    def test_chunk_size_invariance(self, X, chunk):
        k = min(4, X.shape[0])
        C = np.array(X[:k], dtype=np.float64)
        a = assign_chunked(X, C)
        b = assign_chunked(X, C, chunk_elements=chunk * k)
        np.testing.assert_array_equal(a, b)

    @given(matrix())
    @settings(max_examples=40, deadline=None)
    def test_slice_partition_invariance(self, X):
        """Computing argmin per centroid slice and reducing (what Level 2/3
        do) equals the global argmin, for any slicing."""
        k = min(5, X.shape[0])
        C = np.array(X[:k], dtype=np.float64)
        full = assign_chunked(X, C)
        d2 = squared_distances(X.astype(np.float64), C)
        for parts in range(1, k + 1):
            best_val = np.full(len(X), np.inf)
            best_idx = np.zeros(len(X), dtype=np.int64)
            for lo, hi in even_slices(k, parts):
                if lo == hi:
                    continue
                local = np.argmin(d2[:, lo:hi], axis=1)
                vals = d2[np.arange(len(X)), lo + local]
                better = vals < best_val
                best_val[better] = vals[better]
                best_idx[better] = lo + local[better]
            np.testing.assert_array_equal(best_idx, full)

    @given(matrix(max_d=6))
    @settings(max_examples=40, deadline=None)
    def test_dim_partition_sums_to_full_distance(self, X):
        """Partial distances over dimension slices sum to the full distance
        (the Level-3 register-communication reduce)."""
        k = min(3, X.shape[0])
        X = X.astype(np.float64)
        C = np.array(X[:k])
        d = X.shape[1]
        full = squared_distances(X, C)
        for parts in range(1, d + 1):
            partial = np.zeros_like(full)
            for lo, hi in even_slices(d, parts):
                if lo < hi:
                    partial += squared_distances(X[:, lo:hi], C[:, lo:hi])
            np.testing.assert_allclose(partial, full, rtol=1e-9, atol=1e-9)


class TestAccumulateProperties:
    @given(matrix())
    @settings(max_examples=40, deadline=None)
    def test_mass_conservation(self, X):
        k = min(4, X.shape[0])
        X = X.astype(np.float64)
        a = assign_chunked(X, np.array(X[:k]))
        sums, counts = accumulate(X, a, k)
        assert counts.sum() == X.shape[0]
        np.testing.assert_allclose(sums.sum(axis=0), X.sum(axis=0),
                                   rtol=1e-9, atol=1e-6)

    @given(matrix())
    @settings(max_examples=40, deadline=None)
    def test_block_partition_invariance(self, X):
        """Accumulating per block and summing (what every level does)
        equals accumulating globally."""
        k = min(4, X.shape[0])
        X = X.astype(np.float64)
        a = assign_chunked(X, np.array(X[:k]))
        ref_sums, ref_counts = accumulate(X, a, k)
        for parts in (2, 3):
            sums = np.zeros_like(ref_sums)
            counts = np.zeros_like(ref_counts)
            for lo, hi in even_slices(X.shape[0], parts):
                if lo < hi:
                    s, c = accumulate(X[lo:hi], a[lo:hi], k)
                    sums += s
                    counts += c
            np.testing.assert_allclose(sums, ref_sums, rtol=1e-9, atol=1e-6)
            np.testing.assert_array_equal(counts, ref_counts)


class TestLloydProperties:
    @given(matrix(max_n=30, max_d=5), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_one_step_never_increases_objective(self, X, k):
        assume(X.shape[0] >= k)
        X = X.astype(np.float64)
        C = init_centroids(X, k, method="first")
        a0 = assign_chunked(X, C)
        before = inertia(X, C, a0)
        _, C1 = lloyd_single_iteration(X, C)
        a1 = assign_chunked(X, C1)
        after = inertia(X, C1, a1)
        assert after <= before + 1e-9

    @given(matrix(max_n=25, max_d=4))
    @settings(max_examples=20, deadline=None)
    def test_terminates_and_is_fixed_point(self, X):
        k = min(3, X.shape[0])
        X = X.astype(np.float64)
        result = lloyd(X, init_centroids(X, k, method="first"),
                       max_iter=200)
        if result.converged:
            _, C_again = lloyd_single_iteration(X, result.centroids)
            np.testing.assert_allclose(C_again, result.centroids,
                                       rtol=1e-9, atol=1e-12)

    @given(matrix(max_n=20, max_d=4))
    @settings(max_examples=20, deadline=None)
    def test_empty_cluster_rule_keeps_centroids_finite(self, X):
        k = min(3, X.shape[0])
        X = X.astype(np.float64)
        # Force an empty cluster with a far-away centroid.
        C = np.vstack([X[:k - 1], np.full((1, X.shape[1]), 1e9)]) \
            if k > 1 else np.array(X[:1])
        result = lloyd(X, C, max_iter=5)
        assert np.isfinite(result.centroids).all()


class TestConstraintProperties:
    @given(k=st.integers(1, 10_000), d=st.integers(1, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_level_dominance_chain(self, k, d):
        """If level l fits, every higher level fits too (at max groups)."""
        spec = sunway_spec(64)
        l1 = level1_feasibility(k, d, spec).feasible
        l2 = level2_feasibility(k, d, 64, spec).feasible
        l3 = level3_feasibility(k, d, spec.n_cgs, spec).feasible
        if l1:
            assert l2
        if l2:
            assert l3

    @given(k=st.integers(1, 5000), d=st.integers(1, 5000),
           mg1=st.integers(1, 64), mg2=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_level2_monotone_in_mgroup(self, k, d, mg1, mg2):
        spec = sunway_spec(4)
        lo, hi = min(mg1, mg2), max(mg1, mg2)
        if level2_feasibility(k, d, lo, spec).feasible:
            assert level2_feasibility(k, d, hi, spec).feasible


class TestUpdateProperties:
    @given(matrix(max_n=20, max_d=4))
    @settings(max_examples=30, deadline=None)
    def test_new_centroids_inside_data_hull_bounds(self, X):
        """Means of subsets stay inside the per-axis bounding box."""
        k = min(3, X.shape[0])
        X = X.astype(np.float64)
        a = assign_chunked(X, np.array(X[:k]))
        sums, counts = accumulate(X, a, k)
        new = update_centroids(sums, counts, np.array(X[:k]))
        nonempty = counts > 0
        assert (new[nonempty] >= X.min(axis=0) - 1e-9).all()
        assert (new[nonempty] <= X.max(axis=0) + 1e-9).all()
