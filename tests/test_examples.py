"""Smoke tests: every example script runs to completion.

Examples are the living documentation; a broken one is a broken deliverable.
Each runs in a subprocess with the repo's interpreter and a generous
timeout; we assert exit code 0 and a recognisable line of output.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

#: script -> (extra argv factory, expected stdout marker)
CASES = {
    "quickstart.py": "selected partition level",
    "land_cover_classification.py": "patch accuracy",
    "scaling_study.py": "headline",
    "capability_planner.py": "Capability check",
    "baseline_comparison.py": "clustering quality",
    "reproduce_paper.py": "every qualitative claim",
    "model_selection.py": "bootstrap stability",
}


@pytest.mark.parametrize("script,marker", sorted(CASES.items()))
def test_example_runs(script, marker, tmp_path):
    path = os.path.join(EXAMPLES_DIR, script)
    argv = [sys.executable, path]
    if script == "reproduce_paper.py":
        argv += ["--out", str(tmp_path / "outputs")]
    # The scripts import repro; make the repo's src importable by absolute
    # path so a cwd-relative PYTHONPATH (e.g. "src") from the invoking
    # test run doesn't silently vanish inside the subprocess's tmp cwd.
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src"))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        argv, capture_output=True, text=True, timeout=600,
        cwd=str(tmp_path), env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout
