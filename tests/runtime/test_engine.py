"""Tests for the pluggable host execution engine.

The engine's contract is that it changes *scheduling only*: for the same
block list and per-block function, the serial and thread engines (at any
worker count) must produce bit-identical centroids, assignments, modelled
ledger seconds, and fault-event replays.  These tests pin that contract
across every partition level, the bounded Level-3 variant, serial Lloyd,
and the fused/unfused kernel pair.
"""

import numpy as np
import pytest

from repro.core._common import accumulate, assign_with_distances, inertia
from repro.core.init import init_centroids
from repro.core.kernels import resolve_kernel
from repro.core.kmeans import HierarchicalKMeans
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.errors import ConfigurationError
from repro.machine.machine import toy_machine
from repro.runtime.engine import (
    ENGINE_ENV,
    WORKERS_ENV,
    SerialEngine,
    ThreadEngine,
    resolve_engine,
)
from repro.runtime.faults import FaultPlan, FaultSpec


# ---------------------------------------------------------------------------
# resolve_engine
# ---------------------------------------------------------------------------

class TestResolveEngine:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        # These tests pin resolve_engine's *default* behaviour; the CI
        # matrix exports REPRO_ENGINE/REPRO_WORKERS for the whole suite.
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        monkeypatch.delenv(WORKERS_ENV, raising=False)

    def test_default_is_serial(self):
        assert isinstance(resolve_engine(), SerialEngine)

    def test_names(self):
        assert isinstance(resolve_engine("serial"), SerialEngine)
        assert isinstance(resolve_engine("thread"), ThreadEngine)

    def test_instance_passthrough(self):
        eng = ThreadEngine(workers=3)
        assert resolve_engine(eng) is eng
        assert resolve_engine(eng, workers=3) is eng

    def test_instance_worker_conflict(self):
        with pytest.raises(ConfigurationError):
            resolve_engine(ThreadEngine(workers=3), workers=2)

    def test_workers_alone_implies_thread(self):
        eng = resolve_engine(workers=4)
        assert isinstance(eng, ThreadEngine)
        assert eng.workers == 4

    def test_workers_one_stays_serial(self):
        assert isinstance(resolve_engine(workers=1), SerialEngine)

    def test_serial_with_many_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_engine("serial", workers=4)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_engine("gpu")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreadEngine(workers=0)

    def test_env_engine(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "thread")
        monkeypatch.setenv(WORKERS_ENV, "3")
        eng = resolve_engine()
        assert isinstance(eng, ThreadEngine)
        assert eng.workers == 3

    def test_env_ignored_when_explicit(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "thread")
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert isinstance(resolve_engine("serial"), SerialEngine)

    def test_env_bad_workers_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "thread")
        monkeypatch.setenv(WORKERS_ENV, "four")
        with pytest.raises(ConfigurationError):
            resolve_engine()

    @pytest.mark.parametrize("value", ["", "  "])
    def test_env_empty_values_are_unset(self, monkeypatch, value):
        # CI matrices export empty strings for legs that don't use a knob;
        # an empty REPRO_WORKERS/REPRO_ENGINE must behave like no override.
        monkeypatch.setenv(ENGINE_ENV, value)
        monkeypatch.setenv(WORKERS_ENV, value)
        assert isinstance(resolve_engine(), SerialEngine)

    def test_env_workers_alone_implies_thread(self, monkeypatch):
        # Same implication as resolve_engine(workers=4): REPRO_WORKERS > 1
        # without REPRO_ENGINE selects the thread engine rather than
        # rejecting workers on the serial default.
        monkeypatch.setenv(WORKERS_ENV, "4")
        eng = resolve_engine()
        assert isinstance(eng, ThreadEngine)
        assert eng.workers == 4

    def test_env_workers_one_stays_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "1")
        assert isinstance(resolve_engine(), SerialEngine)


class TestMapSemantics:
    @pytest.mark.parametrize("engine", [SerialEngine(), ThreadEngine(2),
                                        ThreadEngine(4)])
    def test_submission_order_preserved(self, engine):
        items = list(range(64))
        assert engine.map(lambda i: i * i, items) == [i * i for i in items]

    @pytest.mark.parametrize("engine", [SerialEngine(), ThreadEngine(2)])
    def test_empty_and_singleton(self, engine):
        assert engine.map(lambda i: i, []) == []
        assert engine.map(lambda i: i + 1, [41]) == [42]

    def test_worker_exceptions_propagate(self):
        def boom(i):
            raise ValueError(f"item {i}")

        with pytest.raises(ValueError):
            ThreadEngine(2).map(boom, range(8))


# ---------------------------------------------------------------------------
# bit-identical execution across engines
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def workload():
    X, _ = gaussian_blobs(n=640, k=5, d=8, seed=17)
    C0 = init_centroids(X, 5, method="first")
    return X, C0


def _fit(level, engine, workers=None, **kwargs):
    X, _ = gaussian_blobs(n=420, k=4, d=6, seed=8)
    model = HierarchicalKMeans(
        4, machine=toy_machine(n_nodes=2), level=level, seed=13,
        max_iter=25, engine=engine, workers=workers, **kwargs)
    return model.fit(X)


@pytest.mark.parametrize("level", [1, 2, 3])
@pytest.mark.parametrize("workers", [2, 4])
def test_thread_engine_bit_identical_to_serial(level, workers):
    serial = _fit(level, "serial")
    threaded = _fit(level, "thread", workers=workers)
    np.testing.assert_array_equal(serial.centroids, threaded.centroids)
    np.testing.assert_array_equal(serial.assignments, threaded.assignments)
    assert serial.inertia == threaded.inertia
    assert serial.n_iter == threaded.n_iter
    assert [s.inertia for s in serial.history] \
        == [s.inertia for s in threaded.history]
    # Modelled time is engine-independent: identical charges, in order.
    assert serial.ledger.records == threaded.ledger.records


@pytest.mark.parametrize("level", [1, 2, 3])
def test_thread_engine_bit_identical_strict_cpe(level):
    serial = _fit(level, "serial", strict_cpe=True)
    threaded = _fit(level, "thread", workers=2, strict_cpe=True)
    np.testing.assert_array_equal(serial.centroids, threaded.centroids)
    np.testing.assert_array_equal(serial.assignments, threaded.assignments)
    assert serial.ledger.records == threaded.ledger.records


def test_thread_engine_bit_identical_bounded_level3():
    serial = _fit(3, "serial", bounded=True)
    threaded = _fit(3, "thread", workers=2, bounded=True)
    np.testing.assert_array_equal(serial.centroids, threaded.centroids)
    np.testing.assert_array_equal(serial.assignments, threaded.assignments)
    assert serial.ledger.records == threaded.ledger.records


@pytest.mark.parametrize("level", [1, 2, 3])
def test_fault_replay_engine_independent(level):
    plan = FaultPlan([
        FaultSpec("transient_dma", iteration=2),
        FaultSpec("collective_timeout", probability=0.05),
    ], seed=99)
    serial = _fit(level, "serial", faults=plan, recovery="retry")
    threaded = _fit(level, "thread", workers=4, faults=plan,
                    recovery="retry")
    np.testing.assert_array_equal(serial.centroids, threaded.centroids)
    assert serial.fault_events == threaded.fault_events
    assert serial.ledger.records == threaded.ledger.records


@pytest.mark.parametrize("kernel", ["naive", "gemm"])
@pytest.mark.parametrize("workers", [2, 4])
def test_lloyd_thread_parity(workload, kernel, workers):
    X, C0 = workload
    # Same chunk_elements both sides: shard boundaries are part of the
    # problem shape, and bit-identity is promised for a fixed shard list.
    serial = lloyd(X, C0, max_iter=20, kernel=kernel, engine="serial",
                   chunk_elements=4096)
    threaded = lloyd(X, C0, max_iter=20, kernel=kernel, engine="thread",
                     workers=workers, chunk_elements=4096)
    np.testing.assert_array_equal(serial.centroids, threaded.centroids)
    np.testing.assert_array_equal(serial.assignments, threaded.assignments)
    assert serial.inertia == threaded.inertia


def test_env_var_selection_round_trip(monkeypatch, workload):
    X, C0 = workload
    baseline = lloyd(X, C0, max_iter=5)
    monkeypatch.setenv(ENGINE_ENV, "thread")
    monkeypatch.setenv(WORKERS_ENV, "2")
    via_env = lloyd(X, C0, max_iter=5)
    np.testing.assert_array_equal(baseline.centroids, via_env.centroids)


# ---------------------------------------------------------------------------
# fused kernel vs unfused pair
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kernel", ["naive", "gemm"])
def test_fused_matches_unfused(workload, kernel):
    X, C = workload
    backend = resolve_kernel(kernel)
    idx, best, sums, counts = backend.assign_accumulate(X, C)
    ref_idx, ref_best = backend.assign_with_distances(X, C)
    ref_sums, ref_counts = accumulate(X, ref_idx, C.shape[0])
    np.testing.assert_array_equal(idx, ref_idx)
    np.testing.assert_array_equal(best, ref_best)
    np.testing.assert_array_equal(sums, ref_sums)
    np.testing.assert_array_equal(counts, ref_counts)


def test_fused_matches_unfused_on_adversarial_ties():
    # Duplicated centroids and samples sitting exactly on them: every
    # distance ties at 0 and the lowest-index rule decides.  The fused and
    # unfused paths must agree bit for bit, including which index wins.
    rng = np.random.default_rng(3)
    C = np.repeat(rng.normal(size=(4, 6)), 2, axis=0)  # each centroid twice
    X = np.vstack([C, C, rng.normal(size=(32, 6))])
    for kernel in ("naive", "gemm"):
        backend = resolve_kernel(kernel)
        idx, best, sums, counts = backend.assign_accumulate(X, C,
                                                            chunk_elements=64)
        ref_idx, ref_best = backend.assign_with_distances(X, C,
                                                          chunk_elements=64)
        ref_sums, ref_counts = accumulate(X, ref_idx, C.shape[0])
        np.testing.assert_array_equal(idx, ref_idx)
        np.testing.assert_array_equal(best, ref_best)
        np.testing.assert_array_equal(sums, ref_sums)
        np.testing.assert_array_equal(counts, ref_counts)
        # Ties resolve to the lowest centroid index (np.argmin rule).
        assert (idx[:8] == np.arange(8) // 2 * 2).all()


def test_history_inertia_matches_objective(workload):
    # The per-iteration inertia now comes from the winning distances; it
    # must equal the recomputed objective under the incoming centroids.
    X, C0 = workload
    result = lloyd(X, C0, max_iter=6)
    idx, best = assign_with_distances(X, C0)
    assert result.history[0].inertia == pytest.approx(
        inertia(X, C0, idx), rel=1e-12)
    assert result.history[0].inertia == pytest.approx(
        float(best.sum() / X.shape[0]), rel=1e-12)
