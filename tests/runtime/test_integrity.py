"""The data-integrity layer: ABFT seals, bitflip chaos, detection, repair.

Three data planes are covered end to end:

* reduction partials corrupted between task exit and combine
  (``bitflip_partial``),
* shared operands corrupted between publish and task start
  (``bitflip_arena``),
* durable checkpoint bytes corrupted on disk (``bitflip_checkpoint``).

The contract under test: ``verify`` turns silent corruption into a typed
:class:`~repro.errors.IntegrityError`; ``repair`` recomputes/restores the
smallest corrupted unit so the run finishes **bit-identical** to a
fault-free serial run; ``off`` is byte-for-byte the pre-integrity path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lloyd import lloyd
from repro.errors import ConfigurationError, IntegrityError
from repro.runtime.chaos import parse_chaos_plan, resolve_chaos
from repro.runtime.engine import (
    SerialEngine,
    TaskPolicy,
    ThreadEngine,
    resolve_engine,
)
from repro.runtime.integrity import (
    INTEGRITY_MODES,
    checksum_payload,
    crc32_array,
    manifest_digests,
    resolve_integrity,
    seal_partial,
    sha256_array,
    verified_combine,
    verify_combine,
    verify_partial,
)
from repro.runtime.process_engine import ProcessEngine
from repro.runtime.reduce import BlockPartial, SumCountPartial
from repro.runtime.shm import ArrayRef, SharedArena, as_ndarray


def make_partial(i, rows=3, cols=2):
    sums = np.full((rows, cols), float(i + 1))
    counts = np.full(rows, i + 1, dtype=np.int64)
    return SumCountPartial(sums, counts)


def combine(a, b):
    return a.combine(b)


def event_kinds(engine):
    return [kind for kind, _, _ in engine.drain_events()]


# ---------------------------------------------------------------------------
# mode resolution
# ---------------------------------------------------------------------------

class TestResolveIntegrity:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_INTEGRITY", raising=False)
        assert resolve_integrity() == "off"

    def test_env_consulted_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_INTEGRITY", "verify")
        assert resolve_integrity() == "verify"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_INTEGRITY", "verify")
        assert resolve_integrity("repair") == "repair"

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="integrity"):
            resolve_integrity("paranoid")

    def test_modes_cover_ladder(self):
        assert INTEGRITY_MODES == ("off", "verify", "repair")

    def test_constructors_never_read_env(self, monkeypatch):
        # The constructor-vs-resolver contract: an explicitly built engine
        # stays "off" under an ambient REPRO_INTEGRITY, exactly like chaos.
        monkeypatch.setenv("REPRO_INTEGRITY", "repair")
        assert SerialEngine().integrity == "off"
        assert resolve_engine(None).integrity == "repair"

    def test_resolve_engine_threads_mode(self):
        assert resolve_engine("serial", integrity="verify").integrity \
            == "verify"


# ---------------------------------------------------------------------------
# checksums, seal, verify
# ---------------------------------------------------------------------------

class TestChecksums:
    def test_crc32_is_content_only(self):
        a = np.arange(6.0)
        assert crc32_array(a) == crc32_array(a.copy())
        b = a.copy()
        b[3] = np.nextafter(b[3], np.inf)
        assert crc32_array(a) != crc32_array(b)

    def test_sha256_covers_shape_and_dtype(self):
        a = np.arange(6.0)
        assert sha256_array(a) != sha256_array(a.reshape(2, 3))
        assert sha256_array(a) != sha256_array(a.astype(np.float32))

    def test_manifest_keys_sorted(self):
        digests = manifest_digests({"b": np.ones(2), "a": np.zeros(2)})
        assert list(digests) == ["a", "b"]

    def test_payload_checksum_is_order_sensitive(self):
        a, b = np.ones(3), np.zeros(3)
        assert checksum_payload((a, b)) != checksum_payload((b, a))

    def test_payload_none_marker(self):
        assert checksum_payload((None,)) != checksum_payload(())


class TestSealVerify:
    def test_seal_stamps_crc_and_check_row(self):
        p = seal_partial(make_partial(0))
        assert p.crc is not None
        np.testing.assert_array_equal(p.check_row, p.sums.sum(axis=0))
        verify_partial(p)

    def test_unsealed_passes_vacuously(self):
        verify_partial(make_partial(0))
        verify_partial(object())
        verify_partial((np.ones(2), 3))

    def test_reseal_is_a_no_op(self):
        # Re-sealing after the chaos seam would launder corruption into a
        # fresh checksum; a sealed carrier must keep its original crc.
        p = seal_partial(make_partial(0))
        crc = p.crc
        p.sums[0, 0] += 1.0
        seal_partial(p)
        assert p.crc == crc
        with pytest.raises(IntegrityError):
            verify_partial(p)

    def test_corrupted_counts_detected(self):
        p = seal_partial(make_partial(1))
        p.counts[2] ^= 1
        with pytest.raises(IntegrityError, match="CRC32"):
            verify_partial(p)

    def test_verify_combine_accepts_clean_merge(self):
        a, b = seal_partial(make_partial(0)), seal_partial(make_partial(1))
        merged = verified_combine(combine, a, b)
        assert merged.crc is not None
        verify_partial(merged)

    def test_verify_combine_catches_dropped_mass(self):
        a, b = seal_partial(make_partial(0)), seal_partial(make_partial(1))
        merged = combine(a, b)
        merged.sums[:] = 0.0
        with pytest.raises(IntegrityError, match="check row"):
            verify_combine(a, b, merged)

    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_any_single_bitflip_is_detected(self, data):
        # CRC32 detects every single-bit error exactly, so this property
        # is a guarantee, not a statistical statement: flip any one bit of
        # any payload array of a sealed carrier and verification fails.
        rows = data.draw(st.integers(1, 5), label="rows")
        cols = data.draw(st.integers(1, 4), label="cols")
        sums = np.asarray(
            data.draw(st.lists(
                st.floats(-1e9, 1e9, allow_nan=False, width=64),
                min_size=rows * cols, max_size=rows * cols), label="sums"),
            dtype=np.float64).reshape(rows, cols)
        counts = np.asarray(
            data.draw(st.lists(st.integers(0, 2 ** 40),
                               min_size=rows, max_size=rows),
                      label="counts"), dtype=np.int64)
        partial = seal_partial(SumCountPartial(sums, counts))
        target = data.draw(st.sampled_from(["sums", "counts"]),
                           label="target")
        array = getattr(partial, target)
        byte = data.draw(st.integers(0, array.nbytes - 1), label="byte")
        bit = data.draw(st.integers(0, 7), label="bit")
        array.reshape(-1).view(np.uint8)[byte] ^= np.uint8(1 << bit)
        with pytest.raises(IntegrityError):
            verify_partial(partial)


# ---------------------------------------------------------------------------
# chaos grammar
# ---------------------------------------------------------------------------

class TestBitflipGrammar:
    def test_bitflip_kinds_parse(self):
        plan = parse_chaos_plan(
            "bitflip_partial:p=0.5;bitflip_arena:p=1;"
            "bitflip_checkpoint:p=1;seed=3")
        assert [s.kind for s in plan.specs] == [
            "bitflip_partial", "bitflip_arena", "bitflip_checkpoint"]
        assert plan.seed == 3

    def test_bitflip_partial_takes_kills(self):
        plan = parse_chaos_plan("bitflip_partial:p=1,kills=4")
        assert plan.specs[0].kills == 4


# ---------------------------------------------------------------------------
# engine matrix: detection and bit-identical repair
# ---------------------------------------------------------------------------

ENGINES = [
    pytest.param(lambda **kw: SerialEngine(**kw), id="serial"),
    pytest.param(lambda **kw: ThreadEngine(workers=4, **kw), id="thread"),
    pytest.param(lambda **kw: ProcessEngine(workers=2, **kw), id="process"),
]


class TestEngineMatrix:
    clean = None

    def clean_reduce(self, topology):
        return SerialEngine().map_reduce(make_partial, range(8), combine,
                                         topology=topology)

    @pytest.mark.parametrize("topology", ["serial", "tree"])
    @pytest.mark.parametrize("build", ENGINES)
    def test_verify_raises_on_partial_bitflip(self, build, topology):
        engine = build(chaos=resolve_chaos("bitflip_partial:p=0.5;seed=5"),
                       integrity="verify")
        with pytest.raises(IntegrityError):
            engine.map_reduce(make_partial, range(8), combine,
                              topology=topology)
        kinds = event_kinds(engine)
        assert "chaos" in kinds and "integrity" in kinds

    @pytest.mark.parametrize("topology", ["serial", "tree"])
    @pytest.mark.parametrize("build", ENGINES)
    def test_repair_is_bit_identical(self, build, topology):
        clean = self.clean_reduce(topology)
        engine = build(chaos=resolve_chaos("bitflip_partial:p=0.5;seed=5"),
                       integrity="repair")
        merged = engine.map_reduce(make_partial, range(8), combine,
                                   topology=topology)
        np.testing.assert_array_equal(merged.sums, clean.sums)
        np.testing.assert_array_equal(merged.counts, clean.counts)
        kinds = event_kinds(engine)
        assert kinds.count("integrity_repair") >= 1
        assert "integrity_quarantine" not in kinds

    @pytest.mark.parametrize("build", ENGINES)
    def test_off_mode_propagates_corruption(self, build):
        clean = self.clean_reduce(None)
        engine = build(chaos=resolve_chaos("bitflip_partial:p=0.5;seed=5"),
                       integrity="off")
        merged = engine.map_reduce(make_partial, range(8), combine)
        assert not np.array_equal(merged.sums, clean.sums)

    def test_persistent_corruption_quarantines(self):
        # kills > the repair budget: every recompute is corrupted again, so
        # the engine must escalate instead of looping forever.
        engine = SerialEngine(
            policy=TaskPolicy(max_retries=2, backoff_s=0.0),
            chaos=resolve_chaos("bitflip_partial:p=1,kills=9;seed=1"),
            integrity="repair")
        with pytest.raises(IntegrityError, match="persistent"):
            engine.map_reduce(make_partial, range(2), combine)
        assert "integrity_quarantine" in event_kinds(engine)

    def test_off_mode_emits_no_integrity_events(self):
        engine = SerialEngine()
        engine.map_reduce(make_partial, range(4), combine)
        assert event_kinds(engine) == []


# ---------------------------------------------------------------------------
# shared-operand (arena) plane
# ---------------------------------------------------------------------------

class TestSharedPlane:
    def test_verify_raises_on_arena_bitflip(self):
        engine = SerialEngine(
            chaos=resolve_chaos("bitflip_arena:p=1;seed=7"),
            integrity="verify")
        engine.share("x", np.arange(64.0))
        with pytest.raises(IntegrityError, match="share"):
            engine.map_reduce(make_partial, range(2), combine)

    def test_repair_restores_from_source(self):
        engine = SerialEngine(
            chaos=resolve_chaos("bitflip_arena:p=1;seed=7"),
            integrity="repair")
        source = np.arange(64.0)
        shared = engine.share("x", source)
        engine.map_reduce(make_partial, range(2), combine)
        kinds = event_kinds(engine)
        assert "integrity_repair" in kinds
        np.testing.assert_array_equal(shared, source)

    def test_identity_republish_skips_reverification(self):
        engine = SerialEngine(integrity="verify")
        X = np.arange(32.0)
        engine.share("x", X)
        engine.map_reduce(make_partial, range(2), combine)
        entry = engine._shared["x"]
        assert entry.verified
        engine.share("x", X)
        assert engine._shared["x"].verified  # carried, no re-hash needed

    def test_corruption_in_worker_segment_detected(self):
        # Worker-side defence in depth: a ref carrying a stale crc fails
        # the segment check inside as_ndarray.
        arena = SharedArena(tag="integ-test")
        try:
            array = np.arange(128.0)
            ref = arena.publish("x", array)
            good = ArrayRef(ref.name, ref.shape, ref.dtype,
                            crc=crc32_array(array))
            np.testing.assert_array_equal(as_ndarray(good), array)
            assert arena.corrupt("x", 5)
            bad = ArrayRef(ref.name, ref.shape, ref.dtype,
                           crc=crc32_array(array) ^ 0xFFFF)
            with pytest.raises(IntegrityError, match="segment"):
                as_ndarray(bad)
            assert arena.repair("x")
            np.testing.assert_array_equal(
                np.asarray(arena.view("x")), array)
        finally:
            arena.drain()


# ---------------------------------------------------------------------------
# end to end through lloyd
# ---------------------------------------------------------------------------

def _problem():
    rng = np.random.default_rng(42)
    X = rng.normal(size=(400, 6))
    return X, X[:5].copy()


class TestLloydEndToEnd:
    @pytest.mark.parametrize("topology", ["serial", "tree"])
    def test_repair_matches_fault_free_serial(self, topology):
        X, C0 = _problem()
        clean = lloyd(X, C0, max_iter=6, reduce=topology)
        engine = ThreadEngine(
            workers=4,
            chaos=resolve_chaos("bitflip_partial:p=1;seed=13"),
            integrity="repair")
        chaotic = lloyd(X, C0, max_iter=6, engine=engine, reduce=topology)
        np.testing.assert_array_equal(chaotic.centroids, clean.centroids)
        np.testing.assert_array_equal(chaotic.assignments,
                                      clean.assignments)
        repairs = sum(1 for e in chaotic.host_events
                      if e.kind == "integrity_repair")
        assert repairs >= 6  # every iteration's corrupted partial healed

    def test_off_mode_diverges_under_the_same_plan(self):
        X, C0 = _problem()
        clean = lloyd(X, C0, max_iter=6)
        engine = SerialEngine(
            chaos=resolve_chaos("bitflip_partial:p=1;seed=13"),
            integrity="off")
        chaotic = lloyd(X, C0, max_iter=6, engine=engine)
        assert not np.array_equal(chaotic.centroids, clean.centroids)

    def test_corrupted_checkpoint_resume_repairs_to_cold_start(self, tmp_path):
        X, C0 = _problem()
        engine = SerialEngine(
            chaos=resolve_chaos("bitflip_checkpoint:p=1;seed=2"),
            integrity="repair")
        lloyd(X, C0, max_iter=3, engine=engine, checkpoint_every=1,
              checkpoint_dir=str(tmp_path))
        resumed = lloyd(X, C0, max_iter=6, checkpoint_dir=str(tmp_path),
                        resume=True, integrity="repair")
        kinds = [e.kind for e in resumed.host_events]
        assert "integrity" in kinds  # detected the rotted snapshot
        clean = lloyd(X, C0, max_iter=6)
        np.testing.assert_array_equal(resumed.centroids, clean.centroids)

    def test_corrupted_checkpoint_resume_raises_under_verify(self, tmp_path):
        X, C0 = _problem()
        engine = SerialEngine(
            chaos=resolve_chaos("bitflip_checkpoint:p=1;seed=2"),
            integrity="verify")
        lloyd(X, C0, max_iter=3, engine=engine, checkpoint_every=1,
              checkpoint_dir=str(tmp_path))
        with pytest.raises(IntegrityError):
            lloyd(X, C0, max_iter=6, checkpoint_dir=str(tmp_path),
                  resume=True, integrity="verify")

    def test_chaos_replay_is_deterministic(self):
        X, C0 = _problem()

        def run():
            engine = SerialEngine(
                chaos=resolve_chaos("bitflip_partial:p=1;seed=13"),
                integrity="off")
            result = lloyd(X, C0, max_iter=5, engine=engine)
            return result.centroids

        np.testing.assert_array_equal(run(), run())
