"""Tests for the extended data-carrying collectives."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.machine.machine import toy_machine
from repro.runtime.collectives import (
    barrier,
    exscan_sum,
    gatherv,
    reduce_scatter_sum,
    scatterv,
)
from repro.runtime.ledger import TimeLedger
from repro.runtime.mpi import SimComm


@pytest.fixture
def comm():
    machine = toy_machine(n_nodes=4, cgs_per_node=2, mesh=2,
                          ldm_bytes=4096)
    return SimComm(machine, [0, 2, 4, 6], TimeLedger())


class TestReduceScatter:
    def test_sum_and_slice(self, comm):
        buffers = [np.full(8, float(r)) for r in range(4)]
        out = reduce_scatter_sum(comm, buffers)
        assert len(out) == 4
        recombined = np.concatenate(out)
        np.testing.assert_allclose(recombined, np.full(8, 6.0))
        assert all(o.shape == (2,) for o in out)

    def test_uneven_division(self, comm):
        buffers = [np.arange(10.0) for _ in range(4)]
        out = reduce_scatter_sum(comm, buffers)
        sizes = [o.shape[0] for o in out]
        assert sizes == [3, 3, 2, 2]
        np.testing.assert_allclose(np.concatenate(out),
                                   4.0 * np.arange(10.0))

    def test_charges_half_a_ring(self, comm):
        buffers = [np.zeros(1000) for _ in range(4)]
        reduce_scatter_sum(comm, buffers)
        charged = comm.ledger.total()
        full_ring = comm.allreduce_time(8000, "ring")
        assert charged == pytest.approx(full_ring / 2)

    def test_wrong_count_rejected(self, comm):
        with pytest.raises(CommunicatorError):
            reduce_scatter_sum(comm, [np.zeros(4)])


class TestGatherScatter:
    def test_gatherv_concatenates_uneven(self, comm):
        buffers = [np.full(r + 1, float(r)) for r in range(4)]
        out = gatherv(comm, buffers)
        assert out.shape == (10,)
        np.testing.assert_allclose(out[:1], 0.0)
        np.testing.assert_allclose(out[-4:], 3.0)
        assert comm.ledger.total() > 0

    def test_gatherv_rejects_scalars(self, comm):
        with pytest.raises(CommunicatorError):
            gatherv(comm, [np.array(1.0)] * 4)

    def test_scatterv_round_trips_gatherv(self, comm):
        chunks = [np.arange(float(r + 1)) for r in range(4)]
        received = scatterv(comm, chunks)
        out = gatherv(comm, received)
        np.testing.assert_allclose(out, np.concatenate(chunks))

    def test_scatterv_returns_copies(self, comm):
        chunks = [np.zeros(2) for _ in range(4)]
        received = scatterv(comm, chunks)
        received[0][0] = 99.0
        assert chunks[0][0] == 0.0

    def test_bad_root(self, comm):
        with pytest.raises(CommunicatorError):
            gatherv(comm, [np.zeros(1)] * 4, root=9)


class TestExscan:
    def test_prefix_sums(self, comm):
        values = [np.array([float(r + 1)]) for r in range(4)]
        out = exscan_sum(comm, values)
        np.testing.assert_allclose(np.concatenate(out),
                                   [0.0, 1.0, 3.0, 6.0])

    def test_offsets_use_case(self, comm):
        """The classic pattern: per-rank counts -> output offsets."""
        counts = [np.array([5]), np.array([3]), np.array([7]),
                  np.array([2])]
        offsets = exscan_sum(comm, counts)
        assert [int(o[0]) for o in offsets] == [0, 5, 8, 15]


class TestBarrier:
    def test_charges_latency_only(self, comm):
        barrier(comm)
        assert 0 < comm.ledger.total() < 1e-3

    def test_single_rank_free(self):
        machine = toy_machine(n_nodes=1, cgs_per_node=1, mesh=2,
                              ldm_bytes=4096)
        solo = SimComm(machine, [0], TimeLedger())
        barrier(solo)
        assert solo.ledger.total() == 0.0
