"""Tests for the host-side run supervisor (deadlines, watchdogs, events)."""

import pytest

from repro.errors import ConfigurationError, DeadlineExceededError
from repro.runtime.supervisor import (
    DEADLINE_ENV,
    HostEvent,
    RunSupervisor,
    resolve_supervisor,
)


class FakeClock:
    """Monotonic clock the tests advance by hand."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestHostEvent:
    def test_describe(self):
        e = HostEvent(3, "task_retry", "task 7 attempt 1", 0.5)
        line = e.describe()
        assert "iter 3" in line
        assert "task_retry" in line
        assert "task 7 attempt 1" in line
        assert "0.500s" in line

    def test_describe_minimal(self):
        assert HostEvent(0, "resume").describe() == "iter 0 resume"


class TestRunSupervisor:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="deadline_s"):
            RunSupervisor(deadline_s=0)
        with pytest.raises(ConfigurationError, match="deadline_s"):
            RunSupervisor(deadline_s=-1.0)
        with pytest.raises(ConfigurationError, match="watchdog_s"):
            RunSupervisor(watchdog_s=0)

    def test_no_deadline_never_raises(self):
        clock = FakeClock()
        sup = RunSupervisor(clock=clock)
        sup.start()
        clock.advance(1e9)
        sup.begin_iteration(1)  # no deadline configured: fine

    def test_deadline_enforced_at_iteration_boundary(self):
        clock = FakeClock()
        sup = RunSupervisor(deadline_s=10.0, clock=clock)
        sup.start()
        clock.advance(9.9)
        sup.begin_iteration(1)
        clock.advance(0.2)  # now past the deadline
        with pytest.raises(DeadlineExceededError, match="10"):
            sup.begin_iteration(2)
        # The abort left an audit trail.
        kinds = [e.kind for e in sup.events]
        assert "deadline_exceeded" in kinds

    def test_elapsed_before_start_is_zero(self):
        sup = RunSupervisor(clock=FakeClock())
        assert sup.elapsed() == 0.0

    def test_begin_iteration_auto_starts(self):
        clock = FakeClock()
        sup = RunSupervisor(deadline_s=5.0, clock=clock)
        sup.begin_iteration(1)  # never explicitly started
        clock.advance(6.0)
        with pytest.raises(DeadlineExceededError):
            sup.begin_iteration(2)

    def test_watchdog_flags_slow_iterations(self):
        clock = FakeClock()
        sup = RunSupervisor(watchdog_s=1.0, clock=clock)
        sup.start()
        sup.begin_iteration(1)
        clock.advance(0.5)
        sup.end_iteration(1)  # fast: no event
        sup.begin_iteration(2)
        clock.advance(2.5)
        sup.end_iteration(2)  # slow: flagged
        slow = [e for e in sup.events if e.kind == "slow_iteration"]
        assert len(slow) == 1
        assert slow[0].iteration == 2
        assert slow[0].seconds == pytest.approx(2.5)

    def test_record_stamps_current_iteration(self):
        sup = RunSupervisor(clock=FakeClock())
        sup.begin_iteration(7)
        event = sup.record("rollback", "restored checkpoint")
        assert event.iteration == 7
        assert sup.events == [event]

    def test_absorb_drains_engine_events(self):
        class StubEngine:
            def drain_events(self):
                return [("task_retry", "task 3 attempt 1", 0.01)]

        sup = RunSupervisor(clock=FakeClock())
        sup.begin_iteration(4)
        sup.absorb(StubEngine())
        assert sup.events == [HostEvent(4, "task_retry",
                                        "task 3 attempt 1", 0.01)]

    def test_absorb_tolerates_engines_without_events(self):
        sup = RunSupervisor(clock=FakeClock())
        sup.absorb(object())  # no drain_events: a no-op
        assert sup.events == []


class TestResolveSupervisor:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        monkeypatch.delenv(DEADLINE_ENV, raising=False)

    def test_default_build(self):
        sup = resolve_supervisor()
        assert isinstance(sup, RunSupervisor)
        assert sup.deadline_s is None
        assert sup.watchdog_s is None

    def test_explicit_knobs(self):
        sup = resolve_supervisor(deadline_s=30.0, watchdog_s=2.0)
        assert sup.deadline_s == 30.0
        assert sup.watchdog_s == 2.0

    def test_instance_passthrough(self):
        sup = RunSupervisor(deadline_s=5.0)
        assert resolve_supervisor(sup) is sup
        assert resolve_supervisor(sup, deadline_s=5.0) is sup

    def test_instance_conflict_rejected(self):
        with pytest.raises(ConfigurationError, match="conflicts"):
            resolve_supervisor(RunSupervisor(deadline_s=5.0), deadline_s=9.0)

    def test_env_deadline(self, monkeypatch):
        monkeypatch.setenv(DEADLINE_ENV, "120.5")
        assert resolve_supervisor().deadline_s == 120.5

    def test_env_ignored_when_explicit(self, monkeypatch):
        monkeypatch.setenv(DEADLINE_ENV, "120.5")
        assert resolve_supervisor(deadline_s=7.0).deadline_s == 7.0

    @pytest.mark.parametrize("value", ["", "  "])
    def test_env_empty_is_unset(self, monkeypatch, value):
        monkeypatch.setenv(DEADLINE_ENV, value)
        assert resolve_supervisor().deadline_s is None

    def test_env_bad_value_rejected(self, monkeypatch):
        monkeypatch.setenv(DEADLINE_ENV, "soon")
        with pytest.raises(ConfigurationError, match=DEADLINE_ENV):
            resolve_supervisor()
