"""Tests for the engine's host-robustness layer.

Retry/backoff/quarantine/degradation are pure *scheduling* changes: every
re-run executes the identical block function, so the determinism contract
of ``test_engine.py`` survives them.  These tests exercise the failure
paths themselves.
"""

import subprocess
import sys
import threading
import time

import pytest

from repro.errors import (
    ConfigurationError,
    TaskTimeoutError,
    TransientDMAError,
)
from repro.runtime import engine as engine_mod
from repro.runtime.engine import (
    TASK_RETRIES_ENV,
    TASK_TIMEOUT_ENV,
    SerialEngine,
    TaskPolicy,
    ThreadEngine,
    resolve_task_policy,
    shutdown_pools,
)


class TestTaskPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TaskPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            TaskPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            TaskPolicy(jitter=2.0)
        with pytest.raises(ConfigurationError):
            TaskPolicy(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            TaskPolicy(quarantine_after=0)

    def test_backoff_is_exponential_and_jittered(self):
        policy = TaskPolicy(backoff_s=0.01, backoff_factor=2.0, jitter=0.25)
        d1 = policy.backoff_delay(7, 1)
        d2 = policy.backoff_delay(7, 2)
        assert 0.01 <= d1 <= 0.01 * 1.25
        assert 0.02 <= d2 <= 0.02 * 1.25
        # Deterministic: a pure function of (task_id, attempt), so replays
        # (and other engines) compute the identical delay.
        assert policy.backoff_delay(7, 1) == d1
        assert policy.backoff_delay(8, 1) != d1

    def test_zero_jitter(self):
        policy = TaskPolicy(backoff_s=0.5, backoff_factor=3.0, jitter=0.0)
        assert policy.backoff_delay(0, 1) == 0.5
        assert policy.backoff_delay(0, 2) == 1.5


class TestResolveTaskPolicy:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        monkeypatch.delenv(TASK_RETRIES_ENV, raising=False)
        monkeypatch.delenv(TASK_TIMEOUT_ENV, raising=False)

    def test_defaults(self):
        policy = resolve_task_policy()
        assert policy.max_retries == 2
        assert policy.timeout_s is None

    def test_explicit_passthrough(self):
        policy = TaskPolicy(max_retries=9)
        assert resolve_task_policy(policy) is policy

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(TASK_RETRIES_ENV, "5")
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "2.5")
        policy = resolve_task_policy()
        assert policy.max_retries == 5
        assert policy.timeout_s == 2.5

    def test_env_bad_values_rejected(self, monkeypatch):
        monkeypatch.setenv(TASK_RETRIES_ENV, "many")
        with pytest.raises(ConfigurationError, match=TASK_RETRIES_ENV):
            resolve_task_policy()


class FlakyFn:
    """Fails the first ``failures`` calls per item, then succeeds."""

    def __init__(self, failures=1, exc=RuntimeError):
        self.failures = failures
        self.exc = exc
        self.calls = {}
        self._lock = threading.Lock()

    def __call__(self, item):
        with self._lock:
            n = self.calls.get(item, 0)
            self.calls[item] = n + 1
        if n < self.failures:
            raise self.exc(f"flaky item {item} call {n}")
        return item * 10


@pytest.mark.parametrize("engine_factory", [
    lambda p: SerialEngine(policy=p),
    lambda p: ThreadEngine(2, policy=p),
])
class TestRetryLadder:
    def test_transient_failures_absorbed(self, engine_factory):
        fn = FlakyFn(failures=2)
        engine = engine_factory(TaskPolicy(max_retries=2, backoff_s=0.0))
        assert engine.map(fn, range(4)) == [0, 10, 20, 30]
        events = engine.drain_events()
        assert sum(1 for k, _, _ in events if k == "task_retry") == 8

    def test_retry_exhaustion_reraises_original(self, engine_factory):
        fn = FlakyFn(failures=99)
        engine = engine_factory(TaskPolicy(max_retries=1, backoff_s=0.0))
        with pytest.raises(RuntimeError, match="flaky item"):
            engine.map(fn, range(4))

    def test_fault_errors_exempt_from_retries(self, engine_factory):
        # Modelled machine faults belong to the recovery policies, not to
        # host retries: one attempt, straight through.
        fn = FlakyFn(failures=99, exc=TransientDMAError)
        engine = engine_factory(TaskPolicy(max_retries=3, backoff_s=0.0))
        with pytest.raises(TransientDMAError):
            engine.map(fn, range(4))
        assert max(fn.calls.values()) == 1


class TestTimeouts:
    def test_straggler_speculatively_rerun(self):
        calls = {}
        lock = threading.Lock()

        def straggler(item):
            with lock:
                n = calls.get(item, 0)
                calls[item] = n + 1
            if item == 0 and n == 0:  # only item 0's first run is slow
                time.sleep(0.4)
            return item + 1

        engine = ThreadEngine(2, policy=TaskPolicy(timeout_s=0.05,
                                                   backoff_s=0.0))
        assert engine.map(straggler, range(4)) == [1, 2, 3, 4]
        kinds = [k for k, _, _ in engine.drain_events()]
        assert "task_timeout" in kinds
        # The straggler's slot is written off as hung.
        assert engine.healthy_slots < engine.workers

    def test_timeout_exhaustion_raises(self):
        def sleepy(item):
            time.sleep(0.3)
            return item

        # max_retries=0: the first timeout is already one attempt too many,
        # so the engine gives up instead of speculating.
        engine = ThreadEngine(2, policy=TaskPolicy(timeout_s=0.05,
                                                   max_retries=0))
        with pytest.raises(TaskTimeoutError):
            engine.map(sleepy, range(4))


def _slot_killer(workers=2):
    """Fail exactly once on each pool worker thread, never inline.

    A barrier holds each pool thread at its first task until every slot
    has picked one up, so all ``workers`` slots deterministically record a
    failure (no race where one fast thread drains the whole queue).
    Inline re-runs happen on the collecting thread and succeed.
    """
    main = threading.get_ident()
    barrier = threading.Barrier(workers, timeout=10)
    failed = set()
    lock = threading.Lock()

    def fn(item):
        ident = threading.get_ident()
        if ident != main:
            with lock:
                fresh = ident not in failed
                if fresh:
                    failed.add(ident)
            if fresh:
                barrier.wait()
                raise RuntimeError(f"slot {ident} failure")
        return item * 10

    return fn


class TestQuarantineAndDegradation:
    def test_failing_slots_quarantined_then_degraded(self):
        engine = ThreadEngine(2, policy=TaskPolicy(max_retries=2,
                                                   backoff_s=0.0,
                                                   quarantine_after=1))
        # One failure per slot quarantines both slots; with zero healthy
        # slots left the engine falls back to inline serial execution —
        # results unchanged.
        assert engine.map(_slot_killer(), range(8)) \
            == [i * 10 for i in range(8)]
        events = engine.drain_events()
        kinds = [k for k, _, _ in events]
        assert kinds.count("quarantine") == 2
        assert "degraded_serial" in kinds
        assert engine.degraded
        assert engine.healthy_slots < 1

    def test_degraded_engine_still_maps_correctly(self):
        engine = ThreadEngine(2, policy=TaskPolicy(max_retries=2,
                                                   backoff_s=0.0,
                                                   quarantine_after=1))
        engine.map(_slot_killer(), range(8))
        assert engine.degraded
        # Sticky degradation: later maps run inline and still work.
        assert engine.map(lambda i: i - 1, range(5)) == list(range(-1, 4))
        assert engine.degraded


class TestPoolLifecycle:
    def test_shutdown_pools_clears_cache(self):
        engine = ThreadEngine(3)
        engine.map(lambda i: i, range(8))
        assert 3 in engine_mod._POOLS
        shutdown_pools()
        assert engine_mod._POOLS == {}
        # The engine transparently builds a fresh pool afterwards.
        assert engine.map(lambda i: i * 2, range(4)) == [0, 2, 4, 6]
        shutdown_pools()

    def test_interpreter_exit_not_blocked_by_pools(self):
        # Regression for the atexit hook: a process that used the thread
        # engine (and never called shutdown_pools) must exit promptly.
        script = (
            "from repro.runtime.engine import ThreadEngine\n"
            "engine = ThreadEngine(4)\n"
            "assert engine.map(lambda i: i * i, range(32)) \\\n"
            "    == [i * i for i in range(32)]\n"
        )
        proc = subprocess.run([sys.executable, "-c", script], timeout=60,
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
