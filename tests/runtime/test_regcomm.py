"""Tests for the register-communication mesh collectives."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.machine.specs import CGSpec
from repro.runtime.ledger import TimeLedger
from repro.runtime.regcomm import RegisterComm


@pytest.fixture
def comm():
    return RegisterComm(CGSpec(), TimeLedger())


class TestCostModel:
    def test_zero_bytes_free(self, comm):
        assert comm.reduce_time(0) == 0.0
        assert comm.allreduce_time(0) == 0.0

    def test_reduce_pays_hops_and_bandwidth(self, comm):
        spec = comm.spec
        t = comm.reduce_time(46_400)
        expected = 16 * spec.register_latency + 46_400 / spec.register_bw
        assert t == pytest.approx(expected)

    def test_allreduce_is_two_sweeps(self, comm):
        assert comm.allreduce_time(1000) == pytest.approx(
            2 * comm.reduce_time(1000))

    def test_register_bw_faster_than_dma(self):
        # The paper: register comm is 3-4x faster than DMA-based sharing
        # for the AllReduce bottleneck.
        spec = CGSpec()
        assert spec.register_bw > spec.dma_bw

    def test_negative_bytes_rejected(self, comm):
        with pytest.raises(CommunicatorError):
            comm.reduce_time(-1)


class TestDataCollectives:
    def test_allreduce_sum(self, comm):
        buffers = [np.full(4, float(i)) for i in range(4)]
        total = comm.allreduce_sum(buffers)
        np.testing.assert_allclose(total, np.full(4, 6.0))
        assert comm.ledger.total() > 0

    def test_allreduce_shape_mismatch_rejected(self, comm):
        with pytest.raises(CommunicatorError, match="shape and dtype"):
            comm.allreduce_sum([np.zeros(3), np.zeros(4)])

    def test_allreduce_dtype_mismatch_rejected(self, comm):
        with pytest.raises(CommunicatorError):
            comm.allreduce_sum([np.zeros(3, np.float64),
                                np.zeros(3, np.float32)])

    def test_allreduce_empty_rejected(self, comm):
        with pytest.raises(CommunicatorError):
            comm.allreduce_sum([])

    def test_minloc_returns_payload_of_min(self, comm):
        winner = comm.reduce_min_pairs([3.0, 1.0, 2.0], ["a", "b", "c"])
        assert winner == "b"

    def test_minloc_tie_resolves_to_lowest_rank(self, comm):
        winner = comm.reduce_min_pairs([1.0, 1.0], ["first", "second"])
        assert winner == "first"

    def test_minloc_length_mismatch_rejected(self, comm):
        with pytest.raises(CommunicatorError):
            comm.reduce_min_pairs([1.0], ["a", "b"])

    def test_broadcast_returns_buffer_and_charges(self, comm):
        buf = np.arange(8.0)
        out = comm.broadcast(buf)
        assert out is buf
        assert comm.ledger.total() > 0

    def test_broadcast_invalid_cpe_count(self, comm):
        with pytest.raises(CommunicatorError):
            comm.broadcast(np.zeros(4), n_cpes=65)
