"""Tests for the host-parallel execution backend."""

import numpy as np
import pytest

from repro.core._common import accumulate, assign_chunked
from repro.core.init import init_centroids
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.errors import ConfigurationError
from repro.runtime.host import (
    default_workers,
    lloyd_parallel,
    parallel_assign_accumulate,
)


@pytest.fixture(scope="module")
def workload():
    X, _ = gaussian_blobs(n=2000, k=10, d=12, seed=41)
    C0 = init_centroids(X, 10, method="first")
    return X, C0


class TestParallelAssign:
    def test_matches_sequential_inprocess(self, workload):
        X, C = workload
        assignments, sums, counts = parallel_assign_accumulate(
            X, C, n_workers=0)
        np.testing.assert_array_equal(assignments, assign_chunked(X, C))
        ref_sums, ref_counts = accumulate(X, assignments, C.shape[0])
        np.testing.assert_allclose(sums, ref_sums, rtol=1e-12)
        np.testing.assert_array_equal(counts, ref_counts)

    def test_matches_sequential_multiprocess(self, workload):
        X, C = workload
        seq = parallel_assign_accumulate(X, C, n_workers=0)
        par = parallel_assign_accumulate(X, C, n_workers=2)
        np.testing.assert_array_equal(par[0], seq[0])
        np.testing.assert_allclose(par[1], seq[1], rtol=1e-12)
        np.testing.assert_array_equal(par[2], seq[2])

    def test_same_block_partition_is_bitwise_identical(self, workload):
        """With the same total block count, the block-order reduction makes
        1-worker and 2-worker results identical floats."""
        X, C = workload
        one = parallel_assign_accumulate(X, C, n_workers=1,
                                         blocks_per_worker=8)
        two = parallel_assign_accumulate(X, C, n_workers=2,
                                         blocks_per_worker=4)
        np.testing.assert_array_equal(one[0], two[0])
        np.testing.assert_array_equal(one[1], two[1])
        np.testing.assert_array_equal(one[2], two[2])

    def test_worker_count_independent_result(self, workload):
        X, C = workload
        a1 = parallel_assign_accumulate(X, C, n_workers=1)[0]
        a3 = parallel_assign_accumulate(X, C, n_workers=3)[0]
        np.testing.assert_array_equal(a1, a3)

    def test_tiny_input_single_block(self, workload):
        _, C = workload
        X = np.random.default_rng(0).normal(size=(3, 12))
        assignments, _, counts = parallel_assign_accumulate(
            X, C, n_workers=4)
        assert assignments.shape == (3,)
        assert counts.sum() == 3

    def test_validation(self, workload):
        X, C = workload
        with pytest.raises(ConfigurationError):
            parallel_assign_accumulate(X, C, n_workers=-1)
        with pytest.raises(ConfigurationError):
            parallel_assign_accumulate(X, C, blocks_per_worker=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestLloydParallel:
    def test_matches_serial_lloyd(self, workload):
        X, C0 = workload
        ref = lloyd(X, C0, max_iter=30)
        par = lloyd_parallel(X, C0, max_iter=30, n_workers=2)
        np.testing.assert_array_equal(par.assignments, ref.assignments)
        np.testing.assert_allclose(par.centroids, ref.centroids,
                                   rtol=1e-9, atol=1e-12)
        assert par.n_iter == ref.n_iter
        assert par.converged == ref.converged

    def test_inprocess_fallback_matches(self, workload):
        X, C0 = workload
        a = lloyd_parallel(X, C0, max_iter=10, n_workers=0)
        b = lloyd_parallel(X, C0, max_iter=10, n_workers=2)
        np.testing.assert_array_equal(a.assignments, b.assignments)

    def test_validation(self, workload):
        X, C0 = workload
        with pytest.raises(ConfigurationError):
            lloyd_parallel(X, C0, max_iter=0)
