"""Shared-memory arena lifetime: no /dev/shm leak on any exit path.

The arena has three release paths — explicit ``drain()`` (wired into
``shutdown_pools`` and thus ``atexit``), the per-arena ``weakref.finalize``
(GC of the owning engine), and, for a SIGKILL'd parent that can run
neither, the stdlib ``resource_tracker`` process.  The last one is the
crash-tolerance backstop and gets an end-to-end subprocess test against
``/dev/shm``.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.engine import shutdown_pools
from repro.runtime.shm import (
    ArrayRef,
    SharedArena,
    as_ndarray,
    drain_arenas,
    heartbeat_view,
    make_heartbeats,
)

SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR),
    reason="POSIX shared memory is not mounted at /dev/shm",
)


def _shm_entries(prefix):
    return [name for name in os.listdir(SHM_DIR) if prefix in name]


# ---------------------------------------------------------------------------
# ArrayRef / as_ndarray
# ---------------------------------------------------------------------------

class TestArrayRef:
    def test_publish_and_resolve_round_trip(self):
        arena = SharedArena(tag="t")
        try:
            X = np.arange(12, dtype=np.float64).reshape(3, 4)
            ref = arena.publish("X", X)
            assert isinstance(ref, ArrayRef)
            assert ref.shape == (3, 4)
            assert ref.nbytes == X.nbytes
            np.testing.assert_array_equal(as_ndarray(ref), X)
        finally:
            arena.drain()

    def test_resolved_view_is_read_only(self):
        arena = SharedArena(tag="t")
        try:
            ref = arena.publish("X", np.ones(4))
            view = as_ndarray(ref)
            with pytest.raises(ValueError):
                view[0] = 2.0
        finally:
            arena.drain()

    def test_plain_ndarray_passes_through(self):
        X = np.ones(3)
        assert as_ndarray(X) is X

    def test_missing_segment_raises_configuration_error(self):
        ref = ArrayRef(name="repro-definitely-not-there", shape=(2,),
                       dtype="<f8")
        with pytest.raises(ConfigurationError, match="gone"):
            as_ndarray(ref)

    def test_identity_republish_is_stable(self):
        arena = SharedArena(tag="t")
        try:
            X = np.arange(6, dtype=np.float64)
            assert arena.publish("X", X) == arena.publish("X", X)
        finally:
            arena.drain()

    def test_same_shape_republish_rewrites_segment(self):
        arena = SharedArena(tag="t")
        try:
            a = np.arange(8, dtype=np.float64)
            ref_a = arena.publish("C", a)
            ref_b = arena.publish("C", a + 1)
            assert ref_a.name == ref_b.name
            np.testing.assert_array_equal(as_ndarray(ref_b), a + 1)
        finally:
            arena.drain()


# ---------------------------------------------------------------------------
# arena lifetime: drain, GC, shutdown_pools
# ---------------------------------------------------------------------------

class TestArenaLifetime:
    def test_drain_unlinks_dev_shm_entries(self):
        arena = SharedArena(tag="life")
        arena.publish("X", np.ones(16))
        names = arena.segment_names
        assert names and all(_shm_entries(n) for n in names)
        arena.drain()
        assert not any(_shm_entries(n) for n in names)
        arena.drain()  # idempotent

    def test_shutdown_pools_drains_live_arenas(self):
        arena = SharedArena(tag="pools")
        arena.publish("X", np.ones(8))
        names = arena.segment_names
        shutdown_pools()
        assert not any(_shm_entries(n) for n in names)

    def test_drain_arenas_covers_every_arena(self):
        arenas = [SharedArena(tag=f"multi{i}") for i in range(3)]
        names = []
        for arena in arenas:
            arena.publish("X", np.ones(4))
            names.extend(arena.segment_names)
        drain_arenas()
        assert not any(_shm_entries(n) for n in names)

    def test_finalizer_releases_segments_on_gc(self):
        arena = SharedArena(tag="gc")
        arena.publish("X", np.ones(4))
        names = arena.segment_names
        del arena
        import gc
        gc.collect()
        assert not any(_shm_entries(n) for n in names)

    def test_heartbeat_segment_round_trip(self):
        shm, view = make_heartbeats(3)
        try:
            assert view.shape == (3,)
            assert (view == 0.0).all()
            view[1] = 42.0
            again = heartbeat_view(shm, 3)
            assert again[1] == 42.0
        finally:
            shm.close()
            shm.unlink()


# ---------------------------------------------------------------------------
# the SIGKILL backstop
# ---------------------------------------------------------------------------

_KILLED_PARENT_SCRIPT = """
import os, signal
import numpy as np
from repro.runtime.process_engine import ProcessEngine
from repro.runtime.shm import as_ndarray

def _touch(args):
    ref, lo, hi = args
    return float(as_ndarray(ref)[lo:hi].sum())

engine = ProcessEngine(workers=2)
X = np.arange(4096, dtype=np.float64)
ref = engine.share("X", X)
# Workers attach the segment before the crash: their attach-time
# re-registration with the (shared, fork-inherited) resource tracker must
# not disturb the single registry entry the unlink backstop relies on.
got = engine.map(_touch, [(ref, 0, 2048), (ref, 2048, 4096)])
assert got == [float(X[:2048].sum()), float(X[2048:].sum())]
print(ref.name, flush=True)
os.kill(os.getpid(), signal.SIGKILL)
"""


def test_sigkilled_parent_leaves_no_dev_shm_leak(tmp_path):
    """A SIGKILL'd parent cannot drain its arena; the resource tracker must.

    The tracker is a separate process that outlives the parent and
    best-effort unlinks every registered segment once all its clients are
    gone, so the leak check polls rather than asserts immediately.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        (os.path.join(os.path.dirname(__file__), "..", "..", "src")))
    proc = subprocess.run(
        [sys.executable, "-c", _KILLED_PARENT_SCRIPT],
        capture_output=True, text=True, env=env, timeout=120)
    # SIGKILL, not a clean exit: the in-process release paths never ran.
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    segment = proc.stdout.strip().split()[-1]
    assert segment.startswith("repro-")
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if not _shm_entries(segment):
            break
        time.sleep(0.2)
    assert not _shm_entries(segment), (
        f"segment {segment} still in /dev/shm 30s after the parent was "
        f"SIGKILL'd; the resource-tracker backstop is broken")
