"""Tests for the DMA engine cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.specs import CGSpec
from repro.runtime.dma import DMAEngine
from repro.runtime.ledger import TimeLedger


@pytest.fixture
def engine():
    return DMAEngine(CGSpec(), TimeLedger())


class TestTransferTime:
    def test_zero_bytes_is_free(self, engine):
        assert engine.transfer_time(0) == 0.0

    def test_cost_is_latency_plus_bandwidth(self, engine):
        spec = engine.spec
        t = engine.transfer_time(32_000)
        assert t == pytest.approx(spec.dma_latency + 32_000 / spec.dma_bw)

    def test_each_transaction_pays_latency(self, engine):
        t1 = engine.transfer_time(1000, transactions=1)
        t4 = engine.transfer_time(1000, transactions=4)
        assert t4 == pytest.approx(t1 + 3 * engine.spec.dma_latency)

    def test_bandwidth_term_matches_32_gbs(self, engine):
        # 32 GB at 32 GB/s ~ 1 second (plus startup latency).
        t = engine.transfer_time(32 * 10**9)
        assert t == pytest.approx(1.0, rel=1e-3)

    def test_negative_bytes_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            engine.transfer_time(-1)

    def test_zero_transactions_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            engine.transfer_time(100, transactions=0)


class TestCharging:
    def test_read_charges_ledger_and_counts_bytes(self, engine):
        t = engine.read(64_000, "centroids")
        assert engine.bytes_moved == 64_000
        assert engine.ledger.total() == pytest.approx(t)
        (record,) = engine.ledger.records
        assert record.category == "dma"
        assert record.label == "centroids"

    def test_write_same_cost_shape_as_read(self, engine):
        assert engine.write(1000, "w") == pytest.approx(
            engine.transfer_time(1000))

    def test_stream_time_counts_chunked_latency(self, engine):
        direct = engine.transfer_time(10_000, transactions=1)
        chunked = engine.stream_time(10_000, chunk_bytes=1_000)
        assert chunked == pytest.approx(
            direct + 9 * engine.spec.dma_latency)

    def test_stream_zero_bytes(self, engine):
        assert engine.stream_time(0, chunk_bytes=100) == 0.0

    def test_stream_bad_chunk_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            engine.stream_time(100, chunk_bytes=0)
