"""Tests for the simulated MPI communicator."""

import numpy as np
import pytest

from repro.errors import CommunicatorError, ConfigurationError
from repro.machine.machine import toy_machine
from repro.runtime.ledger import TimeLedger
from repro.runtime.mpi import SimComm, world_comm


@pytest.fixture
def machine():
    # 8 nodes x 2 CGs; supernodes of 4 nodes (8 CGs).
    return toy_machine(n_nodes=8, cgs_per_node=2, mesh=2, ldm_bytes=4096)


@pytest.fixture
def comm(machine):
    return world_comm(machine, TimeLedger())


class TestConstruction:
    def test_world_covers_all_cgs(self, comm, machine):
        assert comm.size == machine.n_cgs
        assert comm.cg_indices == tuple(range(machine.n_cgs))

    def test_rank_of_cg(self, machine):
        c = SimComm(machine, [3, 7, 11], TimeLedger())
        assert c.rank_of_cg(7) == 1
        with pytest.raises(CommunicatorError):
            c.rank_of_cg(0)

    def test_empty_communicator_rejected(self, machine):
        with pytest.raises(CommunicatorError):
            SimComm(machine, [], TimeLedger())

    def test_duplicate_ranks_rejected(self, machine):
        with pytest.raises(CommunicatorError):
            SimComm(machine, [1, 1], TimeLedger())

    def test_out_of_range_cg_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            SimComm(machine, [99], TimeLedger())

    def test_unknown_algorithm_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            SimComm(machine, [0], TimeLedger(), algorithm="butterfly")

    def test_split(self, comm):
        subs = comm.split([[0, 1], [2, 3]])
        assert subs[0].size == 2
        assert subs[0].cg_indices == (0, 1)
        assert subs[1].cg_indices == (2, 3)


class TestCostModel:
    def test_single_rank_collectives_free(self, machine):
        c = SimComm(machine, [0], TimeLedger())
        assert c.allreduce_time(10**6) == 0.0
        assert c.bcast_time(10**6) == 0.0
        assert c.allgather_time(10**6) == 0.0

    def test_zero_bytes_free(self, comm):
        assert comm.allreduce_time(0) == 0.0

    def test_algorithms_differ(self, comm):
        nbytes = 10**7
        ring = comm.allreduce_time(nbytes, "ring")
        tree = comm.allreduce_time(nbytes, "tree")
        rd = comm.allreduce_time(nbytes, "recursive-doubling")
        # For large payloads, bandwidth-optimal ring beats the tree, and
        # the tree costs exactly twice recursive doubling (reduce + bcast).
        assert ring < tree
        assert tree == pytest.approx(2 * rd)

    def test_same_node_traffic_uses_memory_transport(self, machine):
        ledger = TimeLedger()
        onnode = SimComm(machine, [0, 1], ledger)      # same node
        offnode = SimComm(machine, [0, 2], ledger)     # adjacent nodes
        assert onnode.allreduce_time(10**6) < offnode.allreduce_time(10**6)

    def test_supernode_crossing_costs_more(self, machine):
        ledger = TimeLedger()
        intra = SimComm(machine, [0, 7], ledger)    # nodes 0 and 3
        inter = SimComm(machine, [0, 15], ledger)   # nodes 0 and 7
        assert intra.allreduce_time(10**6) < inter.allreduce_time(10**6)

    def test_p2p_cost_orders(self, comm):
        assert comm.p2p_time(0, 0, 100) == 0.0
        same_node = comm.p2p_time(0, 1, 10**6)
        cross_node = comm.p2p_time(0, 2, 10**6)
        cross_super = comm.p2p_time(0, 15, 10**6)
        assert same_node < cross_node < cross_super

    def test_p2p_bad_rank(self, comm):
        with pytest.raises(CommunicatorError):
            comm.p2p_time(0, 99, 10)


class TestDataCollectives:
    def test_allreduce_sum(self, comm):
        buffers = [np.full(3, float(r)) for r in range(comm.size)]
        total = comm.allreduce_sum(buffers)
        expected = sum(range(comm.size))
        np.testing.assert_allclose(total, np.full(3, float(expected)))
        assert comm.ledger.total() > 0

    def test_allreduce_wrong_buffer_count(self, comm):
        with pytest.raises(CommunicatorError, match="one buffer per rank"):
            comm.allreduce_sum([np.zeros(3)])

    def test_allreduce_min_pairs_elementwise(self, machine):
        c = SimComm(machine, [0, 1, 2], TimeLedger())
        values = [np.array([5.0, 1.0]), np.array([2.0, 9.0]),
                  np.array([3.0, 0.5])]
        payloads = [np.array([10, 11]), np.array([20, 21]),
                    np.array([30, 31])]
        best_vals, best_pays = c.allreduce_min_pairs(values, payloads)
        np.testing.assert_allclose(best_vals, [2.0, 0.5])
        np.testing.assert_array_equal(best_pays, [20, 31])

    def test_minloc_tie_lowest_rank(self, machine):
        c = SimComm(machine, [0, 1], TimeLedger())
        vals = [np.array([1.0]), np.array([1.0])]
        pays = [np.array([7]), np.array([8])]
        _, best = c.allreduce_min_pairs(vals, pays)
        assert best[0] == 7

    def test_allgather_concatenates_in_rank_order(self, machine):
        c = SimComm(machine, [0, 1, 2], TimeLedger())
        out = c.allgather([np.array([r]) for r in range(3)])
        np.testing.assert_array_equal(out, [0, 1, 2])

    def test_bcast_validates_root(self, comm):
        with pytest.raises(CommunicatorError):
            comm.bcast(np.zeros(2), root=comm.size)

    def test_collectives_charge_network_category(self, comm):
        comm.allreduce_sum([np.zeros(4) for _ in range(comm.size)])
        totals = comm.ledger.total_by_category()
        assert totals["network"] > 0
        assert totals["dma"] == 0
