"""Tests for the TimeLedger critical-path accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.ledger import CATEGORIES, TimeLedger


@pytest.fixture
def ledger():
    return TimeLedger()


class TestCharging:
    def test_charge_accumulates(self, ledger):
        ledger.charge("dma", "read", 1.0)
        ledger.charge("compute", "dist", 2.0)
        assert ledger.total() == pytest.approx(3.0)

    def test_unknown_category_rejected(self, ledger):
        with pytest.raises(ConfigurationError, match="unknown ledger category"):
            ledger.charge("gpu", "x", 1.0)

    def test_negative_duration_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.charge("dma", "x", -1.0)

    def test_nan_duration_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.charge("dma", "x", float("nan"))

    def test_zero_duration_allowed(self, ledger):
        ledger.charge("network", "noop", 0.0)
        assert ledger.total() == 0.0

    def test_charge_parallel_takes_max(self, ledger):
        worst = ledger.charge_parallel("compute", "assign", [0.1, 0.5, 0.3])
        assert worst == pytest.approx(0.5)
        assert ledger.total() == pytest.approx(0.5)

    def test_charge_parallel_empty_rejected(self, ledger):
        with pytest.raises(ConfigurationError, match="no participating units"):
            ledger.charge_parallel("compute", "assign", [])


class TestIterations:
    def test_epoch_zero_is_setup(self, ledger):
        ledger.charge("dma", "load", 1.0)
        ledger.next_iteration()
        ledger.charge("compute", "work", 2.0)
        assert ledger.iteration_time(0) == pytest.approx(1.0)
        assert ledger.iteration_time(1) == pytest.approx(2.0)

    def test_mean_iteration_time_excludes_setup(self, ledger):
        ledger.charge("dma", "load", 100.0)
        for t in (1.0, 2.0, 3.0):
            ledger.next_iteration()
            ledger.charge("compute", "w", t)
        assert ledger.mean_iteration_time() == pytest.approx(2.0)

    def test_mean_without_iterations_raises(self, ledger):
        with pytest.raises(ConfigurationError, match="no iterations"):
            ledger.mean_iteration_time()

    def test_breakdowns_group_by_iteration_and_category(self, ledger):
        ledger.next_iteration()
        ledger.charge("dma", "a", 1.0)
        ledger.charge("dma", "b", 2.0)
        ledger.charge("network", "c", 4.0)
        (bd,) = ledger.iteration_breakdowns()
        assert bd.by_category["dma"] == pytest.approx(3.0)
        assert bd.by_category["network"] == pytest.approx(4.0)
        assert bd.total == pytest.approx(7.0)


class TestAggregation:
    def test_total_by_category_has_all_keys(self, ledger):
        totals = ledger.total_by_category()
        assert set(totals) == set(CATEGORIES)

    def test_merge_combines_records(self):
        a, b = TimeLedger(), TimeLedger()
        a.charge("dma", "x", 1.0)
        b.next_iteration()
        b.charge("compute", "y", 2.0)
        a.merge(b)
        assert a.total() == pytest.approx(3.0)
        assert a.n_iterations == 1

    def test_report_mentions_totals(self, ledger):
        ledger.charge("regcomm", "x", 0.5)
        report = ledger.report()
        assert "regcomm" in report
        assert "0.5" in report
