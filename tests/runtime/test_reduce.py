"""The reduction seam: topologies, combines, and engine invariance.

The contract under test (docs/architecture.md "Reduction seam"):

* a topology's schedule is a pure function of the slot count — never of
  thread timing — so any topology is bit-identical across engines and
  worker counts;
* ``reduce="serial"`` reproduces the historical hand-rolled left fold
  bit-for-bit (it *is* that loop, behind the seam);
* combines never mutate their operands (engine retries re-run them);
* chaos/fault replays stay bit-identical when tree combines run as real
  engine tasks.
"""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.init import init_centroids
from repro.core.kmeans import HierarchicalKMeans
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.errors import ConfigurationError
from repro.machine.machine import toy_machine
from repro.runtime.engine import SerialEngine, ThreadEngine
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.reduce import (
    REDUCE_ENV,
    GroupedTopology,
    InertiaPartial,
    LabelPartial,
    SerialTopology,
    SumCountPartial,
    TreeTopology,
    combine_partials,
    resolve_reduce,
    serial_fold,
    validate_schedule,
)


# ---------------------------------------------------------------------------
# schedules: purity and invariants
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("topology", [SerialTopology(), TreeTopology()])
@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64])
def test_schedules_are_valid_and_pure(topology, n):
    schedule = topology.schedule(n)
    assert schedule == topology.schedule(n)  # pure function of n
    if n > 1:
        assert validate_schedule(schedule, n) == 0


def test_serial_schedule_is_the_left_fold_chain():
    assert SerialTopology().schedule(4) == (((0, 1),), ((0, 2),), ((0, 3),))


def test_tree_schedule_is_recursive_halving():
    assert TreeTopology().schedule(5) == (
        ((0, 1), (2, 3)),
        ((0, 2),),
        ((0, 4),),
    )


def test_tree_rounds_touch_disjoint_slots():
    for n in range(2, 70):
        for round_ in TreeTopology().schedule(n):
            slots = [s for merge in round_ for s in merge]
            assert len(slots) == len(set(slots))


@pytest.mark.parametrize("bad, n", [
    ((((0, 1), (0, 2)),), 3),          # slot 0 reused within a round
    ((((0, 1),), ((1, 2),)), 3),       # merges a consumed slot
    ((((0, 1),),), 3),                 # too few merges
])
def test_validate_schedule_rejects_malformed_plans(bad, n):
    with pytest.raises(ConfigurationError):
        validate_schedule(bad, n)


def test_grouped_schedule_fuses_inner_rounds_then_reduces_winners():
    topo = SerialTopology().for_groups([[0, 1, 2], [3, 4]])
    # Round i of every group fuses; then winners [0, 3] fold serially.
    assert topo.schedule(5) == (
        ((0, 1), (3, 4)),
        ((0, 2),),
        ((0, 3),),
    )
    assert validate_schedule(topo.schedule(5), 5) == 0


def test_grouped_schedule_requires_a_partition():
    topo = SerialTopology().for_groups([[0, 1], [3]])
    with pytest.raises(ConfigurationError):
        topo.schedule(4)  # slot 2 missing, slot 3 out of nowhere


def test_grouped_rejects_empty_groups():
    with pytest.raises(ConfigurationError):
        GroupedTopology([[0, 1], []])


def test_grouped_cannot_be_regrouped():
    topo = TreeTopology().for_groups([[0], [1]])
    with pytest.raises(ConfigurationError):
        topo.for_groups([[0, 1]])


def test_grouped_pooled_follows_members():
    assert not SerialTopology().for_groups([[0, 1]]).pooled
    assert TreeTopology().for_groups([[0, 1]]).pooled
    assert GroupedTopology([[0, 1]], inner=SerialTopology(),
                           outer=TreeTopology()).pooled


# ---------------------------------------------------------------------------
# combine_partials and the Reducible partial classes
# ---------------------------------------------------------------------------

def test_combine_adds_arrays_tuples_and_numbers():
    a = (np.arange(4.0), 2)
    b = (np.ones(4), 3)
    sums, n = combine_partials(a, b)
    np.testing.assert_array_equal(sums, np.arange(4.0) + 1)
    assert n == 5
    assert combine_partials(1.5, 2.5) == 4.0


def test_combine_returns_fresh_arrays():
    a, b = np.ones(3), np.ones(3)
    out = combine_partials(a, b)
    assert not np.shares_memory(out, a) and not np.shares_memory(out, b)
    np.testing.assert_array_equal(a, np.ones(3))  # operands untouched


def test_combine_rejects_mismatched_tuples_and_unknown_types():
    with pytest.raises(ConfigurationError):
        combine_partials((1, 2), (1, 2, 3))
    with pytest.raises(ConfigurationError):
        combine_partials(object(), object())


def test_sum_count_partial_combines_without_mutation():
    a = SumCountPartial(np.ones((2, 3)), np.array([1, 2]))
    b = SumCountPartial(np.full((2, 3), 2.0), np.array([3, 4]))
    merged = combine_partials(a, b)
    np.testing.assert_array_equal(merged.sums, np.full((2, 3), 3.0))
    np.testing.assert_array_equal(merged.counts, np.array([4, 6]))
    np.testing.assert_array_equal(a.sums, np.ones((2, 3)))


def test_inertia_partial_mean():
    merged = InertiaPartial(6.0, 2).combine(InertiaPartial(2.0, 2))
    assert merged.total == 8.0 and merged.n == 4
    assert merged.mean == 2.0


def test_label_partial_concatenates_adjacent_blocks():
    a = LabelPartial(0, 2, np.array([1, 0]), np.array([0.5, 0.25]))
    b = LabelPartial(2, 3, np.array([2]), np.array([1.0]))
    merged = a.combine(b)
    assert (merged.lo, merged.hi) == (0, 3)
    np.testing.assert_array_equal(merged.labels, [1, 0, 2])
    with pytest.raises(ConfigurationError):
        b.combine(a)  # blocks don't abut in that order


# ---------------------------------------------------------------------------
# resolve_reduce and the REPRO_REDUCE knob
# ---------------------------------------------------------------------------

def test_resolve_reduce_names_instances_and_errors(monkeypatch):
    monkeypatch.delenv(REDUCE_ENV, raising=False)
    assert isinstance(resolve_reduce(None), SerialTopology)
    assert isinstance(resolve_reduce("tree"), TreeTopology)
    topo = TreeTopology()
    assert resolve_reduce(topo) is topo
    with pytest.raises(ConfigurationError):
        resolve_reduce("fancy")


def test_resolve_reduce_env_round_trip(monkeypatch):
    monkeypatch.setenv(REDUCE_ENV, "tree")
    assert isinstance(resolve_reduce(None), TreeTopology)
    # Explicit beats the environment.
    assert isinstance(resolve_reduce("serial"), SerialTopology)


@pytest.mark.parametrize("value", ["", "   ", "\t"])
def test_resolve_reduce_blank_env_counts_as_unset(monkeypatch, value):
    monkeypatch.setenv(REDUCE_ENV, value)
    assert isinstance(resolve_reduce(None), SerialTopology)


# ---------------------------------------------------------------------------
# engine.reduce_partials / map_reduce semantics
# ---------------------------------------------------------------------------

def _random_partials(n, seed=0):
    rng = np.random.default_rng(seed)
    return [(rng.normal(size=(3, 4)), rng.integers(0, 9, size=3))
            for _ in range(n)]


def test_serial_reduce_matches_the_historical_fold():
    partials = _random_partials(9)
    engine = SerialEngine()
    reduced = engine.reduce_partials(partials, topology=SerialTopology())
    # The loop every call site used to hand-roll.
    sums = partials[0][0].copy()
    counts = partials[0][1].copy()
    for s, c in partials[1:]:
        sums += s
        counts += c
    np.testing.assert_array_equal(reduced[0], sums)
    np.testing.assert_array_equal(reduced[1], counts)
    assert serial_fold(partials)[0].tobytes() == sums.tobytes()


def test_reduce_zero_partials_is_an_error():
    with pytest.raises(ConfigurationError):
        SerialEngine().reduce_partials([])


def test_reduce_single_partial_is_identity():
    partials = _random_partials(1)
    assert SerialEngine().reduce_partials(partials) is partials[0]


def test_reduce_does_not_mutate_partials():
    for topology in (SerialTopology(), TreeTopology()):
        partials = _random_partials(7, seed=3)
        snapshot = copy.deepcopy(partials)
        reduced = SerialEngine().reduce_partials(partials, topology=topology)
        for (s, c), (s0, c0) in zip(partials, snapshot):
            np.testing.assert_array_equal(s, s0)
            np.testing.assert_array_equal(c, c0)
        for before in partials:
            assert not np.shares_memory(reduced[0], before[0])
            assert not np.shares_memory(reduced[1], before[1])


def test_map_reduce_returns_partials_on_request():
    engine = SerialEngine()
    total, partials = engine.map_reduce(
        lambda i: float(i), range(5), topology="serial",
        return_partials=True)
    assert total == 10.0
    assert partials == [0.0, 1.0, 2.0, 3.0, 4.0]


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=1, max_value=33),
       workers=st.integers(min_value=2, max_value=6),
       seed=st.integers(min_value=0, max_value=2**16))
def test_tree_reduction_bit_invariant_across_engines(n, workers, seed):
    partials = _random_partials(n, seed=seed)
    serial = SerialEngine().reduce_partials(partials, topology="tree")
    threaded = ThreadEngine(workers).reduce_partials(partials,
                                                     topology="tree")
    assert serial[0].tobytes() == threaded[0].tobytes()
    assert serial[1].tobytes() == threaded[1].tobytes()


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=2, max_value=33),
       seed=st.integers(min_value=0, max_value=2**16))
def test_tree_matches_serial_numerically(n, seed):
    partials = _random_partials(n, seed=seed)
    engine = SerialEngine()
    tree = engine.reduce_partials(partials, topology="tree")
    serial = engine.reduce_partials(partials, topology="serial")
    # atol floors the comparison for near-zero sums, where catastrophic
    # cancellation makes a ~1e-15 absolute reordering difference blow
    # past any purely relative tolerance.
    np.testing.assert_allclose(tree[0], serial[0], rtol=1e-12, atol=1e-13)
    np.testing.assert_array_equal(tree[1], serial[1])  # int64: exact


# ---------------------------------------------------------------------------
# end-to-end: executors and lloyd under reduce=tree
# ---------------------------------------------------------------------------

def _fit(level, engine, workers=None, **kwargs):
    X, _ = gaussian_blobs(n=420, k=4, d=6, seed=8)
    model = HierarchicalKMeans(
        4, machine=toy_machine(n_nodes=2), level=level, seed=13,
        max_iter=25, engine=engine, workers=workers, **kwargs)
    return model.fit(X)


@pytest.mark.parametrize("level", [1, 2, 3])
def test_tree_reduce_bit_identical_across_engines(level):
    serial = _fit(level, "serial", reduce="tree")
    for workers in (2, 5):
        threaded = _fit(level, "thread", workers=workers, reduce="tree")
        np.testing.assert_array_equal(serial.centroids, threaded.centroids)
        np.testing.assert_array_equal(serial.assignments,
                                      threaded.assignments)
        assert serial.ledger.records == threaded.ledger.records


@pytest.mark.parametrize("level", [1, 2, 3])
def test_serial_reduce_is_the_default_and_bit_identical(level, monkeypatch):
    monkeypatch.delenv(REDUCE_ENV, raising=False)
    default = _fit(level, "serial")
    explicit = _fit(level, "serial", reduce="serial")
    np.testing.assert_array_equal(default.centroids, explicit.centroids)
    assert default.ledger.records == explicit.ledger.records


@pytest.mark.parametrize("level", [1, 2, 3])
def test_fault_replay_engine_independent_under_tree(level):
    plan = FaultPlan([
        FaultSpec("transient_dma", iteration=2),
        FaultSpec("collective_timeout", probability=0.05),
    ], seed=99)
    serial = _fit(level, "serial", reduce="tree", faults=plan,
                  recovery="retry")
    threaded = _fit(level, "thread", workers=4, reduce="tree", faults=plan,
                    recovery="retry")
    np.testing.assert_array_equal(serial.centroids, threaded.centroids)
    assert serial.fault_events == threaded.fault_events
    assert serial.ledger.records == threaded.ledger.records


def test_lloyd_tree_reduce_parity():
    X, _ = gaussian_blobs(n=640, k=5, d=8, seed=17)
    C0 = init_centroids(X, 5, method="first")
    serial = lloyd(X, C0, max_iter=20, chunk_elements=4096, reduce="tree")
    threaded = lloyd(X, C0, max_iter=20, chunk_elements=4096, reduce="tree",
                     engine="thread", workers=3)
    np.testing.assert_array_equal(serial.centroids, threaded.centroids)
    np.testing.assert_array_equal(serial.assignments, threaded.assignments)
    assert serial.inertia == threaded.inertia


def test_reduce_env_selects_topology_end_to_end(monkeypatch):
    X, _ = gaussian_blobs(n=200, k=3, d=5, seed=4)
    C0 = init_centroids(X, 3, method="first")
    baseline = lloyd(X, C0, max_iter=5)
    monkeypatch.setenv(REDUCE_ENV, "tree")
    via_env = lloyd(X, C0, max_iter=5)
    np.testing.assert_allclose(baseline.centroids, via_env.centroids,
                               rtol=1e-12)


class _RecordingEngine(SerialEngine):
    """Snapshots every map() result so mutation can be detected later."""

    def __init__(self):
        super().__init__()
        self.snapshots = []
        self.live = []

    def map(self, fn, items):
        results = super().map(fn, items)
        self.snapshots.append(copy.deepcopy(results))
        self.live.append(results)
        return results


def test_lloyd_merge_no_longer_mutates_the_first_partial():
    # Regression: the historical fold seeded the accumulator with
    # partials[0] and += into it; the reduce seam must leave every map()
    # result pristine.
    X, _ = gaussian_blobs(n=300, k=3, d=4, seed=21)
    C0 = init_centroids(X, 3, method="first")
    engine = _RecordingEngine()
    lloyd(X, C0, max_iter=3, engine=engine, chunk_elements=512)
    assert engine.snapshots  # the workload actually sharded
    for live, snap in zip(engine.live, engine.snapshots):
        for live_partial, snap_partial in zip(live, snap):
            if not isinstance(live_partial, tuple):
                continue
            for a, b in zip(live_partial, snap_partial):
                if isinstance(a, np.ndarray):
                    np.testing.assert_array_equal(a, b)
