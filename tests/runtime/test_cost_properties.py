"""Property-based tests on the runtime cost models.

The timing figures are only as trustworthy as the cost functions under
them; these properties pin down the axioms every transport must satisfy:
monotonicity in volume, superadditivity of latency-bearing operations,
locality orderings, and scale-invariance relations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.specs import CGSpec, NetworkSpec
from repro.machine.machine import toy_machine
from repro.machine.topology import FatTreeTopology
from repro.runtime.compute import ComputeModel
from repro.runtime.dma import DMAEngine
from repro.runtime.ledger import TimeLedger
from repro.runtime.mpi import SimComm
from repro.runtime.regcomm import RegisterComm

nbytes_st = st.integers(0, 10**9)


@pytest.fixture(scope="module")
def machine():
    return toy_machine(n_nodes=8, cgs_per_node=2, mesh=2, ldm_bytes=4096)


class TestDMAProperties:
    @given(a=nbytes_st, b=nbytes_st)
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_bytes(self, a, b):
        engine = DMAEngine(CGSpec(), TimeLedger())
        lo, hi = min(a, b), max(a, b)
        assert engine.transfer_time(lo) <= engine.transfer_time(hi)

    @given(nbytes=st.integers(1, 10**8), t1=st.integers(1, 50),
           t2=st.integers(1, 50))
    @settings(max_examples=50, deadline=None)
    def test_more_transactions_cost_more(self, nbytes, t1, t2):
        engine = DMAEngine(CGSpec(), TimeLedger())
        lo, hi = min(t1, t2), max(t1, t2)
        assert (engine.transfer_time(nbytes, lo)
                <= engine.transfer_time(nbytes, hi))

    @given(a=st.integers(1, 10**8), b=st.integers(1, 10**8))
    @settings(max_examples=50, deadline=None)
    def test_splitting_a_transfer_never_helps(self, a, b):
        """Latency makes two transfers cost at least one combined one."""
        engine = DMAEngine(CGSpec(), TimeLedger())
        together = engine.transfer_time(a + b)
        split = engine.transfer_time(a) + engine.transfer_time(b)
        assert split >= together


class TestRegcommProperties:
    @given(a=nbytes_st, b=nbytes_st)
    @settings(max_examples=50, deadline=None)
    def test_monotone(self, a, b):
        comm = RegisterComm(CGSpec(), TimeLedger())
        lo, hi = min(a, b), max(a, b)
        assert comm.allreduce_time(lo) <= comm.allreduce_time(hi)

    @given(nbytes=st.integers(1, 10**8))
    @settings(max_examples=50, deadline=None)
    def test_faster_than_network_for_same_volume(self, nbytes, machine):
        """The whole point of register communication (paper section II.A):
        intra-CG reduction beats going through the network."""
        reg = RegisterComm(machine.spec.processor.cg, TimeLedger())
        net = SimComm(machine, [0, 2, 4, 6], TimeLedger())
        assert reg.allreduce_time(nbytes) < net.allreduce_time(nbytes)


class TestSimCommProperties:
    @given(nbytes=nbytes_st,
           algorithm=st.sampled_from(["ring", "tree", "recursive-doubling"]))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_bytes(self, machine, nbytes, algorithm):
        comm = SimComm(machine, [0, 2, 4], TimeLedger(), algorithm)
        assert (comm.allreduce_time(nbytes, algorithm)
                <= comm.allreduce_time(nbytes + 1024, algorithm))

    @given(nbytes=st.integers(1, 10**8))
    @settings(max_examples=30, deadline=None)
    def test_tree_is_twice_recursive_doubling(self, machine, nbytes):
        comm = SimComm(machine, [0, 2, 4, 6], TimeLedger())
        assert comm.allreduce_time(nbytes, "tree") == pytest.approx(
            2.0 * comm.allreduce_time(nbytes, "recursive-doubling"))

    @given(nbytes=st.integers(10**6, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_ring_wins_for_large_payloads(self, machine, nbytes):
        comm = SimComm(machine, list(range(0, 16, 2)), TimeLedger())
        assert (comm.allreduce_time(nbytes, "ring")
                <= comm.allreduce_time(nbytes, "recursive-doubling"))

    @given(nbytes=st.integers(1, 10**7))
    @settings(max_examples=30, deadline=None)
    def test_locality_ordering(self, machine, nbytes):
        """same node <= same supernode <= across supernodes."""
        onnode = SimComm(machine, [0, 1], TimeLedger())
        insuper = SimComm(machine, [0, 2], TimeLedger())
        across = SimComm(machine, [0, 15], TimeLedger())
        assert (onnode.allreduce_time(nbytes)
                <= insuper.allreduce_time(nbytes)
                <= across.allreduce_time(nbytes))


class TestTopologyProperties:
    @given(nbytes=st.integers(1, 10**8), a=st.integers(0, 9),
           b=st.integers(0, 9))
    @settings(max_examples=50, deadline=None)
    def test_p2p_symmetry(self, nbytes, a, b):
        topo = FatTreeTopology(10, NetworkSpec(nodes_per_supernode=4))
        assert topo.point_to_point_time(a, b, nbytes) == pytest.approx(
            topo.point_to_point_time(b, a, nbytes))

    @given(nbytes=st.integers(0, 10**8), node=st.integers(0, 9))
    @settings(max_examples=30, deadline=None)
    def test_self_message_free(self, nbytes, node):
        topo = FatTreeTopology(10, NetworkSpec(nodes_per_supernode=4))
        assert topo.point_to_point_time(node, node, nbytes) == 0.0


class TestComputeProperties:
    @given(flops=st.floats(0, 1e12), cpes=st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_linear_in_flops(self, flops, cpes):
        model = ComputeModel(CGSpec(), TimeLedger())
        t1 = model.time_for_flops(flops, n_cpes=cpes)
        t2 = model.time_for_flops(2 * flops, n_cpes=cpes)
        assert t2 == pytest.approx(2 * t1, abs=1e-18)

    @given(flops=st.floats(1, 1e12), c1=st.integers(1, 64),
           c2=st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_more_cpes_never_slower(self, flops, c1, c2):
        model = ComputeModel(CGSpec(), TimeLedger())
        lo, hi = min(c1, c2), max(c1, c2)
        assert (model.time_for_flops(flops, n_cpes=hi)
                <= model.time_for_flops(flops, n_cpes=lo))
