"""Process-engine contract: parity, supervision, respawn, quarantine.

The crash-tolerance story only counts if the numbers stay exact: every
test here that kills, wedges, or poisons workers also asserts the results
are bit-identical to the fault-free serial engine.  Worker chaos kinds
fire *inside* the forked workers (the parent only observes the deaths),
so the parent-side numerics never see a difference.
"""

import numpy as np
import pytest

from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.errors import ConfigurationError
from repro.runtime.chaos import ChaosInjector, parse_chaos_plan
from repro.runtime.engine import (
    ENGINE_ENV,
    WORKERS_ENV,
    SerialEngine,
    TaskPolicy,
    resolve_engine,
    shutdown_pools,
)
from repro.runtime.process_engine import ProcessEngine
from repro.runtime.shm import ArrayRef, as_ndarray


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_pools()


# Module-level task bodies: the process engine requires picklable
# callables (reprolint E404), which is itself under test below.

def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _sum_ref(args):
    ref, lo, hi = args
    return float(as_ndarray(ref)[lo:hi].sum())


def _events(engine, kind):
    return [e for e in engine.drain_events() if e[0] == kind]


# ---------------------------------------------------------------------------
# map semantics
# ---------------------------------------------------------------------------

class TestMapSemantics:
    def test_submission_order_preserved(self):
        engine = ProcessEngine(workers=2)
        assert engine.map(_square, range(16)) == [i * i for i in range(16)]

    def test_empty_and_singleton_run_inline(self):
        engine = ProcessEngine(workers=2)
        assert engine.map(_square, []) == []
        assert engine.map(_square, [3]) == [9]

    def test_workers_one_runs_inline(self):
        engine = ProcessEngine(workers=1)
        assert engine.map(_square, range(5)) == [i * i for i in range(5)]

    def test_worker_exceptions_propagate_after_retries(self):
        engine = ProcessEngine(
            workers=2, policy=TaskPolicy(max_retries=1, backoff_s=0.0))
        with pytest.raises(ValueError, match="boom"):
            engine.map(_boom, range(4))

    def test_lambda_rejected_with_e404_pointer(self):
        engine = ProcessEngine(workers=2)
        with pytest.raises(ConfigurationError, match="E404"):
            engine.map(lambda x: x, range(4))

    def test_nested_def_rejected(self):
        engine = ProcessEngine(workers=2)

        def local(x):
            return x

        with pytest.raises(ConfigurationError, match="module-level"):
            engine.map(local, range(4))


# ---------------------------------------------------------------------------
# shared-memory operand publishing
# ---------------------------------------------------------------------------

class TestShare:
    def test_share_returns_resolvable_ref(self):
        engine = ProcessEngine(workers=2)
        X = np.arange(24, dtype=np.float64).reshape(6, 4)
        ref = engine.share("X", X)
        assert isinstance(ref, ArrayRef)
        np.testing.assert_array_equal(as_ndarray(ref), X)

    def test_share_passthrough_when_inline(self):
        engine = ProcessEngine(workers=1)
        X = np.ones(4)
        assert engine.share("X", X) is X

    def test_workers_read_shared_segment(self):
        engine = ProcessEngine(workers=2)
        X = np.arange(100, dtype=np.float64)
        ref = engine.share("X", X)
        got = engine.map(_sum_ref, [(ref, i * 25, (i + 1) * 25)
                                    for i in range(4)])
        want = [float(X[i * 25:(i + 1) * 25].sum()) for i in range(4)]
        assert got == want

    def test_republish_rewrites_in_place(self):
        engine = ProcessEngine(workers=2)
        a = np.arange(10, dtype=np.float64)
        ref_a = engine.share("C", a)
        ref_b = engine.share("C", a * 2)
        assert ref_a.name == ref_b.name  # same segment, rewritten
        np.testing.assert_array_equal(as_ndarray(ref_b), a * 2)


# ---------------------------------------------------------------------------
# numerical parity with the serial engine
# ---------------------------------------------------------------------------

def _run_lloyd(engine, chunk_elements=512):
    X, _ = gaussian_blobs(n=400, k=3, d=4, seed=5)
    rng = np.random.default_rng(2)
    C0 = X[rng.choice(400, 3, replace=False)].copy()
    return lloyd(X, C0, max_iter=6, engine=engine,
                 chunk_elements=chunk_elements)


def _assert_bit_identical(a, b):
    np.testing.assert_array_equal(a.centroids, b.centroids)
    np.testing.assert_array_equal(a.assignments, b.assignments)
    assert a.inertia == b.inertia
    assert [s.inertia for s in a.history] == [s.inertia for s in b.history]


def test_lloyd_process_parity():
    serial = _run_lloyd(SerialEngine())
    process = _run_lloyd(ProcessEngine(workers=2))
    _assert_bit_identical(serial, process)


# ---------------------------------------------------------------------------
# worker chaos: kill, hang, poison
# ---------------------------------------------------------------------------

class TestWorkerChaos:
    def test_worker_kill_bit_identical(self):
        # Probabilistic kills across many tasks: every death is one failed
        # attempt, the re-run (attempt >= kills) is clean, and the merge
        # order is canonical — so the numbers cannot move.
        plan = parse_chaos_plan("worker_kill:p=0.4;seed=11")
        engine = ProcessEngine(workers=2, chaos=ChaosInjector(plan))
        serial = _run_lloyd(SerialEngine(), chunk_elements=64)
        chaotic = _run_lloyd(engine, chunk_elements=64)
        _assert_bit_identical(serial, chaotic)
        # lloyd's supervisor absorbs the engine's events into the result.
        lost = [e for e in chaotic.host_events if e.kind == "worker_lost"]
        assert lost, "expected at least one injected worker death"

    def test_worker_kill_records_respawn(self):
        plan = parse_chaos_plan("worker_kill@1;seed=7")
        engine = ProcessEngine(workers=2, chaos=ChaosInjector(plan))
        assert engine.map(_square, range(6)) == [i * i for i in range(6)]
        events = engine.drain_events()
        kinds = [k for k, _, _ in events]
        assert "worker_lost" in kinds
        assert "worker_respawn" in kinds

    def test_worker_hang_detected_and_killed(self):
        plan = parse_chaos_plan("worker_hang@2;seed=3")
        engine = ProcessEngine(workers=2, chaos=ChaosInjector(plan),
                               heartbeat_s=0.5)
        assert engine.map(_square, range(6)) == [i * i for i in range(6)]
        kinds = [k for k, _, _ in engine.drain_events()]
        assert "worker_hung" in kinds
        assert "worker_respawn" in kinds

    def test_poison_task_quarantined_inline(self):
        # One task kills every worker that touches it (kills=5 exceeds the
        # quarantine threshold); the engine must quarantine it to the
        # inline serial path and still return exact results.
        plan = parse_chaos_plan("worker_kill@2:kills=5;seed=1")
        engine = ProcessEngine(
            workers=2, chaos=ChaosInjector(plan),
            policy=TaskPolicy(backoff_s=0.0, quarantine_after=3))
        assert engine.map(_square, range(6)) == [i * i for i in range(6)]
        kinds = [k for k, _, _ in engine.drain_events()]
        assert "poison_quarantine" in kinds

    def test_worker_chaos_inert_on_serial_engine(self):
        # The worker kinds only fire inside process-engine workers; a
        # serial engine given the same plan must run untouched.
        plan = parse_chaos_plan("worker_kill:p=1.0;seed=5")
        engine = SerialEngine(chaos=ChaosInjector(plan))
        assert engine.map(_square, range(4)) == [i * i for i in range(4)]
        assert not engine.drain_events()


# ---------------------------------------------------------------------------
# resolve_engine: graceful degradation
# ---------------------------------------------------------------------------

class TestResolveProcess:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        monkeypatch.delenv(WORKERS_ENV, raising=False)

    def test_name_resolves_to_process_engine(self):
        engine = resolve_engine("process", workers=2)
        assert isinstance(engine, ProcessEngine)
        assert engine.workers == 2

    def test_env_selects_process(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "process")
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert isinstance(resolve_engine(), ProcessEngine)

    def test_no_fork_degrades_to_serial_with_event(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.host._fork_available",
                            lambda: False)
        engine = resolve_engine("process", workers=2)
        assert isinstance(engine, SerialEngine)
        assert _events(engine, "engine_fallback")

    def test_env_process_without_fork_never_crashes(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "process")
        monkeypatch.setattr("repro.runtime.host._fork_available",
                            lambda: False)
        engine = resolve_engine()
        assert isinstance(engine, SerialEngine)
        assert engine.map(_square, range(4)) == [i * i for i in range(4)]

    def test_single_cpu_degrades_to_serial_with_event(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        engine = resolve_engine("process")
        assert isinstance(engine, SerialEngine)
        assert _events(engine, "engine_fallback")

    def test_explicit_single_worker_degrades(self):
        engine = resolve_engine("process", workers=1)
        assert isinstance(engine, SerialEngine)
        assert _events(engine, "engine_fallback")

    def test_constructor_rejects_missing_fork(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.process_engine._fork_available",
                            lambda: False)
        with pytest.raises(ConfigurationError, match="fork"):
            ProcessEngine(workers=2)
