"""Tests for the fault-injection subsystem (specs, plans, injector)."""

import json

import numpy as np
import pytest

from repro.errors import (
    CGFailedError,
    CollectiveTimeoutError,
    ConfigurationError,
    FaultError,
    ReproError,
    TransientDMAError,
)
from repro.machine.machine import toy_machine
from repro.machine.specs import toy_spec
from repro.runtime.dma import DMAEngine
from repro.runtime.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
    resolve_fault_plan,
)
from repro.runtime.ledger import TimeLedger
from repro.runtime.mpi import SimComm
from repro.runtime.regcomm import RegisterComm


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec("disk_on_fire", iteration=1)

    def test_iteration_must_be_positive(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            FaultSpec("transient_dma", iteration=0)

    def test_cg_failure_needs_iteration(self):
        with pytest.raises(ConfigurationError, match="iteration"):
            FaultSpec("cg_failure")

    def test_cg_failure_defaults_cg_zero(self):
        assert FaultSpec("cg_failure", iteration=2).cg_index == 0

    def test_stochastic_transient_needs_probability(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultSpec("transient_dma")

    def test_probability_range_checked(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("transient_dma", probability=1.5)

    def test_bandwidth_factor_range(self):
        with pytest.raises(ConfigurationError, match="bandwidth_factor"):
            FaultSpec("degraded_link", iteration=1, bandwidth_factor=0.0)

    def test_degraded_link_window(self):
        spec = FaultSpec("degraded_link", iteration=2, bandwidth_factor=0.5,
                         duration=3)
        assert not spec.active_at(1)
        assert spec.active_at(2)
        assert spec.active_at(4)
        assert not spec.active_at(5)

    def test_degraded_link_open_ended(self):
        spec = FaultSpec("degraded_link", iteration=3, bandwidth_factor=0.5)
        assert spec.active_at(1000)

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind, iteration=1)


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan([FaultSpec("transient_dma", iteration=1)])

    def test_rejects_non_spec(self):
        with pytest.raises(ConfigurationError, match="FaultSpec"):
            FaultPlan(["cg_failure"])

    def test_json_roundtrip(self):
        plan = FaultPlan([
            FaultSpec("cg_failure", iteration=3, cg_index=1),
            FaultSpec("transient_dma", probability=0.25),
            FaultSpec("degraded_link", iteration=2, bandwidth_factor=0.5,
                      duration=2),
        ], seed=42)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            FaultPlan.from_json("not json")
        with pytest.raises(ConfigurationError, match="invalid fault spec"):
            FaultPlan.from_json(json.dumps({"faults": [{"bogus": 1}]}))


class TestParseFaultPlan:
    def test_compact_grammar(self):
        plan = parse_fault_plan(
            "cg_failure@3:cg=1; transient_dma:p=0.01; "
            "degraded_link@2:factor=0.5,duration=3; seed=9"
        )
        assert plan.seed == 9
        kinds = [s.kind for s in plan.specs]
        assert kinds == ["cg_failure", "transient_dma", "degraded_link"]
        assert plan.specs[0].cg_index == 1
        assert plan.specs[1].probability == pytest.approx(0.01)
        assert plan.specs[2].bandwidth_factor == pytest.approx(0.5)
        assert plan.specs[2].duration == 3

    def test_bad_option_rejected(self):
        with pytest.raises(ConfigurationError, match="bad fault option"):
            parse_fault_plan("transient_dma:wat=1")

    def test_bad_iteration_rejected(self):
        with pytest.raises(ConfigurationError, match="bad fault iteration"):
            parse_fault_plan("cg_failure@soon")

    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigurationError, match="no events"):
            parse_fault_plan("  ;  ")

    def test_file_reference(self, tmp_path):
        plan = FaultPlan([FaultSpec("collective_timeout", iteration=2)],
                         seed=5)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert parse_fault_plan(f"@{path}") == plan

    def test_missing_file_is_repro_error(self):
        with pytest.raises(ReproError, match="cannot read"):
            parse_fault_plan("@/nonexistent/plan.json")

    def test_resolve_accepts_plan_string_none(self):
        plan = FaultPlan([FaultSpec("transient_dma", iteration=1)])
        assert resolve_fault_plan(plan) is plan
        assert resolve_fault_plan(None) is None
        assert resolve_fault_plan("transient_dma@1").specs[0].iteration == 1
        with pytest.raises(ConfigurationError):
            resolve_fault_plan(123)


@pytest.fixture
def cg_spec():
    return toy_spec(1, 2, 2, 8 * 1024).processor.cg


class TestInjectorHooks:
    def test_setup_epoch_is_protected(self, cg_spec):
        plan = FaultPlan([FaultSpec("transient_dma", probability=1.0)])
        inj = FaultInjector(plan)
        inj.on_dma("setup.load", 1024)  # iteration 0: must not raise
        inj.begin_iteration(1)
        with pytest.raises(TransientDMAError):
            inj.on_dma("assign.stream", 1024)

    def test_scheduled_transient_fires_once(self):
        plan = FaultPlan([FaultSpec("transient_dma", iteration=2)])
        inj = FaultInjector(plan)
        inj.begin_iteration(1)
        inj.on_dma("x", 8)
        inj.begin_iteration(2)
        with pytest.raises(TransientDMAError) as exc_info:
            inj.on_dma("x", 8)
        assert exc_info.value.iteration == 2
        inj.on_dma("x", 8)  # one-shot: second op sails through
        assert len(inj.events) == 1

    def test_cg_failure_fires_at_iteration_boundary(self):
        plan = FaultPlan([FaultSpec("cg_failure", iteration=3, cg_index=1)])
        inj = FaultInjector(plan)
        inj.begin_iteration(1)
        inj.begin_iteration(2)
        with pytest.raises(CGFailedError) as exc_info:
            inj.begin_iteration(3)
        assert exc_info.value.cg_index == 1
        assert not exc_info.value.transient
        # the raised error carries its event record
        assert exc_info.value.event is inj.events[-1]
        inj.begin_iteration(4)  # permanent but one-shot raise

    def test_collective_timeout_is_transient(self):
        plan = FaultPlan([FaultSpec("collective_timeout", iteration=1)])
        inj = FaultInjector(plan)
        inj.begin_iteration(1)
        with pytest.raises(CollectiveTimeoutError) as exc_info:
            inj.on_collective("mpi.allreduce", 64)
        assert exc_info.value.transient
        assert isinstance(exc_info.value, FaultError)

    def test_probabilistic_draws_are_seeded(self):
        plan = FaultPlan([FaultSpec("transient_dma", probability=0.3)],
                         seed=123)

        def trace(plan):
            inj = FaultInjector(plan)
            inj.begin_iteration(1)
            fired = []
            for op in range(50):
                try:
                    inj.on_dma(f"op{op}", 8)
                except TransientDMAError:
                    fired.append(op)
            return fired

        a, b = trace(plan), trace(plan)
        assert a == b and len(a) > 0

    def test_link_bandwidth_factor_composes(self):
        plan = FaultPlan([
            FaultSpec("degraded_link", iteration=1, bandwidth_factor=0.5),
            FaultSpec("degraded_link", iteration=2, bandwidth_factor=0.5,
                      duration=1),
        ])
        inj = FaultInjector(plan)
        inj.begin_iteration(1)
        assert inj.link_bandwidth_factor() == pytest.approx(0.5)
        inj.begin_iteration(2)
        assert inj.link_bandwidth_factor() == pytest.approx(0.25)
        inj.begin_iteration(3)
        assert inj.link_bandwidth_factor() == pytest.approx(0.5)

    def test_degraded_link_records_applied_event(self):
        plan = FaultPlan([FaultSpec("degraded_link", iteration=2,
                                    bandwidth_factor=0.5)])
        inj = FaultInjector(plan)
        inj.begin_iteration(1)
        assert inj.events == []
        inj.begin_iteration(2)
        assert [e.action for e in inj.events] == ["applied"]
        inj.begin_iteration(3)  # announced once, not per iteration
        assert len(inj.events) == 1


class TestTransportIntegration:
    def test_dma_engine_hook(self, cg_spec):
        plan = FaultPlan([FaultSpec("transient_dma", iteration=1)])
        inj = FaultInjector(plan)
        engine = DMAEngine(cg_spec, TimeLedger(), injector=inj)
        inj.begin_iteration(1)
        with pytest.raises(TransientDMAError):
            engine.read(1024, label="stream")

    def test_regcomm_hook(self, cg_spec):
        plan = FaultPlan([FaultSpec("collective_timeout", iteration=1)])
        inj = FaultInjector(plan)
        comm = RegisterComm(cg_spec, TimeLedger(), injector=inj)
        inj.begin_iteration(1)
        with pytest.raises(CollectiveTimeoutError):
            comm.allreduce_time(256)

    def test_simcomm_hook_fires_once_per_collective(self):
        machine = toy_machine(n_nodes=2)
        plan = FaultPlan([FaultSpec("collective_timeout", probability=1.0)])
        inj = FaultInjector(plan)
        comm = SimComm(machine, range(machine.n_cgs), TimeLedger(),
                       injector=inj)
        inj.begin_iteration(1)
        with pytest.raises(CollectiveTimeoutError):
            comm.allreduce_sum([np.ones(4) for _ in range(comm.size)])
        # One op, one event: the data-carrying wrapper and the cost
        # function do not double-fire.
        assert len(inj.events) == 1

    def test_simcomm_split_propagates_injector(self):
        machine = toy_machine(n_nodes=2)
        inj = FaultInjector(FaultPlan([FaultSpec("transient_dma",
                                                 iteration=1)]))
        comm = SimComm(machine, range(4), TimeLedger(), injector=inj)
        for sub in comm.split([[0, 1], [2, 3]]):
            assert sub.injector is inj

    def test_degraded_link_slows_collectives(self):
        machine = toy_machine(n_nodes=2)
        ledger = TimeLedger()
        plan = FaultPlan([FaultSpec("degraded_link", iteration=1,
                                    bandwidth_factor=0.5)])
        inj = FaultInjector(plan)
        healthy = SimComm(machine, range(4), ledger)
        faulty = SimComm(machine, range(4), ledger, injector=inj)
        t0 = healthy.allreduce_time(1 << 20)
        inj.begin_iteration(1)
        t1 = faulty.allreduce_time(1 << 20)
        assert t1 > t0

    def test_no_injector_means_no_overhead(self, cg_spec):
        ledger = TimeLedger()
        engine = DMAEngine(cg_spec, ledger)
        assert engine.injector is None
        engine.read(1024, label="x")  # no hook, no draws, just the charge
        assert len(ledger.records) == 1
