"""Tests for seeded host-chaos injection at the engine seam.

The harness property pinned here is the tentpole claim of the robustness
layer: under injected host faults a *supervised* run (bounded retries,
numerical guards, rollback recovery) finishes bit-identical to the
fault-free serial baseline, while an *unsupervised* run (retries disabled,
fail-fast) visibly fails.
"""

import numpy as np
import pytest

from repro.core.init import init_centroids
from repro.core.kmeans import HierarchicalKMeans
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.errors import ChaosError, ConfigurationError, NumericalFaultError
from repro.machine.machine import toy_machine
from repro.runtime.chaos import (
    CHAOS_ENV,
    ChaosInjector,
    ChaosPlan,
    ChaosSpec,
    _poison_first_array,
    parse_chaos_plan,
    resolve_chaos,
)
from repro.runtime.engine import SerialEngine, TaskPolicy, ThreadEngine


# ---------------------------------------------------------------------------
# specs + plan grammar
# ---------------------------------------------------------------------------

class TestChaosSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos kind"):
            ChaosSpec("meteor_strike", task_id=0)

    def test_stochastic_needs_probability(self):
        with pytest.raises(ConfigurationError, match="probability"):
            ChaosSpec("task_exception")

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec("task_exception", probability=1.5)

    def test_negative_task_id_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec("task_exception", task_id=-1)


class TestParseChaosPlan:
    def test_exact_and_stochastic(self):
        plan = parse_chaos_plan(
            "task_exception@7;slow_task:p=0.01,delay=0.2;seed=42")
        assert plan.seed == 42
        assert plan.specs[0] == ChaosSpec("task_exception", task_id=7)
        assert plan.specs[1] == ChaosSpec("slow_task", probability=0.01,
                                          delay=0.2)

    def test_bad_option_rejected(self):
        with pytest.raises(ConfigurationError, match="bad chaos option"):
            parse_chaos_plan("task_exception@1:color=red")

    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigurationError, match="no events"):
            parse_chaos_plan(";;")

    def test_json_round_trip(self, tmp_path):
        plan = parse_chaos_plan("nan_result@3;seed=9")
        path = tmp_path / "chaos.json"
        path.write_text(plan.to_json())
        assert parse_chaos_plan(f"@{path}") == plan

    def test_missing_file_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot read"):
            parse_chaos_plan("@/nonexistent/chaos.json")


class TestResolveChaos:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)

    def test_default_is_none(self):
        assert resolve_chaos() is None

    def test_injector_passthrough(self):
        inj = ChaosInjector(ChaosPlan([ChaosSpec("nan_result", task_id=0)]))
        assert resolve_chaos(inj) is inj

    def test_empty_plan_is_none(self):
        assert resolve_chaos(ChaosPlan()) is None

    def test_env_string(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "task_exception@2")
        inj = resolve_chaos()
        assert isinstance(inj, ChaosInjector)
        assert inj.plan.specs[0].task_id == 2

    @pytest.mark.parametrize("value", ["", "  "])
    def test_env_empty_is_unset(self, monkeypatch, value):
        monkeypatch.setenv(CHAOS_ENV, value)
        assert resolve_chaos() is None


# ---------------------------------------------------------------------------
# firing determinism + corruption mechanics
# ---------------------------------------------------------------------------

def test_stochastic_decisions_are_pure_functions_of_ids():
    plan = ChaosPlan([ChaosSpec("task_exception", probability=0.3)], seed=5)
    a = ChaosInjector(plan)
    b = ChaosInjector(plan)
    decisions_a = [a._fires(0, plan.specs[0], t) for t in range(200)]
    decisions_b = [b._fires(0, plan.specs[0], t) for t in range(200)]
    assert decisions_a == decisions_b
    assert any(decisions_a) and not all(decisions_a)


def test_poison_first_array_copies():
    sums = np.ones((3, 2))
    counts = np.ones(3, dtype=np.int64)
    poisoned = _poison_first_array((sums, counts))
    assert np.isnan(poisoned[0]).any()
    assert np.isfinite(sums).all()  # original untouched
    assert poisoned[1] is counts  # int array skipped, not copied


def test_chaos_only_fires_on_attempt_zero():
    plan = ChaosPlan([ChaosSpec("task_exception", task_id=0)])
    inj = ChaosInjector(plan)
    events = []
    with pytest.raises(ChaosError):
        inj.before_task(0, 0, lambda *a: events.append(a))
    # The retry (attempt 1) of the same task is clean.
    inj.before_task(0, 1, lambda *a: events.append(a))
    assert len(events) == 1


def test_slow_task_sleeps_via_injected_sleeper():
    naps = []
    plan = ChaosPlan([ChaosSpec("slow_task", task_id=1, delay=0.25)])
    inj = ChaosInjector(plan, sleeper=naps.append)
    inj.before_task(0, 0, lambda *a: None)
    inj.before_task(1, 0, lambda *a: None)
    assert naps == [0.25]


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------

def _square(i):
    return i * i


class TestEngineIntegration:
    def test_serial_engine_retries_through_exception(self):
        inj = ChaosInjector(
            ChaosPlan([ChaosSpec("task_exception", task_id=2)]))
        engine = SerialEngine(policy=TaskPolicy(max_retries=2, backoff_s=0.0),
                              chaos=inj)
        assert engine.map(_square, range(6)) == [i * i for i in range(6)]
        kinds = [k for k, _, _ in engine.drain_events()]
        assert "chaos" in kinds and "task_retry" in kinds

    def test_thread_engine_retries_through_exception(self):
        inj = ChaosInjector(
            ChaosPlan([ChaosSpec("task_exception", task_id=1)]))
        engine = ThreadEngine(2, policy=TaskPolicy(max_retries=2,
                                                   backoff_s=0.0),
                              chaos=inj)
        assert engine.map(_square, range(6)) == [i * i for i in range(6)]

    def test_unsupervised_engine_fails(self):
        inj = ChaosInjector(
            ChaosPlan([ChaosSpec("task_exception", task_id=0)]))
        engine = SerialEngine(policy=TaskPolicy(max_retries=0), chaos=inj)
        with pytest.raises(ChaosError):
            engine.map(_square, range(4))


# ---------------------------------------------------------------------------
# end-to-end: supervised bit-identical, unsupervised fails
# ---------------------------------------------------------------------------

# Overlapping blobs + small shards: the run takes ~5 iterations of ~5
# shard tasks each, so a p=0.2 stochastic chaos spec fires several times
# before convergence.
_CHUNK = 4096


@pytest.fixture(scope="module")
def workload():
    X, _ = gaussian_blobs(n=400, k=8, d=6, seed=3)
    C0 = init_centroids(X, 8, method="first")
    return X, C0


def test_lloyd_supervised_chaos_bit_identical(workload):
    X, C0 = workload
    clean = lloyd(X, C0, max_iter=30, chunk_elements=_CHUNK)
    chaotic_engine = SerialEngine(
        policy=TaskPolicy(max_retries=3, backoff_s=0.0),
        chaos=ChaosInjector(ChaosPlan([
            ChaosSpec("task_exception", probability=0.2),
        ], seed=7)),
    )
    survived = lloyd(X, C0, max_iter=30, chunk_elements=_CHUNK,
                     engine=chaotic_engine)
    np.testing.assert_array_equal(clean.centroids, survived.centroids)
    np.testing.assert_array_equal(clean.assignments, survived.assignments)
    assert survived.inertia == clean.inertia
    # The scars are visible in the host-event record, not in the numbers.
    assert any(e.kind == "chaos" for e in survived.host_events)
    assert any(e.kind == "task_retry" for e in survived.host_events)


def test_lloyd_unsupervised_chaos_fails(workload):
    X, C0 = workload
    engine = SerialEngine(
        policy=TaskPolicy(max_retries=0),
        chaos=ChaosInjector(ChaosPlan([
            ChaosSpec("task_exception", probability=0.2),
        ], seed=7)),
    )
    with pytest.raises(ChaosError):
        lloyd(X, C0, max_iter=30, chunk_elements=_CHUNK, engine=engine)


def test_lloyd_nan_chaos_caught_by_numerical_guard(workload):
    # Level 0 has no recovery loop: the guard must fail loudly instead of
    # letting the poisoned centroids converge to garbage.
    X, C0 = workload
    engine = SerialEngine(
        chaos=ChaosInjector(ChaosPlan([ChaosSpec("nan_result", task_id=0)])))
    with pytest.raises(NumericalFaultError, match="non-finite"):
        lloyd(X, C0, max_iter=30, chunk_elements=_CHUNK, engine=engine)


def _fit_level1(engine=None, **kwargs):
    X, _ = gaussian_blobs(n=300, k=3, d=5, seed=4)
    model = HierarchicalKMeans(
        3, machine=toy_machine(n_nodes=2), level=1, seed=11, max_iter=60,
        engine=engine, **kwargs)
    return model.fit(X)


def test_executor_nan_chaos_rolled_back_bit_identical():
    clean = _fit_level1()
    engine = SerialEngine(
        chaos=ChaosInjector(ChaosPlan([ChaosSpec("nan_result", task_id=2)])))
    survived = _fit_level1(engine=engine, recovery="replan",
                           checkpoint_every=1)
    # The poisoned partial cost one rollback; the deterministic trajectory
    # then re-walks the same path to the identical fixed point.
    assert any(e.kind == "rollback" for e in survived.host_events)
    np.testing.assert_array_equal(clean.centroids, survived.centroids)
    np.testing.assert_array_equal(clean.assignments, survived.assignments)


def test_executor_nan_chaos_fail_fast_fails():
    engine = SerialEngine(
        chaos=ChaosInjector(ChaosPlan([ChaosSpec("nan_result", task_id=2)])))
    with pytest.raises(NumericalFaultError):
        _fit_level1(engine=engine)  # default fail_fast recovery
