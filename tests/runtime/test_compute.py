"""Tests for the CPE compute-cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.specs import CGSpec
from repro.runtime.compute import (
    ComputeModel,
    DEFAULT_EFFICIENCY,
    distance_flops,
    update_flops,
)
from repro.runtime.ledger import TimeLedger


@pytest.fixture
def model():
    return ComputeModel(CGSpec(), TimeLedger())


class TestFlopCounts:
    def test_distance_flops(self):
        # sub + mul + add per (sample, centroid, dim).
        assert distance_flops(10, 4, 8) == 3 * 10 * 4 * 8

    def test_update_flops(self):
        assert update_flops(100, 8, 4) == 100 * 8 + 4 * 8


class TestTimeModel:
    def test_time_scales_inversely_with_cpes(self, model):
        one = model.time_for_flops(1e9, n_cpes=1)
        mesh = model.time_for_flops(1e9, n_cpes=64)
        assert mesh == pytest.approx(one / 64)

    def test_default_uses_all_cpes(self, model):
        assert model.time_for_flops(1e9) == pytest.approx(
            model.time_for_flops(1e9, n_cpes=64))

    def test_efficiency_derates_peak(self):
        cg = CGSpec()
        eff = ComputeModel(cg, TimeLedger(), efficiency=0.5)
        t = eff.time_for_flops(cg.cpe.peak_flops, n_cpes=1)
        assert t == pytest.approx(2.0)

    def test_default_efficiency_sane(self):
        assert 0.0 < DEFAULT_EFFICIENCY < 1.0

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputeModel(CGSpec(), TimeLedger(), efficiency=0.0)
        with pytest.raises(ConfigurationError):
            ComputeModel(CGSpec(), TimeLedger(), efficiency=1.5)

    def test_negative_flops_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.time_for_flops(-1.0)

    def test_cpe_count_bounds(self, model):
        with pytest.raises(ConfigurationError):
            model.time_for_flops(1.0, n_cpes=0)
        with pytest.raises(ConfigurationError):
            model.time_for_flops(1.0, n_cpes=65)

    def test_charge_records_compute_category(self, model):
        t = model.charge(1e6, "distances")
        assert model.ledger.total() == pytest.approx(t)
        (record,) = model.ledger.records
        assert record.category == "compute"
