"""Documentation integrity: the docs describe this repo, not a wished one.

* every file path a doc references exists,
* the README quickstart snippet actually runs,
* the documented CLI invocations parse,
* the headline numbers quoted in EXPERIMENTS.md match the live model.
"""

import os
import re
import subprocess
import sys

import pytest

REPO = os.path.join(os.path.dirname(__file__), "..")
DOCS = ["README.md", "DESIGN.md", "EXPERIMENTS.md",
        "docs/architecture.md", "docs/api.md", "docs/usage.md",
        "docs/performance_model.md", "docs/invariants.md"]


@pytest.mark.parametrize("doc", DOCS)
def test_doc_exists_and_is_substantial(doc):
    path = os.path.join(REPO, doc)
    assert os.path.exists(path), doc
    assert len(open(path, encoding="utf-8").read()) > 500


@pytest.mark.parametrize("doc", DOCS)
def test_referenced_repo_paths_exist(doc):
    """Backtick-quoted paths that look like repo files must exist."""
    text = open(os.path.join(REPO, doc), encoding="utf-8").read()
    candidates = re.findall(r"`([\w./-]+\.(?:py|md|toml))`", text)
    missing = []
    for rel in candidates:
        # Only check paths that name a repo location explicitly.  Docs may
        # abbreviate package paths relative to src/ or src/repro/.
        if "/" not in rel:
            continue
        roots = (REPO, os.path.join(REPO, "src"),
                 os.path.join(REPO, "src", "repro"))
        if not any(os.path.exists(os.path.join(r, rel)) for r in roots):
            missing.append(rel)
    assert not missing, f"{doc} references missing files: {missing}"


def test_readme_quickstart_runs():
    """Execute the first python code block of the README."""
    text = open(os.path.join(REPO, "README.md"), encoding="utf-8").read()
    match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
    assert match, "README must contain a python quickstart block"
    code = match.group(1)
    code = code.replace("n=10_000", "n=1_000")  # keep the test quick
    proc = subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]


def test_documented_cli_invocations_parse():
    from repro.cli import build_parser
    parser = build_parser()
    for argv in [
        ["list"],
        ["experiment", "figure7"],
        ["predict", "--level", "3", "-n", "1265723", "-k", "2000",
         "-d", "196608", "--nodes", "4096"],
        ["cluster", "--n", "5000", "--k", "16", "--d", "32"],
        ["machine", "--nodes", "4096"],
        ["calibrate", "--nodes", "2"],
    ]:
        parser.parse_args(argv)  # must not SystemExit


class TestQuotedNumbersMatchTheModel:
    def test_headline_seconds(self):
        """EXPERIMENTS.md quotes 5.66 s for the headline; hold it to that
        (two decimal places) so doc and model cannot drift silently."""
        from repro.machine.specs import sunway_spec
        from repro.perfmodel import PerformanceModel
        pred = PerformanceModel(sunway_spec(4096)).predict(
            3, 1_265_723, 2000, 196_608)
        text = open(os.path.join(REPO, "EXPERIMENTS.md"),
                    encoding="utf-8").read()
        assert f"{pred.total:.2f} s/iter" in text

    def test_level2_wall_is_documented_where_it_happens(self):
        from repro.machine.specs import sunway_spec
        from repro.perfmodel import PerformanceModel
        model = PerformanceModel(sunway_spec(128))
        assert model.predict(2, 1_265_723, 2000, 4096).feasible
        assert not model.predict(2, 1_265_723, 2000, 4097).feasible
        text = open(os.path.join(REPO, "EXPERIMENTS.md"),
                    encoding="utf-8").read()
        assert "4,096" in text
