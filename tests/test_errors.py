"""Tests for the exception hierarchy and package surface."""

import pytest

import repro
from repro.errors import (
    CommunicatorError,
    ConfigurationError,
    DataShapeError,
    LDMOverflowError,
    PartitionError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, LDMOverflowError, PartitionError,
        CommunicatorError, DataShapeError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_one_except_clause_catches_everything(self):
        from repro.machine.ldm import LDMAllocator
        try:
            LDMAllocator(-1)
        except ReproError:
            pass
        else:  # pragma: no cover
            pytest.fail("ReproError not raised")

    def test_ldm_overflow_carries_numbers(self):
        e = LDMOverflowError(requested=100, available=10, capacity=64,
                             label="sums")
        assert e.requested == 100
        assert e.available == 10
        assert e.capacity == 64
        assert "sums" in str(e)


class TestPublicSurface:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points_importable(self):
        from repro import (
            HierarchicalKMeans,   # noqa: F401
            lloyd,                # noqa: F401
            sunway_machine,       # noqa: F401
        )
        from repro.baselines import elkan, hamerly, minibatch, yinyang  # noqa: F401
        from repro.core.metrics import purity  # noqa: F401
        from repro.perfmodel import PerformanceModel  # noqa: F401
        from repro.runtime.host import lloyd_parallel  # noqa: F401

    def test_subpackage_all_exports_resolve(self):
        import repro.core
        import repro.data
        import repro.machine
        import repro.perfmodel
        import repro.reporting
        import repro.runtime
        for module in (repro.core, repro.data, repro.machine,
                       repro.perfmodel, repro.reporting, repro.runtime):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
