"""Tests for the bound-based exact baselines (Hamerly, Yinyang).

The defining property: both produce *exactly* the Lloyd trajectory (same
assignments, same centroids) while provably skipping distance work.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import elkan, hamerly, minibatch, yinyang
from repro.core.init import init_centroids
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs, uniform_cloud
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def blobs():
    X, _ = gaussian_blobs(n=600, k=8, d=10, seed=23)
    C0 = init_centroids(X, 8, method="first")
    return X, C0


@pytest.fixture(scope="module")
def reference(blobs):
    X, C0 = blobs
    return lloyd(X, C0, max_iter=50)


@pytest.mark.parametrize("algorithm", [hamerly, yinyang, elkan])
class TestExactness:
    def test_matches_lloyd_assignments(self, algorithm, blobs, reference):
        X, C0 = blobs
        result, _ = algorithm(X, C0, max_iter=50)
        np.testing.assert_array_equal(result.assignments,
                                      reference.assignments)

    def test_matches_lloyd_centroids(self, algorithm, blobs, reference):
        X, C0 = blobs
        result, _ = algorithm(X, C0, max_iter=50)
        np.testing.assert_allclose(result.centroids, reference.centroids,
                                   rtol=1e-9, atol=1e-12)

    def test_same_convergence_point(self, algorithm, blobs, reference):
        X, C0 = blobs
        result, _ = algorithm(X, C0, max_iter=50)
        assert result.converged == reference.converged
        assert result.n_iter == reference.n_iter

    def test_per_iteration_inertia_matches(self, algorithm, blobs,
                                           reference):
        X, C0 = blobs
        result, _ = algorithm(X, C0, max_iter=50)
        ours = [s.inertia for s in result.history]
        refs = [s.inertia for s in reference.history]
        np.testing.assert_allclose(ours, refs, rtol=1e-9)

    def test_k_equals_one(self, algorithm):
        X = uniform_cloud(50, 3, seed=1)
        result, _ = algorithm(X, X[:1].copy(), max_iter=10)
        np.testing.assert_allclose(result.centroids[0], X.mean(axis=0))

    def test_validation(self, algorithm, blobs):
        X, C0 = blobs
        with pytest.raises(ConfigurationError):
            algorithm(X, C0, max_iter=0)
        with pytest.raises(ConfigurationError):
            algorithm(X, C0, tol=-1.0)


@pytest.mark.parametrize("algorithm", [hamerly, yinyang, elkan])
class TestWorkSavings:
    def test_skips_distance_work_on_clustered_data(self, algorithm, blobs):
        X, C0 = blobs
        _, stats = algorithm(X, C0, max_iter=50)
        assert stats.distances_computed < stats.distances_naive
        assert 0.0 < stats.fraction_skipped < 1.0

    def test_skip_counts_recorded_per_iteration(self, algorithm, blobs):
        X, C0 = blobs
        result, stats = algorithm(X, C0, max_iter=50)
        assert len(stats.skipped_per_iteration) == result.n_iter

    def test_late_iterations_skip_more_than_midrun(self, algorithm, blobs):
        """Iteration 1 skips everything (bounds exact from init), mid-run
        drift invalidates bounds, and the tail prunes nearly everything
        once clusters stabilise."""
        X, C0 = blobs
        result, stats = algorithm(X, C0, max_iter=50)
        if result.n_iter >= 4:
            mid_min = min(stats.skipped_per_iteration[1:-1])
            assert stats.skipped_per_iteration[-1] > mid_min
            # Elkan's counter only covers the *global* prune (its
            # per-centroid filters skip the rest), so the floor is lower.
            assert stats.skipped_per_iteration[-1] > 0.5 * X.shape[0]


class TestYinyangSpecifics:
    def test_explicit_group_count(self, blobs):
        X, C0 = blobs
        r1, _ = yinyang(X, C0, max_iter=30, n_groups=2)
        r2, _ = yinyang(X, C0, max_iter=30, n_groups=8)
        np.testing.assert_array_equal(r1.assignments, r2.assignments)

    def test_invalid_group_count(self, blobs):
        X, C0 = blobs
        with pytest.raises(ConfigurationError):
            yinyang(X, C0, n_groups=9)
        with pytest.raises(ConfigurationError):
            yinyang(X, C0, n_groups=0)


@given(
    n=st.integers(20, 120),
    k=st.integers(2, 10),
    d=st.integers(2, 8),
    seed=st.integers(0, 50),
)
@settings(max_examples=25, deadline=None)
def test_property_both_baselines_match_lloyd(n, k, d, seed):
    """Any workload: Hamerly and Yinyang trajectories equal Lloyd's."""
    if k > n:
        k = n
    X = uniform_cloud(n, d, seed=seed)
    C0 = init_centroids(X, k, method="first")
    ref = lloyd(X, C0, max_iter=20)
    for algorithm in (hamerly, yinyang, elkan):
        result, _ = algorithm(X, C0, max_iter=20)
        np.testing.assert_array_equal(result.assignments, ref.assignments,
                                      err_msg=algorithm.__name__)
        np.testing.assert_allclose(result.centroids, ref.centroids,
                                   rtol=1e-9, atol=1e-12,
                                   err_msg=algorithm.__name__)


class TestMinibatch:
    """Mini-batch is inexact: its contract is quality, not trajectory."""

    def test_reaches_near_lloyd_quality_on_blobs(self, blobs, reference):
        X, C0 = blobs
        result = minibatch(X, C0, batch_size=128, max_iter=400, seed=1)
        assert result.inertia <= 1.2 * reference.inertia

    def test_touches_only_batches(self, blobs):
        X, C0 = blobs
        result = minibatch(X, C0, batch_size=16, max_iter=5, tol=0.0,
                           seed=0)
        assert result.n_iter == 5

    def test_deterministic_per_seed(self, blobs):
        X, C0 = blobs
        a = minibatch(X, C0, batch_size=64, max_iter=50, seed=9)
        b = minibatch(X, C0, batch_size=64, max_iter=50, seed=9)
        np.testing.assert_array_equal(a.centroids, b.centroids)

    def test_final_assignments_consistent(self, blobs):
        from repro.core._common import assign_chunked
        X, C0 = blobs
        result = minibatch(X, C0, max_iter=100, seed=2)
        np.testing.assert_array_equal(
            result.assignments, assign_chunked(X, result.centroids))

    def test_validation(self, blobs):
        X, C0 = blobs
        with pytest.raises(ConfigurationError):
            minibatch(X, C0, batch_size=0)
        with pytest.raises(ConfigurationError):
            minibatch(X, C0, max_iter=0)
        with pytest.raises(ConfigurationError):
            minibatch(X, C0, tol=-0.1)

    def test_converges_by_shrinking_learning_rate(self, blobs):
        X, C0 = blobs
        result = minibatch(X, C0, batch_size=128, max_iter=2000, tol=1e-4,
                           seed=3)
        assert result.converged


class TestStreamingKMeans:
    """Divide-and-conquer streaming baseline: quality vs working set."""

    def test_quality_near_lloyd(self, blobs, reference):
        from repro.baselines import streaming_kmeans
        X, C0 = blobs
        result, _ = streaming_kmeans(X, 8, chunk_size=150, seed=2)
        assert result.inertia <= 1.3 * reference.inertia

    def test_working_set_bounded_by_chunk(self, blobs):
        from repro.baselines import streaming_kmeans
        X, _ = blobs
        result, stats = streaming_kmeans(X, 8, chunk_size=100, seed=2)
        assert stats.n_chunks == 6
        assert stats.peak_resident_samples < X.shape[0]
        assert result.assignments.shape == (X.shape[0],)

    def test_single_chunk_degenerates_to_two_phase(self, blobs):
        from repro.baselines import streaming_kmeans
        X, _ = blobs
        result, stats = streaming_kmeans(X, 8, chunk_size=X.shape[0],
                                         seed=2)
        assert stats.n_chunks == 1

    def test_deterministic(self, blobs):
        from repro.baselines import streaming_kmeans
        X, _ = blobs
        a, _ = streaming_kmeans(X, 8, chunk_size=150, seed=5)
        b, _ = streaming_kmeans(X, 8, chunk_size=150, seed=5)
        np.testing.assert_array_equal(a.centroids, b.centroids)

    def test_validation(self, blobs):
        from repro.baselines import streaming_kmeans
        X, _ = blobs
        with pytest.raises(ConfigurationError):
            streaming_kmeans(X, 8, chunk_size=4)  # chunk < k
        with pytest.raises(ConfigurationError):
            streaming_kmeans(X, 0)
        with pytest.raises(ConfigurationError):
            streaming_kmeans(X, 8, intermediate_factor=0)
