"""Tests for the experiment harness: every paper table/figure regenerates
with all of its qualitative shape checks passing."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.base import (
    monotone_nondecreasing,
    monotone_nonincreasing,
)


class TestRegistry:
    def test_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3",
            "figure1", "figure2",
            "figure3", "figure4", "figure5", "figure6", "figure7",
            "figure8", "figure9", "figure10",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("figure99")


@pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
class TestEveryExperiment:
    @pytest.fixture(scope="class")
    def outputs(self):
        # Run each experiment once per test class invocation, cached.
        return {}

    def _get(self, outputs, exp_id):
        if exp_id not in outputs:
            outputs[exp_id] = run_experiment(exp_id)
        return outputs[exp_id]

    def test_all_shape_checks_pass(self, outputs, exp_id):
        out = self._get(outputs, exp_id)
        failed = [n for n, ok in out.checks.items() if not ok]
        assert not failed, f"{exp_id}: {failed}"

    def test_renders_nonempty_text(self, outputs, exp_id):
        out = self._get(outputs, exp_id)
        assert len(out.text) > 50
        assert out.exp_id == exp_id

    def test_summary_line(self, outputs, exp_id):
        out = self._get(outputs, exp_id)
        assert exp_id in out.summary_line()


class TestSpecificClaims:
    def test_figure7_crossover_value_reported(self):
        out = run_experiment("figure7")
        assert "crossover" in out.text
        l2, l3 = out.series["Level 2"], out.series["Level 3"]
        cross = l3.crossover_with(l2)
        # Our calibration crosses between 512 and 2560 (paper: 2560).
        assert cross is not None and 512 < cross <= 2560

    def test_figure7_level2_dies_after_4096(self):
        out = run_experiment("figure7")
        l2 = out.series["Level 2"]
        for x, y in zip(l2.x, l2.y):
            assert math.isfinite(y) == (x <= 4096)

    def test_figure5_headline_under_18s(self):
        out = run_experiment("figure5")
        assert any("headline" in name and ok
                   for name, ok in out.checks.items())

    def test_table3_has_five_comparators(self):
        out = run_experiment("table3")
        assert len(out.rows) == 5


class TestShapeHelpers:
    def test_monotone_nondecreasing(self):
        assert monotone_nondecreasing([1, 2, 3])
        assert not monotone_nondecreasing([2, 1])
        assert monotone_nondecreasing([2.0, 1.9], slack=0.1)
        # Non-finite (infeasible) points are excluded from the comparison.
        assert monotone_nondecreasing([1, math.inf, 2])

    def test_monotone_nonincreasing(self):
        assert monotone_nonincreasing([3, 2, 1])
        assert not monotone_nonincreasing([1, 2])
        assert monotone_nonincreasing([1.0, 1.05], slack=0.1)
