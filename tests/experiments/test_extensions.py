"""Tests for the extension experiments (beyond the paper's figures)."""

import pytest

from repro.experiments import EXPERIMENTS, EXTRA_EXPERIMENTS, run_experiment


class TestRegistrySplit:
    def test_extras_not_in_paper_set(self):
        assert not set(EXTRA_EXPERIMENTS) & set(EXPERIMENTS)

    def test_extras_present(self):
        assert set(EXTRA_EXPERIMENTS) == {
            "extra_weak_scaling", "extra_breakdown", "extra_validation",
            "extra_bounded", "extra_dimreduction", "extra_flexibility",
        }

    def test_run_experiment_resolves_extras(self):
        out = run_experiment("extra_breakdown")
        assert out.exp_id == "extra_breakdown"


@pytest.mark.parametrize("exp_id", sorted(EXTRA_EXPERIMENTS))
def test_extension_checks_pass(exp_id):
    out = run_experiment(exp_id)
    failed = [n for n, ok in out.checks.items() if not ok]
    assert not failed, f"{exp_id}: {failed}"
    assert len(out.text) > 50


class TestWeakScalingClaims:
    def test_series_is_flat_ish(self):
        out = run_experiment("extra_weak_scaling")
        (series,) = out.series.values()
        ys = [y for _, y in series.finite()]
        assert max(ys) <= 2.0 * min(ys)


class TestBreakdownClaims:
    def test_mechanism_is_visible(self):
        out = run_experiment("extra_breakdown")
        assert "restream" in out.text
        assert "minloc" in out.text


class TestScorecard:
    @pytest.fixture(scope="class")
    def card(self):
        from repro.experiments import build_scorecard
        return build_scorecard()

    def test_every_registered_experiment_included(self, card):
        assert card.n_experiments == len(EXPERIMENTS) + len(EXTRA_EXPERIMENTS)

    def test_all_checks_pass(self, card):
        assert card.all_pass, card.failures()

    def test_render_contains_headline_and_counts(self, card):
        text = card.render()
        assert "Reproduction scorecard" in text
        assert f"{card.n_checks_passed}/{card.n_checks}" in text
        assert "headline" in text

    def test_paper_only_mode(self):
        from repro.experiments import build_scorecard
        card = build_scorecard(include_extras=False)
        assert card.n_experiments == len(EXPERIMENTS)
