"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure7" in out and "table3" in out
        assert "extra_bounded" in out and "(extension)" in out
        # 13 paper experiments + 6 extensions
        assert len(out.strip().splitlines()) == 19


class TestPredict:
    def test_headline_prediction(self, capsys):
        code = main(["predict", "--level", "3", "-n", "1265723",
                     "-k", "2000", "-d", "196608", "--nodes", "4096"])
        assert code == 0
        out = capsys.readouterr().out
        assert "level 3 on 4096 nodes" in out
        assert "per iteration" in out

    def test_infeasible_prediction_nonzero_exit(self, capsys):
        code = main(["predict", "--level", "2", "-n", "1000",
                     "-k", "10", "-d", "100000", "--nodes", "4"])
        assert code == 1
        assert "infeasible" in capsys.readouterr().out

    def test_rejects_bad_level(self):
        with pytest.raises(SystemExit):
            main(["predict", "--level", "5", "-n", "1", "-k", "1", "-d", "1"])


class TestCluster:
    def test_cluster_toy(self, capsys):
        code = main(["cluster", "--n", "500", "--k", "5", "--d", "8",
                     "--toy", "--nodes", "2", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "k-means: n=500 k=5 d=8" in out

    def test_cluster_save_and_summary(self, tmp_path, capsys):
        path = str(tmp_path / "out.npz")
        code = main(["cluster", "--n", "300", "--k", "4", "--d", "6",
                     "--toy", "--save", path])
        assert code == 0
        assert "saved to" in capsys.readouterr().out
        from repro.io import load_result
        assert load_result(path).k == 4

    def test_forced_serial_level(self, capsys):
        code = main(["cluster", "--n", "200", "--k", "3", "--d", "4",
                     "--level", "0"])
        assert code == 0
        assert "level 0" in capsys.readouterr().out

    def test_error_paths_return_2(self, capsys):
        # k > n is a configuration error surfaced as exit code 2.
        code = main(["cluster", "--n", "5", "--k", "50", "--d", "4",
                     "--toy"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestClusterFaults:
    def test_retry_run_reports_fault_events(self, capsys):
        code = main(["cluster", "--n", "200", "--k", "4", "--d", "4",
                     "--toy", "--level", "1", "--seed", "3",
                     "--max-iter", "20", "--faults", "transient_dma@2",
                     "--recovery", "retry", "--checkpoint-every", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault: transient_dma" in out
        assert "-> retried" in out

    def test_replan_run_reports_fault_events(self, capsys):
        code = main(["cluster", "--n", "200", "--k", "4", "--d", "4",
                     "--toy", "--nodes", "2", "--level", "3", "--seed", "3",
                     "--max-iter", "40", "--faults", "cg_failure@2:cg=1",
                     "--recovery", "replan", "--checkpoint-every", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault: cg_failure CG 1" in out
        assert "-> replanned" in out

    def test_unrecovered_fault_is_exit_2(self, capsys):
        code = main(["cluster", "--n", "200", "--k", "4", "--d", "4",
                     "--toy", "--level", "1", "--max-iter", "20",
                     "--faults", "transient_dma@2"])  # default fail_fast
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_fault_spec_is_exit_2(self, capsys):
        code = main(["cluster", "--n", "200", "--k", "4", "--d", "4",
                     "--toy", "--faults", "meteor_strike@1"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestClusterRobustness:
    def test_deadline_exceeded_is_exit_3(self, capsys):
        # A sub-microsecond budget trips on the first iteration.  Exit 3
        # is pinned as distinct from the configuration-error exit 2 so
        # schedulers can tell "ran out of wall clock" apart.
        code = main(["cluster", "--n", "500", "--k", "5", "--d", "8",
                     "--toy", "--level", "1", "--deadline", "1e-9"])
        assert code == 3
        assert "deadline exceeded" in capsys.readouterr().err

    def test_resume_without_checkpoint_dir_is_exit_2(self, capsys):
        code = main(["cluster", "--n", "200", "--k", "3", "--d", "4",
                     "--toy", "--resume"])
        assert code == 2
        assert "checkpoint_dir" in capsys.readouterr().err

    def test_checkpoint_dir_then_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        base = ["cluster", "--n", "300", "--k", "4", "--d", "6", "--toy",
                "--level", "1", "--seed", "5", "--checkpoint-every", "1",
                "--checkpoint-dir", str(ckpt)]
        assert main(base) == 0
        assert (ckpt / "checkpoint.npz").exists()
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "host:" in out and "resume" in out

    def test_empty_action_flag(self, capsys):
        code = main(["cluster", "--n", "200", "--k", "4", "--d", "4",
                     "--toy", "--level", "1",
                     "--empty-action", "reseed_farthest"])
        assert code == 0
        assert "inertia" in capsys.readouterr().out


class TestExperimentCommand:
    def test_runs_one_experiment(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "[ok]" in out

    def test_persists_outputs(self, tmp_path, capsys):
        assert main(["experiment", "table2", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table2.txt").exists()

    def test_extension_experiment_runs(self, capsys):
        assert main(["experiment", "extra_breakdown"]) == 0
        assert "restream" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure42"])


class TestClusterInput:
    def test_npy_input(self, tmp_path, capsys):
        import numpy as np
        path = str(tmp_path / "data.npy")
        np.save(path, np.random.default_rng(0).normal(size=(120, 5)))
        assert main(["cluster", "--input", path, "--k", "3", "--toy"]) == 0
        assert "n=120 k=3 d=5" in capsys.readouterr().out

    def test_csv_input(self, tmp_path, capsys):
        import numpy as np
        path = str(tmp_path / "data.csv")
        np.savetxt(path, np.random.default_rng(1).normal(size=(80, 4)),
                   delimiter=",")
        assert main(["cluster", "--input", path, "--k", "2", "--toy"]) == 0
        assert "n=80 k=2 d=4" in capsys.readouterr().out

    def test_unsupported_format_is_error(self, tmp_path, capsys):
        path = str(tmp_path / "data.parquet")
        open(path, "w").write("x")
        assert main(["cluster", "--input", path, "--k", "2", "--toy"]) == 2
        assert "unsupported input format" in capsys.readouterr().err


class TestMachineCommand:
    def test_renders_figure1_blocks(self, capsys):
        assert main(["machine", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "SW26010 processor" in out
        assert "8x8 CPE mesh" in out
        assert "2 node(s)" in out

    def test_box_lines_align(self, capsys):
        main(["machine"])
        out = capsys.readouterr().out
        box_lines = [l for l in out.splitlines() if l.startswith(("|", "+"))]
        widths = {len(l) for l in box_lines}
        assert len(widths) == 1


class TestCalibrateCommand:
    def test_prints_fit(self, capsys):
        assert main(["calibrate", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "RMS log10 error" in out
        assert "fitted compute_efficiency" in out
        assert "model/measured" in out


class TestScorecardCommand:
    def test_scorecard_paper_only(self, capsys):
        assert main(["scorecard", "--skip-extras"]) == 0
        out = capsys.readouterr().out
        assert "Reproduction scorecard" in out
        assert "FAIL" not in out
