"""Crash-tolerant process-pool execution engine.

The thread engine breaks the serial ceiling only where NumPy releases the
GIL; ROADMAP item 1 calls for real OS processes behind the same
:class:`~repro.runtime.engine.ExecutionEngine` seam.  Moving block tasks
into processes buys parallelism the GIL cannot touch — and failure modes
the thread engine can never see: workers SIGKILL'd by the OOM killer,
segfaults in native code, and poison tasks that kill every worker that
touches them.  This engine treats those as *expected events*, mirroring the
paper's premise (§IV–V) that a 10M-core run only completes because the host
layer survives component failure.

Data plane
----------

Workers are forked once per pool and fed over **per-worker duplex pipes**
(never a shared queue: a SIGKILL'd worker can die holding a shared queue's
cross-process lock, wedging every survivor — a dead worker's pipe is simply
discarded).  Large operands travel zero-copy: the engine's :meth:`share`
publishes ``X``/``C`` into a :class:`~repro.runtime.shm.SharedArena` and
tasks carry tiny :class:`~repro.runtime.shm.ArrayRef` handles; results come
back as compact ``SumCountPartial``-shaped objects.  Results are collected
in submission order and merged under the reduction topology, so centroids,
ledgers, and fault replays are bit-identical to the serial engine — the
same determinism contract every engine obeys.

Supervision (the headline robustness layer)
-------------------------------------------

* **Heartbeats** — every worker runs a daemon thread stamping a shared
  float64 slot with ``time.monotonic()`` every ``HEARTBEAT_INTERVAL``
  seconds.  CLOCK_MONOTONIC is system-wide, so the parent compares beats
  against its own clock.
* **Dead-worker detection** — the supervision loop watches worker
  exitcodes every tick; a worker whose beat goes stale past the heartbeat
  timeout (``REPRO_HEARTBEAT``) while it holds a task — e.g. SIGSTOP'd by
  ``worker_hang`` chaos — is SIGKILL'd and treated as dead.
* **Bounded respawn with deterministic backoff** — a dead worker's slot is
  respawned after ``backoff_s * factor^min(streak-1, 6)`` seconds (streak
  resets on any completed task); the per-map respawn budget is
  ``quarantine_after * n_tasks + workers``, and exhausting it degrades the
  engine (stickily) to inline serial execution, like the thread engine's
  pool-exhaustion path.
* **Re-execution in canonical order** — tasks in flight on a dead worker
  re-queue by task id, so surviving workers pick them up in canonical
  submission order.
* **Poison-task quarantine** — a task that kills
  ``TaskPolicy.quarantine_after`` workers is quarantined: it runs inline in
  the parent (serial in-process fallback) and the run still completes.

Every decision lands in the run's host events (``worker_lost``,
``worker_respawn``, ``worker_hung``, ``poison_quarantine``,
``degraded_serial``), draining through the usual
:meth:`~repro.runtime.engine.ExecutionEngine.drain_events` →
:meth:`~repro.runtime.supervisor.RunSupervisor.absorb` path.

Error semantics match the thread engine: an ordinary exception raised by a
task drives the bounded-retry ladder (re-runs execute inline in the
parent); modelled :class:`~repro.errors.FaultError` faults pass straight
through to the recovery policies.  Chaos hooks run *inside the worker*
(attempt-0 only), which is what lets ``worker_kill``/``worker_hang`` crash
real processes; the resulting numbers are still bit-identical because
every re-run executes the identical pure block function.

Selection: ``engine="process"`` (facade/executors/lloyd/CLI) or
``REPRO_ENGINE=process``; worker count from ``workers=``/``REPRO_WORKERS``.
:func:`~repro.runtime.engine.resolve_engine` degrades to the serial engine
(with an ``engine_fallback`` host event, never a crash) when the fork
start method is unavailable or the host has a single CPU and no explicit
worker count.  Callables must be module-level (picklable) — reprolint rule
E404 enforces this statically at every engine call site.
"""

from __future__ import annotations

import bisect
import functools
import multiprocessing as mp
import os
import threading
import time
from multiprocessing.connection import wait as _conn_wait
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from dataclasses import replace as _dc_replace

from ..analysis.envvars import ENV_HEARTBEAT, read_float
from ..errors import ConfigurationError, FaultError
from .chaos import ChaosInjector, ChaosPlan
from .engine import ExecutionEngine, TaskPolicy, _SharedEntry
from .host import _fork_available
from .integrity import crc32_array, seal_partial
from .shm import ArrayRef, SharedArena, make_heartbeats

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Real seconds between heartbeat writes in every worker.  Fixed processwide
#: (not per engine) so the shared pool serves engines with different
#: heartbeat *timeouts*; 20 stamps/second costs nothing measurable.
HEARTBEAT_INTERVAL = 0.05

#: Default parent-side heartbeat timeout (``REPRO_HEARTBEAT`` overrides).
DEFAULT_HEARTBEAT_TIMEOUT = 30.0

#: Environment override for the heartbeat timeout, consulted only when no
#: explicit ``heartbeat_s=`` is given (declared in
#: :mod:`repro.analysis.envvars`).
HEARTBEAT_ENV = ENV_HEARTBEAT.name

#: Poll tick of the supervision loop — bounds dead-worker detection latency.
_SUPERVISE_TICK = 0.05

#: Exponent cap for the respawn backoff (backoff_s * factor^cap at worst).
_RESPAWN_BACKOFF_CAP = 6


def _worker_main(slot: int, conn: Any, beats: np.ndarray,
                 interval: float, unshare: Sequence[Any]) -> None:
    """Worker-process loop: recv task, run it, send the result.

    Runs in a forked child.  ``beats`` is the parent's heartbeat view,
    inherited through fork (same mapping, no attach); the beat thread is a
    daemon so a wedged task body cannot block process exit, while a
    SIGSTOP freezes both threads — exactly what the hang detector needs.

    ``unshare`` holds the fork-inherited copies of parent-side pipe ends —
    this worker's own and its live siblings'.  They must be closed here:
    a worker holding (a copy of) the write end of its own pipe would never
    see EOF on ``recv()`` after a SIGKILL'd parent, and the whole pool
    would outlive the crash as orphans.
    """
    for other in unshare:
        try:
            other.close()
        except OSError:  # pragma: no cover - already closed
            pass
    stop = threading.Event()

    def _beat() -> None:
        while not stop.is_set():
            beats[slot] = time.monotonic()
            stop.wait(interval)

    beats[slot] = time.monotonic()
    threading.Thread(target=_beat, name="repro-heartbeat",
                     daemon=True).start()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        _, task_id, attempt, fn, item, plan, integrity = msg
        events: List[Tuple[str, str, float]] = []

        def _record(kind: str, detail: str, seconds: float = 0.0,
                    _events: List[Tuple[str, str, float]] = events) -> None:
            _events.append((kind, detail, float(seconds)))

        try:
            injector = ChaosInjector(plan) if plan is not None else None
            if injector is not None:
                # worker_kill/worker_hang act here: SIGKILL/SIGSTOP this
                # very process.  The parent's supervisor sees the death.
                injector.worker_before_task(task_id, attempt, _record)
            result = fn(item)
            if integrity != "off":
                # Seal before the post-task chaos seam, mirroring
                # ExecutionEngine._attempt: a bitflip (or pickle-transport
                # corruption on the way back) lands on a sealed carrier.
                seal_partial(result)
            if injector is not None:
                result = injector.after_task(task_id, attempt, result,
                                             _record)
            reply: Tuple[Any, ...] = ("ok", task_id, result, events)
        # reprolint: disable=E403 -- shipped to the parent (FaultError-ness included), whose ladder re-raises
        except BaseException as exc:
            reply = ("err", task_id, exc, events, isinstance(exc, FaultError))
        try:
            conn.send(reply)
        # reprolint: disable=E403 -- pickling fallback; no FaultError can originate here
        except Exception as send_exc:
            # Unpicklable result or exception: degrade to a described error
            # so the parent's retry ladder (not a hung recv) handles it.
            if reply[0] == "ok":
                conn.send(("err", task_id, RuntimeError(
                    f"task {task_id} returned an unpicklable result "
                    f"({type(send_exc).__name__}: {send_exc})"),
                    events, False))
            else:
                orig = reply[2]
                conn.send(("err", task_id, RuntimeError(
                    f"{type(orig).__name__}: {orig}"), events, reply[4]))
    try:
        conn.close()
    except OSError:  # pragma: no cover - teardown best-effort
        pass


class _Worker:
    """One pool slot's live process and its private duplex pipe."""

    __slots__ = ("slot", "process", "conn")

    def __init__(self, slot: int, process: Any, conn: Any) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn


class _ProcessPool:
    """A fixed-width set of forked workers with per-slot pipes.

    Shared processwide (like the thread-engine pools): forking is paid once
    per interpreter, not once per ``fit()``.  ``lock`` serialises maps —
    one engine drives the workers at a time, so result messages can never
    interleave between maps.  Chaos plans travel inside each task message,
    keeping the pool itself chaos-agnostic and shareable.
    """

    def __init__(self, workers: int) -> None:
        self.width = int(workers)
        self.ctx = mp.get_context("fork")
        self.hb_shm, self.beats = make_heartbeats(self.width)
        self.lock = threading.Lock()
        self.broken = False
        self.slots: List[Optional[_Worker]] = []
        for i in range(self.width):
            self.slots.append(self._spawn(i))

    def _spawn(self, slot: int) -> _Worker:
        parent_conn, child_conn = self.ctx.Pipe()
        self.beats[slot] = time.monotonic()
        # The fork inherits every open parent-side pipe end — the new
        # worker's own and its live siblings'.  The child closes those
        # copies first thing (the `unshare` list), otherwise a SIGKILL'd
        # parent leaves workers whose recv() never reaches EOF.
        unshare = [parent_conn] + [
            worker.conn for worker in self.slots
            if worker is not None and worker.slot != slot
        ]
        process = self.ctx.Process(
            target=_worker_main,
            args=(slot, child_conn, self.beats, HEARTBEAT_INTERVAL, unshare),
            name=f"repro-worker-{slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(slot, process, parent_conn)

    def _reap(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)

    def respawn(self, slot: int) -> _Worker:
        """Replace the worker at ``slot`` (reaping any previous process)."""
        old = self.slots[slot]
        if old is not None:
            self._reap(old)
        fresh = self._spawn(slot)
        self.slots[slot] = fresh
        return fresh

    def shutdown(self, wait: bool = True) -> None:
        for worker in self.slots:
            if worker is None or not worker.process.is_alive():
                continue
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self.slots:
            if worker is None:
                continue
            worker.process.join(timeout=2.0 if wait else 0.2)
            self._reap(worker)
        self.slots = [None] * self.width
        try:
            self.hb_shm.close()
            self.hb_shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


# One shared pool per worker count (see _ProcessPool docstring).  Drained by
# repro.runtime.engine.shutdown_pools alongside the thread pools.
_PROCESS_POOLS: Dict[int, _ProcessPool] = {}
_PROCESS_POOLS_LOCK = threading.Lock()


def _shared_process_pool(workers: int) -> _ProcessPool:
    with _PROCESS_POOLS_LOCK:
        pool = _PROCESS_POOLS.get(workers)
        if pool is None or pool.broken:
            if pool is not None:
                pool.shutdown(wait=False)
            pool = _ProcessPool(workers)
            _PROCESS_POOLS[workers] = pool
        return pool


def shutdown_process_pools(wait: bool = True) -> None:
    """Stop every shared worker pool and unlink its heartbeat segment."""
    with _PROCESS_POOLS_LOCK:
        pools = list(_PROCESS_POOLS.values())
        _PROCESS_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


def _picklable_callable(fn: Callable[..., Any]) -> bool:
    """True when ``fn`` pickles by reference (module-level, not a closure)."""
    probe: Any = fn
    while isinstance(probe, functools.partial):
        probe = probe.func
    qualname = getattr(probe, "__qualname__", "")
    return "<locals>" not in qualname and "<lambda>" not in qualname


class ProcessEngine(ExecutionEngine):
    """Process-pool scheduling with worker supervision (see module docs).

    Parameters
    ----------
    workers:
        Pool width; ``None`` uses ``os.cpu_count()``.  ``workers=1``
        degenerates to the in-process loop (no pool, no fork), so the
        engine is safe to select unconditionally.
    policy:
        :class:`~repro.runtime.engine.TaskPolicy`; retries and quarantine
        bounds apply to worker deaths as described above.
    chaos:
        Optional injector; its plan ships inside every task message so the
        hooks (including the worker_* kinds) run worker-side.
    heartbeat_s:
        Parent-side heartbeat timeout in real seconds; ``None`` consults
        ``REPRO_HEARTBEAT`` (default 30).  A worker holding a task whose
        heartbeat is older than this is presumed wedged and SIGKILL'd.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None,
                 policy: Optional[TaskPolicy] = None, chaos: Any = None,
                 heartbeat_s: Optional[float] = None,
                 integrity: Optional[str] = None) -> None:
        super().__init__(policy=policy, chaos=chaos, integrity=integrity)
        if not _fork_available():
            raise ConfigurationError(
                "the process engine needs the fork start method; "
                "resolve_engine degrades to serial on such hosts"
            )
        if workers is None:
            workers = os.cpu_count() or 1
        workers = int(workers)
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if heartbeat_s is None:
            heartbeat_s = read_float(ENV_HEARTBEAT)
        if heartbeat_s is None:
            heartbeat_s = DEFAULT_HEARTBEAT_TIMEOUT
        if not heartbeat_s > 0:
            raise ConfigurationError(
                f"heartbeat_s must be > 0, got {heartbeat_s}"
            )
        # Floor at a few beat intervals so a legal timeout cannot reap
        # perfectly healthy workers between stamps.
        self.heartbeat_s = max(float(heartbeat_s), 4 * HEARTBEAT_INTERVAL)
        self._arena = SharedArena(tag="engine")
        self._degraded = False

    # -- state ---------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True once the engine has fallen back to inline serial execution."""
        return self._degraded

    # -- zero-copy operand publishing ----------------------------------------

    def _publish(self, key: str, array: np.ndarray) -> Any:
        """Publish a large read-only operand; returns an ArrayRef handle.

        Tasks resolve the handle with :func:`repro.runtime.shm.as_ndarray`
        — a zero-copy attach in each worker.  Publishing the identical
        array object again is free; a same-shape replacement (the new
        centroids each iteration) rewrites the segment in place, which is
        safe because every map completes before the next publish.  Under
        ``integrity != "off"`` the handle carries the source's CRC32, so
        workers verify the segment bytes on task entry (memoised per
        ``(name, crc)`` generation — see :func:`repro.runtime.shm.as_ndarray`).
        """
        if self.workers == 1 or self._degraded:
            return array
        ref = self._arena.publish(key, array)
        if self.integrity != "off" and isinstance(ref, ArrayRef):
            prev = self._shared.get(key)
            crc = (prev.crc if prev is not None and prev.source is array
                   else crc32_array(array))
            ref = _dc_replace(ref, crc=crc)
        return ref

    def _corrupt_shared(self, key: str, shared: Any, offset: int) -> Any:
        if isinstance(shared, np.ndarray):  # workers==1 / degraded inline
            return super()._corrupt_shared(key, shared, offset)
        self._arena.corrupt(key, offset)
        return shared

    def _shared_view(self, key: str, entry: _SharedEntry) -> np.ndarray:
        if isinstance(entry.value, np.ndarray):
            return entry.value
        view = self._arena.view(key)
        return view if view is not None else entry.source

    def _repair_shared(self, key: str, entry: _SharedEntry) -> None:
        if isinstance(entry.value, np.ndarray):
            super()._repair_shared(key, entry)
            return
        self._arena.repair(key)

    # -- map -----------------------------------------------------------------

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        work: Sequence[_T] = list(items)
        task_ids = list(self._issue_task_ids(len(work)))
        self._last_map_ids = range(task_ids[0], task_ids[0] + len(task_ids)) \
            if task_ids else range(0)
        self._verify_shared()
        if self.workers == 1 or len(work) <= 1 or self._degraded:
            return [self._run_serial_task(fn, item, tid)
                    for item, tid in zip(work, task_ids)]
        if not _picklable_callable(fn):
            raise ConfigurationError(
                f"the process engine ships callables to worker processes; "
                f"{getattr(fn, '__qualname__', fn)!r} is a lambda or "
                f"closure and cannot pickle — pass a module-level function "
                f"(reprolint rule E404)"
            )
        pool = _shared_process_pool(self.workers)
        with pool.lock:
            return self._run_on_pool(pool, fn, work, task_ids)

    # -- the supervised pool run ---------------------------------------------

    def _run_on_pool(self, pool: _ProcessPool, fn: Callable[[_T], _R],
                     work: Sequence[_T], task_ids: List[int]) -> List[_R]:
        n = len(work)
        policy = self.policy
        plan: Optional[ChaosPlan] = (
            self.chaos.plan if self.chaos is not None else None)
        results: List[Any] = [None] * n
        done = [False] * n
        attempts = [0] * n      # failed tries of any type (deaths included)
        failures = [0] * n      # ordinary exceptions (drive max_retries)
        deaths: Dict[int, int] = {}   # index -> workers killed by this task
        queue: List[int] = list(range(n))   # ascending = canonical order
        inflight: Dict[int, Tuple[int, float]] = {}  # slot -> (idx, t0)
        completed = 0
        respawns = 0
        respawn_streak = 0
        respawn_budget = policy.quarantine_after * n + pool.width

        def _finish_inline(idx: int) -> None:
            nonlocal completed
            results[idx] = self._run_serial_task(
                fn, work[idx], task_ids[idx], start_attempt=attempts[idx])
            done[idx] = True
            completed += 1

        def _degrade(reason: str) -> None:
            self._degraded = True
            pool.broken = True
            self._record(
                "degraded_serial",
                f"process pool exhausted ({reason}); falling back to "
                f"inline serial execution",
            )

        def _respawn_slot(slot: int) -> None:
            nonlocal respawns, respawn_streak
            respawns += 1
            respawn_streak += 1
            if respawns > respawn_budget:
                _degrade(f"respawn budget of {respawn_budget} exhausted")
                return
            # Deterministic backoff: pure function of the streak length,
            # no wall clock or RNG in the delay itself.
            delay = policy.backoff_s * policy.backoff_factor ** min(
                respawn_streak - 1, _RESPAWN_BACKOFF_CAP)
            if delay > 0:
                time.sleep(delay)
            fresh = pool.respawn(slot)
            self._record(
                "worker_respawn",
                f"worker {slot} respawned (pid {fresh.process.pid}) after "
                f"{delay:.3g}s backoff",
                delay,
            )

        def _worker_down(slot: int, worker: _Worker, why: str) -> None:
            nonlocal completed
            entry = inflight.pop(slot, None)
            pid = worker.process.pid
            code = worker.process.exitcode
            if entry is None:
                self._record(
                    "worker_lost",
                    f"worker {slot} (pid {pid}) {why} while idle "
                    f"(exitcode {code})",
                )
            else:
                idx, _ = entry
                tid = task_ids[idx]
                deaths[idx] = deaths.get(idx, 0) + 1
                attempts[idx] += 1
                self._record(
                    "worker_lost",
                    f"worker {slot} (pid {pid}) {why} running task {tid} "
                    f"(exitcode {code}; death {deaths[idx]} for this task)",
                )
                if deaths[idx] >= policy.quarantine_after:
                    self._record(
                        "poison_quarantine",
                        f"task {tid} killed {deaths[idx]} workers; "
                        f"quarantined to inline serial execution",
                    )
                    _finish_inline(idx)
                else:
                    # Back into the queue at its canonical position: the
                    # survivors re-execute in task-id order.
                    bisect.insort(queue, idx)
            _respawn_slot(slot)

        def _dispatch() -> None:
            for slot in range(pool.width):
                if not queue:
                    return
                if slot in inflight:
                    continue
                worker = pool.slots[slot]
                if worker is None or not worker.process.is_alive():
                    continue  # the sweep will respawn it
                idx = queue.pop(0)
                try:
                    worker.conn.send(("task", task_ids[idx], attempts[idx],
                                      fn, work[idx], plan, self.integrity))
                except OSError:
                    # Died between the liveness check and the send; requeue
                    # and let the sweep take the death path.
                    bisect.insort(queue, idx)
                    continue
                inflight[slot] = (idx, time.monotonic())

        def _sweep() -> None:
            now = time.monotonic()
            for slot in range(pool.width):
                worker = pool.slots[slot]
                if worker is None:
                    continue
                if not worker.process.is_alive():
                    _worker_down(slot, worker, "died")
                    continue
                entry = inflight.get(slot)
                if entry is None:
                    continue
                idx, t0 = entry
                freshness = now - max(float(pool.beats[slot]), t0)
                over_beat = freshness > self.heartbeat_s
                over_task = (policy.timeout_s is not None
                             and now - t0 > policy.timeout_s)
                if not over_beat and not over_task:
                    continue
                limit = (self.heartbeat_s if over_beat
                         else (policy.timeout_s or 0.0))
                self._record(
                    "worker_hung",
                    f"worker {slot} (pid {worker.process.pid}) "
                    f"unresponsive on task {task_ids[idx]} "
                    f"({'stale heartbeat' if over_beat else 'task timeout'}"
                    f" > {limit:g}s); killing it",
                    freshness,
                )
                worker.process.kill()
                worker.process.join(timeout=5.0)
                _worker_down(slot, worker, "was killed as hung")

        def _on_message(slot: int, msg: Tuple[Any, ...]) -> None:
            nonlocal completed, respawn_streak
            entry = inflight.pop(slot, None)
            if entry is None:  # pragma: no cover - defensive
                return
            idx, _ = entry
            tid = task_ids[idx]
            kind = msg[0]
            for event in msg[3]:
                self._record(*event)
            if kind == "ok":
                results[idx] = msg[2]
                done[idx] = True
                completed += 1
                respawn_streak = 0
                return
            exc = msg[2]
            if msg[4]:  # modelled FaultError: recovery's business, no retry
                raise exc
            failures[idx] += 1
            attempts[idx] += 1
            if failures[idx] > policy.max_retries:
                raise exc
            delay = policy.backoff_delay(tid, failures[idx])
            self._record(
                "task_retry",
                f"task {tid} attempt {failures[idx]} after "
                f"{type(exc).__name__}: {exc}",
                delay,
            )
            if delay > 0:
                time.sleep(delay)
            # Re-runs execute inline in the parent, like the thread
            # engine's retry ladder: deterministic and immune to further
            # pool sickness.  Chaos is attempt-gated, so the re-run is
            # clean.
            _finish_inline(idx)

        try:
            while completed < n:
                if self._degraded:
                    # Pool is gone; finish everything pending inline, in
                    # canonical task order.
                    pending = sorted(
                        set(queue)
                        | {inflight[slot][0] for slot in sorted(inflight)})
                    queue.clear()
                    inflight.clear()
                    for idx in pending:
                        _finish_inline(idx)
                    break
                _dispatch()
                conn_slots = {
                    pool.slots[slot].conn: slot  # type: ignore[union-attr]
                    for slot in sorted(inflight)
                    if pool.slots[slot] is not None
                }
                if conn_slots:
                    ready = _conn_wait(list(conn_slots),
                                       timeout=_SUPERVISE_TICK)
                    for conn in ready:
                        slot = conn_slots[conn]
                        if slot not in inflight:
                            continue
                        try:
                            msg = conn.recv()
                        except (EOFError, OSError):
                            continue  # death; the sweep handles it
                        _on_message(slot, msg)
                elif queue:
                    # No live worker holds a task but work remains: give
                    # the sweep a beat to respawn dead slots.
                    time.sleep(_SUPERVISE_TICK)
                _sweep()
            return results
        finally:
            # Never leave a task in flight when the lock is released (an
            # error path above may exit early): a straggler's result
            # arriving during a *later* map would corrupt it.  Kill and
            # respawn the affected workers — fresh pipes carry no stale
            # messages.
            for slot in list(inflight):
                inflight.pop(slot)
                worker = pool.slots[slot]
                if worker is None:
                    continue
                worker.process.kill()
                worker.process.join(timeout=5.0)
                pool.respawn(slot)
