"""Compute-cost model for CPE floating-point work.

The k-means inner loop is bandwidth-bound on the Sunway (the paper's analysis
only carries Tread and Tcomm terms), but a faithful simulator still needs a
compute term so small-k/small-d regimes — where DMA volume is negligible and
arithmetic dominates — behave sensibly, and so the expanded-distance ablation
has something to measure.

Costs are charged as ``flops / (efficiency * peak_flops)``.  ``efficiency``
defaults to 0.35: the distance kernel streams operands from LDM with
fused-multiply-add chains, well below peak but far above naive scalar code.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..machine.specs import CGSpec
from .ledger import LedgerProtocol

#: Fraction of peak FLOP/s the distance kernel sustains out of LDM.
DEFAULT_EFFICIENCY = 0.35


def distance_flops(n_samples: int, n_centroids: int, n_dims: int) -> int:
    """FLOPs to compute squared Euclidean distances (sub, mul, add per dim)."""
    return 3 * n_samples * n_centroids * n_dims


def update_flops(n_samples: int, n_dims: int, n_centroids: int) -> int:
    """FLOPs of the accumulate + divide in the Update step."""
    return n_samples * n_dims + n_centroids * n_dims


class ComputeModel:
    """Charges CPE arithmetic time for one core group."""

    def __init__(self, cg_spec: CGSpec, ledger: LedgerProtocol,
                 efficiency: float = DEFAULT_EFFICIENCY) -> None:
        if not 0.0 < efficiency <= 1.0:
            raise ConfigurationError(
                f"efficiency must be in (0, 1], got {efficiency}"
            )
        self.spec = cg_spec
        self.ledger = ledger
        self.efficiency = float(efficiency)

    def time_for_flops(self, flops: float, n_cpes: int | None = None) -> float:
        """Seconds to retire ``flops`` spread over ``n_cpes`` CPEs."""
        if flops < 0:
            raise ConfigurationError(f"flops must be >= 0, got {flops}")
        if n_cpes is None:
            n_cpes = self.spec.n_cpes
        if not 1 <= n_cpes <= self.spec.n_cpes:
            raise ConfigurationError(
                f"n_cpes must be in [1, {self.spec.n_cpes}], got {n_cpes}"
            )
        sustained = self.efficiency * self.spec.cpe.peak_flops * n_cpes
        return flops / sustained

    def charge(self, flops: float, label: str,
               n_cpes: int | None = None) -> float:
        """Charge arithmetic time to the ledger; returns the seconds."""
        t = self.time_for_flops(flops, n_cpes)
        self.ledger.charge("compute", label, t)
        return t
