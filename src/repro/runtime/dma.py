"""DMA engine: cost model for main-memory <-> LDM transfers.

On the SW26010 the CPEs have no data cache; all operands are staged into the
64 KB LDM through explicit DMA.  The paper's read-time terms, e.g. Level 1's

    Tread = (n*d/m + k*d) / B

are exactly "bytes moved by DMA divided by DMA bandwidth B".  The engine
below charges ``latency + nbytes / bandwidth`` per transaction and knows that
the 64 CPEs of a CG *share* the CG's DMA bandwidth: a transfer performed by
all CPEs of a CG concurrently is charged at the aggregate rate, matching the
B in the paper's formulas.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from ..machine.specs import CGSpec
from .ledger import LedgerProtocol


class DMAEngine:
    """Charges DMA transfer time for one core group.

    Parameters
    ----------
    cg_spec:
        Hardware parameters (bandwidth, startup latency) of the CG.
    ledger:
        Ledger the engine charges time to.
    injector:
        Optional :class:`~repro.runtime.faults.FaultInjector`; every
        transfer passes through its DMA hook, which may raise
        :class:`~repro.errors.TransientDMAError`.
    """

    def __init__(self, cg_spec: CGSpec, ledger: LedgerProtocol,
                 injector=None) -> None:
        self.spec = cg_spec
        self.ledger = ledger
        self.injector = injector
        self._bytes_moved = 0

    @property
    def bytes_moved(self) -> int:
        """Total bytes transferred through this engine so far."""
        return self._bytes_moved

    def transfer_time(self, nbytes: int, transactions: int = 1,
                      label: str = "dma.transfer") -> float:
        """Modelled time to move ``nbytes`` in ``transactions`` DMA ops.

        Every transfer — including the pure cost queries the executors use
        for their streaming phases — passes through the fault injector's
        DMA hook, so an injected transient error surfaces exactly where the
        hardware would raise it.
        """
        if self.injector is not None:
            self.injector.on_dma(label, nbytes)
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        if transactions < 1:
            raise ConfigurationError(
                f"transactions must be >= 1, got {transactions}"
            )
        if nbytes == 0:
            return 0.0
        return transactions * self.spec.dma_latency + nbytes / self.spec.dma_bw

    def read(self, nbytes: int, label: str, transactions: int = 1) -> float:
        """Charge a main-memory -> LDM transfer for the whole CG.

        ``nbytes`` is the aggregate volume pulled by the CG in this phase
        (all CPEs' slices together); the CG's DMA bandwidth is shared, so the
        charge is the aggregate volume over the aggregate bandwidth.
        """
        t = self.transfer_time(nbytes, transactions, label=label)
        self._bytes_moved += int(nbytes)
        self.ledger.charge("dma", label, t)
        return t

    def write(self, nbytes: int, label: str, transactions: int = 1) -> float:
        """Charge an LDM -> main-memory transfer (same cost shape as read)."""
        t = self.transfer_time(nbytes, transactions, label=label)
        self._bytes_moved += int(nbytes)
        self.ledger.charge("dma", label, t)
        return t

    def stream_time(self, total_bytes: int, chunk_bytes: int) -> float:
        """Time to stream a large buffer through LDM in fixed-size chunks.

        Used for dataflow streaming: ``total_bytes`` of samples staged
        ``chunk_bytes`` at a time (each chunk is one DMA transaction).
        """
        if chunk_bytes <= 0:
            raise ConfigurationError(
                f"chunk_bytes must be positive, got {chunk_bytes}"
            )
        n_chunks = math.ceil(total_bytes / chunk_bytes) if total_bytes else 0
        return self.transfer_time(total_bytes, transactions=max(n_chunks, 1)) \
            if total_bytes else 0.0
