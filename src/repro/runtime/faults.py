"""Deterministic fault injection for the simulated machine.

The paper's Level 3 runs span thousands of core groups — a regime where CG
failures and transient DMA/network errors are routine, not exceptional.
This module lets a run *schedule* such faults and have them fire from the
same hook points a real machine would surface them at:

* :meth:`~repro.runtime.dma.DMAEngine.transfer_time` (and therefore
  ``read``/``write``/``stream_time``) — transient DMA errors,
* :class:`~repro.runtime.mpi.SimComm` collectives — collective timeouts and
  degraded link bandwidth,
* :class:`~repro.runtime.regcomm.RegisterComm` collectives — mesh timeouts,
* the executor's iteration boundary — permanent CG failures (failures are
  detected at synchronization points).

Everything is seeded: a :class:`FaultPlan` owns a seed, the
:class:`FaultInjector` draws from one ``numpy`` generator, and the executors
are deterministic — so the same ``(seed, FaultPlan)`` pair replays the exact
same faults, recovery actions, centroids, and modelled seconds.

Faults never fire during setup (epoch 0): recovery policies act inside the
convergence loop, so injection starts at iteration 1.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import (
    CGFailedError,
    CollectiveTimeoutError,
    ConfigurationError,
    FaultError,
    TransientDMAError,
)

#: Fault kinds a :class:`FaultSpec` may carry.
FAULT_KINDS = ("cg_failure", "transient_dma", "collective_timeout",
               "degraded_link")

#: Kinds that fire as exceptions (``degraded_link`` only slows links down).
_RAISING_KINDS = {
    "cg_failure": CGFailedError,
    "transient_dma": TransientDMAError,
    "collective_timeout": CollectiveTimeoutError,
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled or stochastic fault.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    iteration:
        Fire at this iteration (1-based ledger epoch).  Required for
        ``cg_failure`` and ``degraded_link``; for the transient kinds it
        makes the fault fire deterministically on the *first* eligible
        operation of that iteration instead of stochastically.
    cg_index:
        Target core group (``cg_failure``; informational elsewhere).
    probability:
        Per-operation firing probability for transient kinds scheduled with
        ``iteration=None``.
    bandwidth_factor:
        ``degraded_link`` only: multiply network link bandwidth by this
        factor (0 < factor <= 1) while the fault is active.
    duration:
        ``degraded_link`` only: number of iterations the degradation lasts
        (None = until the end of the run).
    """

    kind: str
    iteration: Optional[int] = None
    cg_index: Optional[int] = None
    probability: float = 0.0
    bandwidth_factor: float = 1.0
    duration: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.iteration is not None and self.iteration < 1:
            raise ConfigurationError(
                f"fault iteration must be >= 1, got {self.iteration}"
            )
        if self.kind in ("cg_failure", "degraded_link") \
                and self.iteration is None:
            raise ConfigurationError(
                f"{self.kind} faults must be scheduled with iteration=t"
            )
        if self.kind == "cg_failure" and self.cg_index is None:
            object.__setattr__(self, "cg_index", 0)
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.kind in ("transient_dma", "collective_timeout") \
                and self.iteration is None and self.probability == 0.0:
            raise ConfigurationError(
                f"a stochastic {self.kind} fault needs probability > 0 "
                f"(or schedule it with iteration=t)"
            )
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ConfigurationError(
                f"bandwidth_factor must be in (0, 1], "
                f"got {self.bandwidth_factor}"
            )
        if self.duration is not None and self.duration < 1:
            raise ConfigurationError(
                f"fault duration must be >= 1, got {self.duration}"
            )

    def active_at(self, iteration: int) -> bool:
        """Whether a windowed fault (``degraded_link``) covers ``iteration``."""
        if self.iteration is None or iteration < self.iteration:
            return False
        if self.duration is None:
            return True
        return iteration < self.iteration + self.duration


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of faults, replayable bit-for-bit.

    The plan is immutable; per-run mutable state (which one-shot specs have
    fired, the rng stream position) lives in the :class:`FaultInjector`, so
    one plan can drive many independent runs.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        object.__setattr__(self, "specs", tuple(specs))
        object.__setattr__(self, "seed", int(seed))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"FaultPlan specs must be FaultSpec instances, "
                    f"got {type(spec).__name__}"
                )

    def __bool__(self) -> bool:
        return bool(self.specs)

    # -- serialization -----------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "faults": [asdict(s) for s in self.specs],
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as e:
            raise ConfigurationError(f"invalid fault-plan JSON: {e}") from None
        try:
            specs = [FaultSpec(**entry) for entry in data.get("faults", [])]
        except TypeError as e:
            raise ConfigurationError(f"invalid fault spec: {e}") from None
        return cls(specs, seed=int(data.get("seed", 0)))


def parse_fault_plan(text: str, seed: int = 0) -> FaultPlan:
    """Parse the CLI's compact fault-plan grammar (or a ``@file`` reference).

    Grammar: semicolon-separated events, each ``kind[@iteration][:key=val,...]``:

    * ``cg_failure@3:cg=1`` — CG 1 fails permanently at iteration 3,
    * ``transient_dma@2`` — one deterministic DMA error at iteration 2,
    * ``transient_dma:p=0.01`` — each DMA op fails with probability 0.01,
    * ``collective_timeout@4`` — one collective timeout at iteration 4,
    * ``degraded_link@2:factor=0.5,duration=3`` — halve link bandwidth for
      iterations 2-4.

    ``@path.json`` loads a :meth:`FaultPlan.to_json` file instead.  ``seed``
    seeds the stochastic draws (the facade passes its own seed through).
    """
    text = text.strip()
    if text.startswith("@"):
        try:
            with open(text[1:], "r", encoding="utf-8") as fh:
                return FaultPlan.from_json(fh.read())
        except OSError as e:
            raise ConfigurationError(
                f"cannot read fault plan {text[1:]!r}: {e}"
            ) from None
    key_map = {"cg": "cg_index", "p": "probability",
               "factor": "bandwidth_factor", "duration": "duration",
               "seed": None}
    int_keys = {"cg_index", "duration"}
    specs: List[FaultSpec] = []
    for event in filter(None, (e.strip() for e in text.split(";"))):
        if event.startswith("seed="):
            seed = int(event[len("seed="):])
            continue
        head, _, opts = event.partition(":")
        kind, _, when = head.partition("@")
        kwargs: dict = {"kind": kind.strip()}
        if when:
            try:
                kwargs["iteration"] = int(when)
            except ValueError:
                raise ConfigurationError(
                    f"bad fault iteration {when!r} in {event!r}"
                ) from None
        for pair in filter(None, (p.strip() for p in opts.split(","))):
            key, eq, value = pair.partition("=")
            if not eq or key not in key_map or key_map[key] is None:
                raise ConfigurationError(
                    f"bad fault option {pair!r} in {event!r} "
                    f"(expected cg=, p=, factor=, duration=)"
                )
            name = key_map[key]
            try:
                kwargs[name] = int(value) if name in int_keys \
                    else float(value)
            except ValueError:
                raise ConfigurationError(
                    f"bad value {value!r} for {key!r} in {event!r}"
                ) from None
        specs.append(FaultSpec(**kwargs))
    if not specs:
        raise ConfigurationError(f"fault plan {text!r} contains no events")
    return FaultPlan(specs, seed=seed)


FaultPlanLike = Union[FaultPlan, str]


def resolve_fault_plan(faults: Optional[FaultPlanLike],
                       seed: int = 0) -> Optional[FaultPlan]:
    """Accept a FaultPlan, a compact spec string, or None."""
    if faults is None or isinstance(faults, FaultPlan):
        return faults
    if isinstance(faults, str):
        return parse_fault_plan(faults, seed=seed)
    raise ConfigurationError(
        f"faults must be a FaultPlan or a spec string, "
        f"got {type(faults).__name__}"
    )


@dataclass
class FaultEvent:
    """One fault occurrence and what the run did about it.

    ``action`` starts as ``"raised"`` (or ``"applied"`` for degraded links)
    and is updated by the recovery machinery to ``"retried"``,
    ``"replanned"``, or ``"fatal"``; ``recovery_seconds`` accumulates the
    modelled time the recovery charged for this event.
    """

    iteration: int
    kind: str
    label: str = ""
    cg_index: Optional[int] = None
    action: str = "raised"
    recovery_seconds: float = 0.0


class FaultInjector:
    """Per-run fault state: fires the plan's faults at the runtime hooks.

    The executors call :meth:`begin_iteration` at every iteration boundary;
    the transports call :meth:`on_dma` / :meth:`on_collective` per operation
    and :meth:`link_bandwidth_factor` when pricing a network link.  The
    injector records every fault it fires in :attr:`events` (the record that
    ends up on :class:`~repro.core.result.KMeansResult.fault_events`).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self.iteration = 0
        self.events: List[FaultEvent] = []
        #: indices of one-shot specs that already fired.
        self._fired: set = set()
        #: indices of degraded_link specs already announced.
        self._announced: set = set()

    # -- hooks ---------------------------------------------------------------------

    def begin_iteration(self, iteration: int) -> None:
        """Advance the clock; raise any CG failure scheduled for now."""
        self.iteration = iteration
        for i, spec in enumerate(self.plan.specs):
            if (spec.kind == "degraded_link" and i not in self._announced
                    and spec.active_at(iteration)):
                self._announced.add(i)
                self.events.append(FaultEvent(
                    iteration=iteration, kind=spec.kind, label="network",
                    cg_index=spec.cg_index, action="applied",
                ))
        for i, spec in enumerate(self.plan.specs):
            if (spec.kind == "cg_failure" and spec.iteration == iteration
                    and i not in self._fired):
                self._fired.add(i)
                self._raise(spec, label="iteration_boundary")

    def on_dma(self, label: str, nbytes: int) -> None:
        """Hook for every DMA transfer; may raise TransientDMAError."""
        self._check_transient("transient_dma", label)

    def on_collective(self, label: str, nbytes: int) -> None:
        """Hook for every collective; may raise CollectiveTimeoutError."""
        self._check_transient("collective_timeout", label)

    def link_bandwidth_factor(self) -> float:
        """Combined bandwidth derate of the degraded links active now."""
        factor = 1.0
        for spec in self.plan.specs:
            if spec.kind == "degraded_link" and spec.active_at(self.iteration):
                factor *= spec.bandwidth_factor
        return factor

    # -- internals -----------------------------------------------------------------

    def _check_transient(self, kind: str, label: str) -> None:
        if self.iteration < 1:  # faults never fire during setup
            return
        for i, spec in enumerate(self.plan.specs):
            if spec.kind != kind:
                continue
            if spec.iteration is not None:
                if spec.iteration == self.iteration and i not in self._fired:
                    self._fired.add(i)
                    self._raise(spec, label=label)
            elif spec.probability > 0.0 \
                    and self._rng.random() < spec.probability:
                self._raise(spec, label=label)

    def _raise(self, spec: FaultSpec, label: str) -> None:
        event = FaultEvent(iteration=self.iteration, kind=spec.kind,
                           label=label, cg_index=spec.cg_index)
        self.events.append(event)
        cls = _RAISING_KINDS[spec.kind]
        where = f" (CG {spec.cg_index})" if spec.kind == "cg_failure" else ""
        error = cls(
            f"injected {spec.kind}{where} at iteration {self.iteration} "
            f"during {label!r}",
            iteration=self.iteration, cg_index=spec.cg_index, label=label,
        )
        #: the recovery loop updates this event's action/recovery_seconds.
        error.event = event
        raise error
