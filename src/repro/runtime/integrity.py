"""End-to-end data-integrity layer: ABFT checksums for silent corruption.

The chaos layer (:mod:`repro.runtime.chaos`) can now flip bits *silently* —
in a reduction partial between task exit and combine, in a shared-arena
segment between publish and task start, or in a checkpoint npz on disk.
Nothing raises; the numbers are simply wrong.  This module is the matching
detection/repair side:

* **Partials** — every :class:`~repro.runtime.reduce.Reducible` carrier
  exposes ``_integrity_payload()``; :func:`seal_partial` stamps a CRC32
  over the payload bytes (exact single-bit-flip detection) plus, for the
  sums-bearing carriers, an ABFT check row ``sums.sum(axis=0)``.
  :func:`verify_partial` recomputes and raises
  :class:`~repro.errors.IntegrityError` on mismatch;
  :func:`verify_combine` checks that a combine preserved the additive
  check row up to reduction-arithmetic tolerance (floating reassociation
  forbids a bitwise comparison — the CRC is the exact detector, the
  check row the algebraic one).
* **Shared arrays** — :func:`crc32_array` is the checksum engines record
  at ``share()`` time and re-verify before dispatching tasks; the process
  engine additionally threads it through ``ArrayRef.crc`` so workers
  verify segments on task entry.
* **Checkpoints** — :func:`manifest_digests` builds the SHA-256 manifest
  ``CheckpointStore`` embeds in every npz, verified by ``load_checkpoint``.

Modes
-----
``"off"``
    No sealing, no verification: the clean path is bit-for-bit the
    pre-integrity code path.
``"verify"``
    Seal + verify everywhere; detection raises :class:`IntegrityError`
    (a transient :class:`~repro.errors.FaultError`, so supervised runs
    escalate through the ordinary recovery policies).
``"repair"``
    As ``verify``, but the engine first recomputes the smallest corrupted
    subtree/block under the existing ``TaskPolicy`` budget and restores
    corrupted shared segments from their retained sources; only
    persistent corruption escalates.

The mode is resolved like every other runtime knob: explicit argument
beats the registered ``REPRO_INTEGRITY`` environment variable beats the
``"off"`` default (:func:`resolve_integrity`).
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..analysis.envvars import ENV_INTEGRITY, read_str
from ..errors import ConfigurationError, IntegrityError

__all__ = [
    "INTEGRITY_ENV",
    "INTEGRITY_MODES",
    "checksum_payload",
    "crc32_array",
    "manifest_digests",
    "resolve_integrity",
    "seal_partial",
    "sha256_array",
    "verified_combine",
    "verify_combine",
    "verify_partial",
]

#: Recognised integrity modes, in increasing order of intervention.
INTEGRITY_MODES: Tuple[str, ...] = ("off", "verify", "repair")

#: Environment override consulted by :func:`resolve_integrity` when no
#: explicit mode is given (declared in :mod:`repro.analysis.envvars`;
#: string alias for callers).
INTEGRITY_ENV = ENV_INTEGRITY.name


def resolve_integrity(integrity: Optional[str] = None) -> str:
    """Resolve an integrity mode: explicit arg > ``REPRO_INTEGRITY`` > off.

    Mirrors ``resolve_engine``/``resolve_chaos``: engine *constructors*
    never consult the environment (an explicitly built engine stays
    ``"off"`` unless told otherwise); only ``resolve_engine`` and the
    facade route through this resolver with ``integrity=None``.
    """
    if integrity is None:
        integrity = read_str(ENV_INTEGRITY) or "off"
    if integrity not in INTEGRITY_MODES:
        raise ConfigurationError(
            f"integrity mode must be one of {INTEGRITY_MODES}, "
            f"got {integrity!r}"
        )
    return integrity


# ---------------------------------------------------------------------------
# checksums


def crc32_array(array: np.ndarray) -> int:
    """CRC32 over an array's raw bytes (shape/dtype-independent content)."""
    contiguous = np.ascontiguousarray(array)
    return zlib.crc32(contiguous)  # type: ignore[arg-type]


def sha256_array(array: np.ndarray) -> str:
    """Hex SHA-256 over an array's raw bytes plus its shape/dtype header."""
    contiguous = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(repr((contiguous.shape, contiguous.dtype.str)).encode())
    digest.update(contiguous)
    return digest.hexdigest()


def manifest_digests(arrays: Dict[str, np.ndarray]) -> Dict[str, str]:
    """Per-array SHA-256 digests for a checkpoint manifest, in key order."""
    return {key: sha256_array(np.asarray(arrays[key])) for key in sorted(arrays)}


def checksum_payload(items: Sequence[Any]) -> int:
    """CRC32 chained over a heterogeneous payload tuple.

    Arrays contribute their shape/dtype header and raw bytes; scalars
    contribute a canonical byte encoding; ``None`` a fixed marker.  The
    chaining makes the checksum sensitive to field order, so two payloads
    that merely permute the same arrays do not collide.
    """
    crc = 0
    for item in items:
        if item is None:
            crc = zlib.crc32(b"\x00<none>", crc)
        elif isinstance(item, np.ndarray):
            contiguous = (item if item.flags.c_contiguous
                          else np.ascontiguousarray(item))
            # Cheap header: dtype code + dimension sizes.  This runs per
            # payload array on every seal/verify, so no repr round-trips.
            header = contiguous.dtype.str.encode() + struct.pack(
                f"<{contiguous.ndim}q", *contiguous.shape)
            crc = zlib.crc32(header, crc)
            crc = zlib.crc32(contiguous, crc)  # type: ignore[arg-type]
        elif isinstance(item, (bool, int, np.integer)):
            crc = zlib.crc32(b"\x01" + str(int(item)).encode(), crc)
        elif isinstance(item, (float, np.floating)):
            crc = zlib.crc32(np.float64(item).tobytes(), crc)
        else:
            crc = zlib.crc32(repr(item).encode(), crc)
    return crc


# ---------------------------------------------------------------------------
# partial seal / verify


def _payload_of(partial: Any) -> Optional[Tuple[Any, ...]]:
    fn = getattr(partial, "_integrity_payload", None)
    if fn is None:
        return None
    payload: Tuple[Any, ...] = fn()
    return payload


def seal_partial(partial: Any) -> Any:
    """Stamp ABFT checksum fields onto a Reducible carrier, in place.

    No-op for objects without an ``_integrity_payload`` (plain tuples and
    arrays stay uncovered — only the typed carriers participate) and for
    carriers that are already sealed: a merge task seals its output once,
    and re-sealing after the chaos seam would launder corruption into a
    fresh checksum.
    """
    payload = _payload_of(partial)
    if payload is None or getattr(partial, "crc", None) is not None:
        return partial
    partial.crc = checksum_payload(payload)
    sums = getattr(partial, "sums", None)
    if sums is not None and hasattr(partial, "check_row"):
        partial.check_row = np.asarray(sums).sum(axis=0)
    return partial


def verify_partial(partial: Any, where: str = "partial") -> None:
    """Recompute a sealed carrier's CRC32 and raise on mismatch.

    Unsealed carriers (``crc is None``) and non-carrier objects pass
    vacuously — sealing only happens when integrity is on, so this
    function is safe to call unconditionally.
    """
    payload = _payload_of(partial)
    if payload is None:
        return
    crc = getattr(partial, "crc", None)
    if crc is None:
        return
    if checksum_payload(payload) != int(crc):
        raise IntegrityError(
            f"CRC32 mismatch in {where}: "
            f"{type(partial).__name__} payload was corrupted after sealing",
            location=where,
        )


def verify_combine(a: Any, b: Any, combined: Any, where: str = "combine") -> None:
    """Check that a combine preserved the additive ABFT check row.

    ``combined.sums`` must equal ``a.check_row + b.check_row`` column-wise
    up to reduction-arithmetic tolerance.  Exact equality is impossible —
    the combined row is re-derived by a differently associated sum — so
    the tolerance scales with the operands' magnitude and dtype; gross
    corruption of the sums matrix *between* verification and combine is
    what this catches, while single bit flips are caught exactly by the
    CRC in :func:`verify_partial`.
    """
    row_a = getattr(a, "check_row", None)
    row_b = getattr(b, "check_row", None)
    sums = getattr(combined, "sums", None)
    if row_a is None or row_b is None or sums is None:
        return
    expected = np.asarray(row_a) + np.asarray(row_b)
    actual = np.asarray(sums).sum(axis=0)
    if expected.shape != actual.shape:
        raise IntegrityError(
            f"ABFT check row shape mismatch in {where}: "
            f"{expected.shape} vs {actual.shape}",
            location=where,
        )
    scale = float(np.abs(expected).max(initial=0.0)) + 1.0
    rows = max(1, int(np.asarray(sums).shape[0]))
    tol = float(np.finfo(actual.dtype).eps) * 64.0 * rows * scale
    if float(np.abs(actual - expected).max(initial=0.0)) > tol:
        raise IntegrityError(
            f"ABFT check row not preserved by {where}: combine dropped or "
            f"corrupted mass in the sums matrix",
            location=where,
        )


def verified_combine(combine: Callable[[Any, Any], Any], a: Any, b: Any,
                     where: str = "combine",
                     trust_operands: bool = False) -> Any:
    """Verify operands, combine, check row preservation, and seal the result.

    ``trust_operands=True`` skips the operand CRC re-hash for callers that
    already verified both operands and hold them across no task or
    transport seam — the engine's inline serial fold, whose slots are
    either leaves verified at the map boundary or merge results created
    in-caller one statement earlier.  The per-node ABFT check row still
    validates every merge algebraically, so gross corruption of a slot is
    caught even on that path; re-hashing would only duplicate a check that
    cannot fail.  Pooled tree merges must keep the default: their operands
    cross pickling and the bitflip-chaos seam.

    Module-level (not a closure) so ``functools.partial`` over it stays
    picklable for pooled tree merges on the process engine.
    """
    if not trust_operands:
        verify_partial(a, where=f"{where} left operand")
        verify_partial(b, where=f"{where} right operand")
    combined = combine(a, b)
    verify_combine(a, b, combined, where=where)
    return seal_partial(combined)
