"""Pluggable execution engine: how per-block work runs on the *host*.

Everything in :mod:`repro.core` charges **modelled** Sunway seconds; this
module decides how the simulator's own numerics are scheduled on the machine
actually running the Python process.  The Assign+Accumulate dataflow of every
partition level is embarrassingly parallel over sample blocks — the paper's
whole point — so the executors hand each block to an
:class:`ExecutionEngine` and merge the per-block ``(sums, counts)`` partials
in fixed block order.

Three engines ship:

``serial``
    A plain in-process loop.  The reference engine.

``thread``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor`.  The block
    kernels are NumPy/BLAS calls that release the GIL, so block-sharded
    GEMM assignment scales on real cores without any pickling or forking.

``process``
    Forked OS workers reading shared-memory operands zero-copy, with a
    crash supervisor (heartbeats, respawn, poison-task quarantine) — see
    :mod:`repro.runtime.process_engine`.

Determinism contract: an engine only changes *scheduling*, never results.
Both engines run the identical per-block function over the identical block
list and return results in submission order; because the callers merge the
float partials in that fixed order, centroids, assignments, modelled ledger
seconds, and fault-event replays are bit-identical across engines and
worker counts.  ``tests/runtime/test_engine.py`` enforces this.

Host robustness (PR 4): every task runs under a :class:`TaskPolicy` —
bounded retries with exponential backoff and deterministic jitter, an
optional per-task wall-clock timeout with speculative re-execution of
stragglers, quarantine of a worker slot after repeated failures, and a
sticky degradation ``thread → serial`` once the pool has no healthy slot
left.  The retry path re-runs the *identical pure block function*, so the
determinism contract survives: only scheduling changes, never numbers.
Modelled :class:`~repro.errors.FaultError` faults are exempt from engine
retries — they belong to the simulated machine and flow straight to the
recovery policies of :mod:`repro.core.recovery`.

Selection: ``HierarchicalKMeans(..., engine="thread", workers=4)``, the same
knobs on every executor and on :func:`~repro.core.lloyd.lloyd`, or the
``REPRO_ENGINE`` / ``REPRO_WORKERS`` environment variables (read only when
no explicit ``engine=`` is given — this is how CI runs the whole test suite
under the thread engine).  ``REPRO_CHAOS`` attaches a seeded host-chaos
injector (see :mod:`repro.runtime.chaos`) the same way.
"""

from __future__ import annotations

import atexit
import functools
import os
import sys
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

import numpy as np

from ..analysis.envvars import (
    ENV_ENGINE,
    ENV_TASK_RETRIES,
    ENV_TASK_TIMEOUT,
    ENV_WORKERS,
    read_float,
    read_int,
    read_str,
)
from ..errors import (
    ConfigurationError,
    FaultError,
    IntegrityError,
    TaskTimeoutError,
)
from .integrity import (
    crc32_array,
    resolve_integrity,
    seal_partial,
    verified_combine,
    verify_partial,
)
from .reduce import (
    CombineFn,
    ReduceLike,
    combine_partials,
    resolve_reduce,
    validate_schedule,
)

#: Names accepted by :func:`resolve_engine`.
ENGINES = ("serial", "thread", "process")

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment overrides for the default :class:`TaskPolicy` (declared in
#: :mod:`repro.analysis.envvars`; the string aliases are kept for callers).
TASK_RETRIES_ENV = ENV_TASK_RETRIES.name
TASK_TIMEOUT_ENV = ENV_TASK_TIMEOUT.name


@dataclass(frozen=True)
class TaskPolicy:
    """Retry/timeout/quarantine policy for one block task on the host.

    Parameters
    ----------
    max_retries:
        Extra attempts allowed per task after the first one fails (0
        disables retries).
    backoff_s:
        Real seconds of the first backoff delay.
    backoff_factor:
        Multiplier applied to the delay on each subsequent retry.
    jitter:
        Fractional jitter added to each delay.  The jitter is a pure
        function of ``(task_id, attempt)`` — not of the wall clock or a
        shared RNG stream — so replays are bit-identical across engines,
        worker counts, and processes.
    timeout_s:
        Per-task wall-clock timeout in real seconds (thread engine only;
        None disables).  A task that exceeds it is speculatively re-run —
        the straggler's slot is marked hung and its eventual result
        discarded.  Inline (serial / degraded) execution cannot be
        preempted, so timeouts are not enforced there.
    quarantine_after:
        Failures on one worker slot before the slot is quarantined.
    """

    max_retries: int = 2
    backoff_s: float = 0.01
    backoff_factor: float = 2.0
    jitter: float = 0.25
    timeout_s: Optional[float] = None
    quarantine_after: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"need backoff_s >= 0 and backoff_factor >= 1, got "
                f"backoff_s={self.backoff_s}, factor={self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ConfigurationError(
                f"timeout_s must be > 0 or None, got {self.timeout_s}"
            )
        if self.quarantine_after < 1:
            raise ConfigurationError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )

    def backoff_delay(self, task_id: int, attempt: int) -> float:
        """Deterministically jittered delay before retry ``attempt`` (1-based)."""
        base = self.backoff_s * self.backoff_factor ** (attempt - 1)
        if base == 0.0 or self.jitter == 0.0:
            return base
        # Seeded by (task_id, attempt): stable across processes, unlike
        # hash(), and no shared RNG stream for threads to race on.
        u = np.random.default_rng([task_id, attempt]).random()
        return base * (1.0 + self.jitter * u)


def resolve_task_policy(policy: Optional[TaskPolicy] = None) -> TaskPolicy:
    """Pass through an explicit policy, else build one from the environment.

    ``REPRO_TASK_RETRIES`` and ``REPRO_TASK_TIMEOUT`` override the
    defaults; empty or whitespace-only values count as unset.
    """
    if policy is not None:
        return policy
    retries = read_int(ENV_TASK_RETRIES)
    timeout = read_float(ENV_TASK_TIMEOUT)
    defaults = TaskPolicy()
    return TaskPolicy(
        max_retries=defaults.max_retries if retries is None else retries,
        timeout_s=defaults.timeout_s if timeout is None else timeout,
    )


class _QuarantinedSlot(Exception):
    """Internal: a quarantined pool thread refused a task (re-run elsewhere)."""


def _combine_pair(combine: CombineFn, pair: Tuple[Any, Any]) -> Any:
    """Module-level merge task: pooled reductions must pickle (E404)."""
    return combine(pair[0], pair[1])


def _combine_pair_verified(combine: CombineFn, pair: Tuple[Any, Any]) -> Any:
    """Merge task with ABFT verification at the tree-combine node.

    Verifies both operands' CRCs, checks check-row preservation, and
    seals the merged partial — inside the engine task, so under the
    process engine the verification runs worker-side on the bytes that
    actually crossed the pipe.  Module-level for picklability (E404).
    """
    return verified_combine(combine, pair[0], pair[1], where="tree combine")


class _SharedEntry:
    """Bookkeeping for one published shared operand (integrity mode only)."""

    __slots__ = ("source", "value", "crc", "verified")

    def __init__(self, source: np.ndarray, value: Any, crc: int) -> None:
        self.source = source
        self.value = value
        self.crc = crc
        self.verified = False


class ExecutionEngine(ABC):
    """Maps a function over work items; subclasses choose the scheduling."""

    #: Registry name of the engine ("serial", "thread", ...).
    name: str = ""
    #: Host threads the engine may occupy (1 for the serial engine).
    workers: int = 1

    def __init__(self, policy: Optional[TaskPolicy] = None,
                 chaos=None, integrity: Optional[str] = None) -> None:
        self.policy = resolve_task_policy(policy)
        #: Optional :class:`~repro.runtime.chaos.ChaosInjector` perturbing
        #: task execution at this seam (None = no chaos).
        self.chaos = chaos
        #: Integrity mode ("off" | "verify" | "repair").  Constructors never
        #: consult the environment — like chaos, ``REPRO_INTEGRITY`` is
        #: applied only by :func:`resolve_engine` — so explicitly built
        #: engines stay "off" unless told otherwise.
        self.integrity = resolve_integrity(integrity or "off")
        self._events: List[Tuple[str, str, float]] = []
        self._events_lock = threading.Lock()
        self._task_counter = 0
        self._counter_lock = threading.Lock()
        self._share_counter = 0
        self._shared: Dict[str, _SharedEntry] = {}
        self._last_map_ids: range = range(0)

    @abstractmethod
    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        """Apply ``fn`` to every item; results in submission order.

        Implementations must not reorder results — callers rely on the
        fixed order to merge float partials deterministically.
        """

    def share(self, key: str, array: np.ndarray) -> Any:
        """Publish a large read-only operand for the tasks of coming maps.

        The in-process engines share by reference — the array itself comes
        back and tasks receive it untouched.  The process engine publishes
        into its :class:`~repro.runtime.shm.SharedArena` (via
        :meth:`_publish`) and returns a compact
        :class:`~repro.runtime.shm.ArrayRef` instead; block tasks resolve
        either form with :func:`repro.runtime.shm.as_ndarray`.  The
        published array must not be mutated in place while tasks may still
        read it (replace it and re-``share`` instead).

        This is also the silent-corruption seam: a ``bitflip_arena`` chaos
        spec may flip one byte of the *published* value here (never of the
        caller's source array), and under ``integrity != "off"`` the
        engine records a CRC32 of the pristine source and re-verifies the
        published bytes before the next :meth:`map` dispatches tasks.
        """
        shared = self._publish(key, array)
        share_id = self._share_counter
        self._share_counter += 1
        corrupted = False
        if self.chaos is not None and isinstance(array, np.ndarray):
            offset = self.chaos.on_share(
                share_id, key, array.nbytes, array.dtype.itemsize,
                self._record)
            if offset is not None:
                corrupted = True
                shared = self._corrupt_shared(key, shared, int(offset))
        if self.integrity != "off" and isinstance(array, np.ndarray):
            prev = self._shared.get(key)
            if prev is not None and prev.source is array:
                # Identity re-publish (the per-iteration X): the source
                # bytes are unchanged, so the recorded checksum carries
                # over without another CRC pass — and when the published
                # value is unchanged too, so does its verified state.
                entry = _SharedEntry(array, shared, prev.crc)
                same_value = (shared is prev.value
                              or (not isinstance(shared, np.ndarray)
                                  and shared == prev.value))
                entry.verified = (prev.verified and not corrupted
                                  and same_value)
            else:
                # The process engine already stamped the handle with the
                # source checksum; reuse it rather than re-hashing.
                crc = getattr(shared, "crc", None)
                if crc is None:
                    crc = crc32_array(array)
                entry = _SharedEntry(array, shared, int(crc))
            self._shared[key] = entry
        return shared

    def _publish(self, key: str, array: np.ndarray) -> Any:
        """Engine-specific publication; in-process engines share by
        reference."""
        return array

    # -- shared-operand integrity --------------------------------------------

    def _corrupt_shared(self, key: str, shared: Any, offset: int) -> Any:
        """Apply an injected byte flip to the published value (chaos seam).

        In-process engines corrupt a *copy* so the caller's source array
        stays pristine (that is what repair restores from); the process
        engine overrides this to poke the shared-memory segment instead.
        """
        if not isinstance(shared, np.ndarray):
            return shared
        bad = np.array(shared, copy=True)
        raw = bad.reshape(-1).view(np.uint8)
        raw[min(offset, raw.size - 1)] ^= np.uint8(1)
        return bad

    def _shared_view(self, key: str, entry: _SharedEntry) -> np.ndarray:
        """The bytes tasks will actually read for a published operand."""
        return entry.value

    def _repair_shared(self, key: str, entry: _SharedEntry) -> None:
        """Restore a corrupted published value from its pristine source."""
        if isinstance(entry.value, np.ndarray) \
                and entry.value is not entry.source:
            np.copyto(entry.value, entry.source)

    def _verify_shared(self) -> None:
        """CRC-check every published operand before dispatching tasks.

        Runs at the top of :meth:`map` under ``integrity != "off"``.  Each
        published generation is verified once (re-sharing re-arms the
        check).  ``verify`` raises :class:`~repro.errors.IntegrityError`;
        ``repair`` restores the segment from the retained source array and
        records the repair as host events.
        """
        if self.integrity == "off" or not self._shared:
            return
        for key in sorted(self._shared):
            entry = self._shared[key]
            if entry.verified:
                continue
            if crc32_array(self._shared_view(key, entry)) != entry.crc:
                self._record(
                    "integrity",
                    f"CRC32 mismatch in shared operand {key!r}: published "
                    f"bytes differ from the source array",
                )
                if self.integrity != "repair":
                    raise IntegrityError(
                        f"shared operand {key!r} failed CRC32 verification "
                        f"before task start",
                        location=f"share:{key}",
                    )
                self._repair_shared(key, entry)
                if crc32_array(self._shared_view(key, entry)) != entry.crc:
                    raise IntegrityError(
                        f"shared operand {key!r} still corrupt after repair "
                        f"from source",
                        location=f"share:{key}",
                    )
                self._record(
                    "integrity_repair",
                    f"shared operand {key!r} restored from its source array",
                )
            entry.verified = True

    # -- map/combine/reduce contract ----------------------------------------

    def reduce_partials(self, partials: Sequence[Any],
                        combine: CombineFn = combine_partials,
                        topology: ReduceLike = None) -> Any:
        """Reduce ordered partials under a deterministic merge topology.

        The topology's schedule is a pure function of ``len(partials)``
        (see :mod:`repro.runtime.reduce`), so the merge order — and hence
        the bits — never depends on thread timing:

        * a non-pooled topology (serial, the default) folds inline in the
          caller, issuing **no** task ids and running **no** chaos hooks —
          exactly the hand-rolled loop this method replaced, preserving
          the pre-refactor task-id stream bit-for-bit;
        * a pooled topology (tree) runs each round's independent merges as
          real engine tasks via :meth:`map` — the TaskPolicy retry ladder,
          slot quarantine, and chaos hooks all apply, and task ids are
          issued in canonical slot order per round, so fault/chaos plans
          replay identically across engines and worker counts.

        ``combine`` must be pure and non-mutating (retries re-run it on
        the original operands).  Combines never charge the ledger — the
        executors charge modelled reduction costs in canonical order
        outside engine tasks (reprolint L201).
        """
        topo = resolve_reduce(topology)
        verifying = self.integrity != "off"
        slots: List[Any] = list(partials)
        n = len(slots)
        if n == 0:
            raise ConfigurationError("cannot reduce zero partials")
        if n == 1:
            if verifying:
                verify_partial(slots[0], where="final fold")
            return slots[0]
        schedule = topo.schedule(n)
        winner = validate_schedule(schedule, n)
        if not topo.pooled:
            for round_ in schedule:
                for dst, src in round_:
                    if verifying:
                        # Leaves were CRC-verified at the map boundary and
                        # intermediate results never leave this frame, so
                        # only the per-node check row is re-validated here.
                        slots[dst] = verified_combine(
                            combine, slots[dst], slots[src],
                            where="serial fold", trust_operands=True)
                    else:
                        slots[dst] = combine(slots[dst], slots[src])
                    slots[src] = None
            if verifying:
                verify_partial(slots[winner], where="final fold")
            return slots[winner]

        merge = functools.partial(
            _combine_pair_verified if verifying else _combine_pair, combine)
        for round_ in schedule:
            pairs = [(slots[dst], slots[src]) for dst, src in round_]
            merged = self.map(merge, pairs)
            merge_ids = list(self._last_map_ids)
            for pos, ((dst, src), value) in enumerate(zip(round_, merged)):
                if verifying:
                    value = self._verify_merged(
                        combine, slots[dst], slots[src], value,
                        merge_ids[pos] if pos < len(merge_ids) else -1)
                slots[dst] = value
                slots[src] = None
        if verifying:
            verify_partial(slots[winner], where="final fold")
        return slots[winner]

    def _verify_merged(self, combine: CombineFn, a: Any, b: Any, value: Any,
                       task_id: int) -> Any:
        """Verify one pooled merge's output; recompute inline under repair.

        A tree-combine node's output can be corrupted after the merge task
        sealed it (bitflip chaos, pickle transport).  Both operand slots
        are still alive in the caller, so the smallest possible repair is
        an inline recompute of exactly this subtree — no task re-runs, no
        descent into the operands, which were themselves verified inside
        the merge task.
        """
        try:
            verify_partial(value, where=f"tree merge output (task {task_id})")
            return value
        except IntegrityError:
            self._record(
                "integrity",
                f"corrupt merge output detected at tree-combine node "
                f"(task {task_id})",
            )
            if self.integrity != "repair":
                raise
        value = verified_combine(combine, a, b, where="tree merge repair")
        self._record(
            "integrity_repair",
            f"tree-combine node (task {task_id}) recomputed inline from "
            f"its verified operands",
        )
        return value

    def map_reduce(self, fn: Callable[[_T], Any], items: Iterable[_T],
                   combine: CombineFn = combine_partials,
                   topology: ReduceLike = None,
                   return_partials: bool = False) -> Any:
        """Map ``fn`` over ``items`` and reduce the partials in one seam.

        Equivalent to ``reduce_partials(self.map(fn, items), combine,
        topology)``; with ``return_partials=True`` the result is the pair
        ``(reduced, partials)`` for callers whose cost model also needs
        the individual per-block partials.  This is the canonical merge
        path for every Assign+Accumulate call site — reprolint rule D106
        flags hand-rolled accumulation loops over ``engine.map`` results.
        """
        work: Sequence[_T] = list(items)
        partials = self.map(fn, work)
        if self.integrity != "off":
            partials = self._verify_map_partials(fn, work, partials)
        reduced = self.reduce_partials(partials, combine, topology)
        if return_partials:
            return reduced, partials
        return reduced

    def _verify_map_partials(self, fn: Callable[[_T], Any],
                             work: Sequence[_T],
                             partials: List[Any]) -> List[Any]:
        """Verify every sealed leaf partial; recompute corrupt ones under
        repair.

        Detection localises corruption to a single block, so repair re-runs
        exactly that block's task — at attempt >= 1, where the attempt-
        gated chaos kinds are clean unless the plan models *persistent*
        corruption (``kills > 1``).  The recompute budget is the ordinary
        ``TaskPolicy.max_retries``; exhausting it records an
        ``integrity_quarantine`` event and escalates the (transient)
        :class:`~repro.errors.IntegrityError` to the caller's recovery
        policy — checkpoint rollback or replanning.
        """
        task_ids = list(self._last_map_ids)
        out = list(partials)
        for index, partial in enumerate(out):
            try:
                verify_partial(partial, where=f"map partial {index}")
                continue
            except IntegrityError:
                task_id = task_ids[index] if index < len(task_ids) else -1
                self._record(
                    "integrity",
                    f"corrupt partial detected in map output "
                    f"(partial {index}, task {task_id})",
                )
                if self.integrity != "repair":
                    raise
            out[index] = self._repair_partial(fn, work[index], task_id, index)
        return out

    def _repair_partial(self, fn: Callable[[_T], Any], item: _T,
                        task_id: int, index: int) -> Any:
        """Recompute one corrupt block under the TaskPolicy budget."""
        budget = max(1, self.policy.max_retries)
        for attempt in range(1, budget + 1):
            candidate = self._run_serial_task(fn, item, task_id,
                                              start_attempt=attempt)
            try:
                verify_partial(candidate,
                               where=f"recomputed partial {index}")
            except IntegrityError:
                continue
            self._record(
                "integrity_repair",
                f"partial {index} (task {task_id}) recomputed cleanly on "
                f"attempt {attempt}",
            )
            return candidate
        self._record(
            "integrity_quarantine",
            f"partial {index} (task {task_id}) still corrupt after "
            f"{budget} recomputes; escalating to the recovery policy",
        )
        raise IntegrityError(
            f"persistent corruption in partial {index} (task {task_id}): "
            f"{budget} recomputes all failed verification",
            location=f"partial:{index}",
        )

    # -- host-event plumbing -------------------------------------------------

    def _record(self, kind: str, detail: str, seconds: float = 0.0) -> None:
        with self._events_lock:
            self._events.append((kind, detail, float(seconds)))

    def drain_events(self) -> List[Tuple[str, str, float]]:
        """Return and clear pending ``(kind, detail, seconds)`` host events."""
        with self._events_lock:
            events, self._events = self._events, []
        return events

    # -- task execution ------------------------------------------------------

    def _issue_task_ids(self, n: int) -> range:
        """Globally-ordered task ids, assigned at submission time.

        Ids are a pure function of submission order, never of completion
        order, so chaos decisions and retry jitter keyed on them replay
        identically across engines and worker counts.
        """
        with self._counter_lock:
            start = self._task_counter
            self._task_counter += n
        return range(start, start + n)

    def _attempt(self, fn: Callable[[_T], _R], item: _T, task_id: int,
                 attempt: int) -> _R:
        """One attempt at one task, with the chaos hooks around it.

        Under ``integrity != "off"`` the result is sealed (ABFT checksum
        stamped) *between* task execution and the post-task chaos hook:
        a ``bitflip_partial`` corruption therefore lands on an
        already-sealed carrier, exactly like corruption in transit, and
        the stale checksum betrays it downstream.
        """
        if self.chaos is not None:
            self.chaos.before_task(task_id, attempt, self._record)
        result = fn(item)
        if self.integrity != "off":
            seal_partial(result)
        if self.chaos is not None:
            result = self.chaos.after_task(task_id, attempt, result,
                                           self._record)
        return result

    def _run_serial_task(self, fn: Callable[[_T], _R], item: _T,
                         task_id: int, start_attempt: int = 0) -> _R:
        """Inline execution with the bounded-retry policy (no timeout).

        ``start_attempt`` lets the process engine continue a task's ladder
        inline after pool-side failures: chaos hooks are attempt-gated, so
        a re-run at attempt ``n`` sees exactly what a pool re-run would.
        """
        attempt = start_attempt
        while True:
            try:
                return self._attempt(fn, item, task_id, attempt)
            except FaultError:
                # Modelled machine faults belong to the recovery policies,
                # not to host retries.
                raise
            except _QuarantinedSlot:  # pragma: no cover - inline never
                raise
            except Exception as exc:
                attempt += 1
                if attempt > self.policy.max_retries:
                    raise
                delay = self.policy.backoff_delay(task_id, attempt)
                self._record(
                    "task_retry",
                    f"task {task_id} attempt {attempt} after "
                    f"{type(exc).__name__}: {exc}",
                    delay,
                )
                if delay > 0:
                    time.sleep(delay)


class SerialEngine(ExecutionEngine):
    """In-process loop — the reference scheduling."""

    name = "serial"
    workers = 1

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        work: Sequence[_T] = list(items)
        task_ids = self._issue_task_ids(len(work))
        self._last_map_ids = task_ids
        self._verify_shared()
        return [self._run_serial_task(fn, item, tid)
                for item, tid in zip(work, task_ids)]


# One shared pool per worker count.  Pools are processwide because
# ThreadPoolExecutor keeps its idle threads alive until shutdown: a pool per
# engine instance would leak a thread set per fit() call.
_POOLS: Dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _shared_pool(workers: int) -> ThreadPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix=f"repro-engine-{workers}",
            )
            _POOLS[workers] = pool
        return pool


def shutdown_pools(wait: bool = True) -> None:
    """Shut down every shared pool (test teardown + interpreter exit).

    ``wait=False`` is used by the :mod:`atexit` hook so a straggler thread
    abandoned by a task timeout can never hang interpreter exit.  Also
    stops the process engine's worker pools and drains every live
    :class:`~repro.runtime.shm.SharedArena`, so a normal interpreter exit
    leaks no ``/dev/shm`` segment (a SIGKILL'd parent falls back to the
    stdlib resource tracker — see :mod:`repro.runtime.shm`).
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=wait, cancel_futures=not wait)
    # The process engine and arena modules import this module at load time,
    # so reach them through sys.modules: importing them *here* would be
    # pointless when they were never loaded — and impossible from the
    # atexit hook, where fresh imports are forbidden.
    process_engine = sys.modules.get("repro.runtime.process_engine")
    if process_engine is not None:
        process_engine.shutdown_process_pools(wait=wait)
    shm = sys.modules.get("repro.runtime.shm")
    if shm is not None:
        shm.drain_arenas()


# Cached pools must never outlive the interpreter's will to exit: a hung
# worker slot (see ThreadEngine timeouts) would otherwise block the join.
atexit.register(shutdown_pools, wait=False)


class ThreadEngine(ExecutionEngine):
    """Thread-pool scheduling for the GIL-releasing block kernels.

    Parameters
    ----------
    workers:
        Pool width; ``None`` uses ``os.cpu_count()``.  ``workers=1``
        degenerates to the in-process loop (no pool is touched), so the
        engine is safe to select unconditionally.
    policy:
        :class:`TaskPolicy` for retries/timeouts/quarantine; None builds
        one from the ``REPRO_TASK_RETRIES``/``REPRO_TASK_TIMEOUT``
        environment.

    Robustness behaviour (all recorded as host events):

    * a failed task attempt is retried up to ``policy.max_retries`` times
      with jittered exponential backoff, inline in the collecting thread;
    * a task exceeding ``policy.timeout_s`` marks its slot hung, is
      speculatively re-run, and the straggler's result is discarded;
    * a slot that accumulates ``policy.quarantine_after`` failures is
      quarantined — it refuses further tasks, which re-run elsewhere;
    * when hung + quarantined slots exhaust the pool, the engine
      degrades (stickily) to inline serial execution.

    None of this changes results: every re-run executes the identical
    pure block function, and results return in submission order.
    """

    name = "thread"

    def __init__(self, workers: Optional[int] = None,
                 policy: Optional[TaskPolicy] = None, chaos=None,
                 integrity: Optional[str] = None) -> None:
        super().__init__(policy=policy, chaos=chaos, integrity=integrity)
        if workers is None:
            workers = os.cpu_count() or 1
        workers = int(workers)
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._state_lock = threading.Lock()
        self._slot_failures: Dict[int, int] = {}
        self._quarantined: set = set()
        self._hung = 0
        self._degraded = False

    # -- pool-health bookkeeping --------------------------------------------

    @property
    def healthy_slots(self) -> int:
        """Worker slots neither hung on a straggler nor quarantined."""
        with self._state_lock:
            return self.workers - self._hung - len(self._quarantined)

    @property
    def degraded(self) -> bool:
        """True once the engine has fallen back to inline serial execution."""
        return self._degraded

    def _note_slot_failure(self) -> None:
        ident = threading.get_ident()
        with self._state_lock:
            count = self._slot_failures.get(ident, 0) + 1
            self._slot_failures[ident] = count
            if (count >= self.policy.quarantine_after
                    and ident not in self._quarantined):
                self._quarantined.add(ident)
                quarantined = True
            else:
                quarantined = False
        if quarantined:
            self._record(
                "quarantine",
                f"worker slot {ident} quarantined after {count} failures",
            )
        self._maybe_degrade()

    def _note_hung_slot(self) -> None:
        with self._state_lock:
            self._hung += 1
        self._maybe_degrade()

    def _maybe_degrade(self) -> None:
        if not self._degraded and self.healthy_slots < 1:
            self._degraded = True
            self._record(
                "degraded_serial",
                f"thread pool exhausted ({self.workers} workers, "
                f"{self._hung} hung, {len(self._quarantined)} quarantined); "
                f"falling back to inline serial execution",
            )

    # -- task execution ------------------------------------------------------

    def _pool_attempt(self, fn: Callable[[_T], _R], item: _T, task_id: int,
                      attempt: int) -> _R:
        # The quarantine check precedes the chaos hooks so a refused task
        # consumes no chaos decision — its re-run elsewhere sees the same
        # (task_id, attempt) and therefore the same injected behaviour.
        if threading.get_ident() in self._quarantined:
            raise _QuarantinedSlot()
        try:
            return self._attempt(fn, item, task_id, attempt)
        except FaultError:
            raise
        except Exception:
            self._note_slot_failure()
            raise

    def _collect(self, pool: ThreadPoolExecutor, fn: Callable[[_T], _R],
                 item: _T, task_id: int, future) -> _R:
        """Resolve one task's attempt-0 future, driving the retry ladder."""
        attempt = 0
        timeouts = 0
        while True:
            if future is not None:
                try:
                    return future.result(timeout=self.policy.timeout_s)
                except _FuturesTimeout:
                    timeouts += 1
                    self._note_hung_slot()
                    self._record(
                        "task_timeout",
                        f"task {task_id} attempt {attempt} still running "
                        f"after {self.policy.timeout_s:g}s; speculative "
                        f"re-run",
                        self.policy.timeout_s or 0.0,
                    )
                    if timeouts > self.policy.max_retries:
                        raise TaskTimeoutError(
                            f"task {task_id} timed out on {timeouts} "
                            f"attempts ({self.policy.timeout_s:g}s each)"
                        ) from None
                    # Speculative re-execution: same (task_id, attempt) so
                    # a chaos slow-block decision is not re-rolled; the
                    # straggler's eventual result is simply discarded.
                    future = None
                    continue
                except _QuarantinedSlot:
                    # Not a real attempt — re-run at the same attempt number.
                    future = None
                    continue
                except FaultError:
                    raise
                except Exception as exc:
                    attempt += 1
                    if attempt > self.policy.max_retries:
                        raise
                    delay = self.policy.backoff_delay(task_id, attempt)
                    self._record(
                        "task_retry",
                        f"task {task_id} attempt {attempt} after "
                        f"{type(exc).__name__}: {exc}",
                        delay,
                    )
                    if delay > 0:
                        time.sleep(delay)
                    future = None
                    continue
            # Re-runs execute inline in the collecting thread: deterministic,
            # immune to further pool sickness, and exempt from timeouts
            # (inline code cannot be preempted).
            try:
                return self._attempt(fn, item, task_id, attempt)
            except FaultError:
                raise
            except Exception as exc:
                attempt += 1
                if attempt > self.policy.max_retries:
                    raise
                delay = self.policy.backoff_delay(task_id, attempt)
                self._record(
                    "task_retry",
                    f"task {task_id} attempt {attempt} after "
                    f"{type(exc).__name__}: {exc}",
                    delay,
                )
                if delay > 0:
                    time.sleep(delay)

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        work: Sequence[_T] = list(items)
        task_ids = self._issue_task_ids(len(work))
        self._last_map_ids = task_ids
        self._verify_shared()
        if self.workers == 1 or len(work) <= 1 or self._degraded:
            return [self._run_serial_task(fn, item, tid)
                    for item, tid in zip(work, task_ids)]
        pool = _shared_pool(self.workers)
        futures = [pool.submit(self._pool_attempt, fn, item, tid, 0)
                   for item, tid in zip(work, task_ids)]
        # Collect in submission order regardless of completion order —
        # exactly the determinism contract.
        return [self._collect(pool, fn, item, tid, fut)
                for item, tid, fut in zip(work, task_ids, futures)]


#: Anything :func:`resolve_engine` accepts.
EngineLike = Union[str, ExecutionEngine, None]

#: Environment overrides, consulted only when ``engine=None`` is passed
#: (declared in :mod:`repro.analysis.envvars`; string aliases for callers).
ENGINE_ENV = ENV_ENGINE.name
WORKERS_ENV = ENV_WORKERS.name


def resolve_engine(engine: EngineLike = None,
                   workers: Optional[int] = None,
                   integrity: Optional[str] = None) -> ExecutionEngine:
    """Turn an engine name (or ready instance) into an :class:`ExecutionEngine`.

    ``engine=None`` consults ``REPRO_ENGINE`` (default ``"serial"``) and, if
    ``workers`` is also None, ``REPRO_WORKERS``; empty or whitespace-only
    values count as unset (CI matrices export empty strings for the legs
    that don't use a knob).  ``workers > 1`` alone implies the thread
    engine whether it arrives as an argument or via ``REPRO_WORKERS``, so
    ``HierarchicalKMeans(..., workers=4)`` and ``REPRO_WORKERS=4`` both do
    what they say.

    Engines built here (not instance passthrough) also consult
    ``REPRO_CHAOS`` and attach a seeded host-chaos injector when it is set
    — this is how the CI chaos leg runs the whole suite under injected
    host faults — and ``REPRO_INTEGRITY`` for the default integrity mode
    the same way.  An explicit ``integrity=`` always wins, including over
    a passed-through instance's current mode.

    ``engine="process"`` degrades gracefully rather than crash: on hosts
    without the fork start method, or with a single CPU and no explicit
    worker count, the serial engine comes back carrying an
    ``engine_fallback`` host event.  An explicit ``workers>1`` always gets
    a real process pool (oversubscription is how single-CPU CI exercises
    it).
    """
    if isinstance(engine, ExecutionEngine):
        if workers is not None and workers != engine.workers:
            raise ConfigurationError(
                f"workers={workers} conflicts with the provided engine "
                f"instance ({engine.workers} workers); pass one or the other"
            )
        if integrity is not None:
            engine.integrity = resolve_integrity(integrity)
        return engine
    if engine is None:
        if workers is not None and workers > 1:
            engine = "thread"
        else:
            env_engine = read_str(ENV_ENGINE)
            if workers is None:
                workers = read_int(ENV_WORKERS)
            if env_engine is not None:
                engine = env_engine
            elif workers is not None and workers > 1:
                engine = "thread"
            else:
                engine = "serial"
    from .chaos import resolve_chaos  # late import: chaos imports errors only
    chaos = resolve_chaos()
    mode = resolve_integrity(integrity)
    if engine == "serial":
        if workers is not None and workers > 1:
            raise ConfigurationError(
                f"the serial engine is single-threaded; workers={workers} "
                f"requires engine=\"thread\""
            )
        return SerialEngine(chaos=chaos, integrity=mode)
    if engine == "thread":
        return ThreadEngine(workers, chaos=chaos, integrity=mode)
    if engine == "process":
        # Late imports: process_engine imports this module at load time.
        from .host import _fork_available
        from .process_engine import ProcessEngine
        if not _fork_available():
            fallback = SerialEngine(chaos=chaos, integrity=mode)
            fallback._record(
                "engine_fallback",
                "REPRO_ENGINE=process needs the fork start method, which "
                "this host lacks; degrading to the serial engine",
            )
            return fallback
        if workers is None:
            workers = os.cpu_count() or 1
        if workers <= 1:
            fallback = SerialEngine(chaos=chaos, integrity=mode)
            fallback._record(
                "engine_fallback",
                f"engine=process with workers={workers} has no parallelism "
                f"to offer; degrading to the serial engine",
            )
            return fallback
        return ProcessEngine(workers, chaos=chaos, integrity=mode)
    raise ConfigurationError(
        f"engine must be an ExecutionEngine instance or one of {ENGINES}, "
        f"got {engine!r}"
    )
