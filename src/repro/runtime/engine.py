"""Pluggable execution engine: how per-block work runs on the *host*.

Everything in :mod:`repro.core` charges **modelled** Sunway seconds; this
module decides how the simulator's own numerics are scheduled on the machine
actually running the Python process.  The Assign+Accumulate dataflow of every
partition level is embarrassingly parallel over sample blocks — the paper's
whole point — so the executors hand each block to an
:class:`ExecutionEngine` and merge the per-block ``(sums, counts)`` partials
in fixed block order.

Two engines ship:

``serial``
    A plain in-process loop.  The reference engine.

``thread``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor`.  The block
    kernels are NumPy/BLAS calls that release the GIL, so block-sharded
    GEMM assignment scales on real cores without any pickling or forking.

Determinism contract: an engine only changes *scheduling*, never results.
Both engines run the identical per-block function over the identical block
list and return results in submission order; because the callers merge the
float partials in that fixed order, centroids, assignments, modelled ledger
seconds, and fault-event replays are bit-identical across engines and
worker counts.  ``tests/runtime/test_engine.py`` enforces this.

Selection: ``HierarchicalKMeans(..., engine="thread", workers=4)``, the same
knobs on every executor and on :func:`~repro.core.lloyd.lloyd`, or the
``REPRO_ENGINE`` / ``REPRO_WORKERS`` environment variables (read only when
no explicit ``engine=`` is given — this is how CI runs the whole test suite
under the thread engine).
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar, Union

from ..errors import ConfigurationError

#: Names accepted by :func:`resolve_engine`.
ENGINES = ("serial", "thread")

_T = TypeVar("_T")
_R = TypeVar("_R")


class ExecutionEngine(ABC):
    """Maps a function over work items; subclasses choose the scheduling."""

    #: Registry name of the engine ("serial", "thread", ...).
    name: str = ""
    #: Host threads the engine may occupy (1 for the serial engine).
    workers: int = 1

    @abstractmethod
    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        """Apply ``fn`` to every item; results in submission order.

        Implementations must not reorder results — callers rely on the
        fixed order to merge float partials deterministically.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialEngine(ExecutionEngine):
    """In-process loop — the reference scheduling."""

    name = "serial"
    workers = 1

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        return [fn(item) for item in items]


# One shared pool per worker count.  Pools are processwide because
# ThreadPoolExecutor keeps its idle threads alive until shutdown: a pool per
# engine instance would leak a thread set per fit() call.
_POOLS: Dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _shared_pool(workers: int) -> ThreadPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix=f"repro-engine-{workers}",
            )
            _POOLS[workers] = pool
        return pool


def shutdown_pools() -> None:
    """Shut down every shared pool (test teardown helper)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)


class ThreadEngine(ExecutionEngine):
    """Thread-pool scheduling for the GIL-releasing block kernels.

    Parameters
    ----------
    workers:
        Pool width; ``None`` uses ``os.cpu_count()``.  ``workers=1``
        degenerates to the in-process loop (no pool is touched), so the
        engine is safe to select unconditionally.
    """

    name = "thread"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        workers = int(workers)
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        work: Sequence[_T] = list(items)
        if self.workers == 1 or len(work) <= 1:
            return [fn(item) for item in work]
        # Executor.map yields results in submission order regardless of
        # completion order — exactly the determinism contract.
        return list(_shared_pool(self.workers).map(fn, work))


#: Anything :func:`resolve_engine` accepts.
EngineLike = Union[str, ExecutionEngine, None]

#: Environment overrides, consulted only when ``engine=None`` is passed.
ENGINE_ENV = "REPRO_ENGINE"
WORKERS_ENV = "REPRO_WORKERS"


def resolve_engine(engine: EngineLike = None,
                   workers: Optional[int] = None) -> ExecutionEngine:
    """Turn an engine name (or ready instance) into an :class:`ExecutionEngine`.

    ``engine=None`` consults ``REPRO_ENGINE`` (default ``"serial"``) and, if
    ``workers`` is also None, ``REPRO_WORKERS``; empty or whitespace-only
    values count as unset (CI matrices export empty strings for the legs
    that don't use a knob).  ``workers > 1`` alone implies the thread
    engine whether it arrives as an argument or via ``REPRO_WORKERS``, so
    ``HierarchicalKMeans(..., workers=4)`` and ``REPRO_WORKERS=4`` both do
    what they say.
    """
    if isinstance(engine, ExecutionEngine):
        if workers is not None and workers != engine.workers:
            raise ConfigurationError(
                f"workers={workers} conflicts with the provided engine "
                f"instance ({engine.workers} workers); pass one or the other"
            )
        return engine
    if engine is None:
        if workers is not None and workers > 1:
            engine = "thread"
        else:
            env_engine = os.environ.get(ENGINE_ENV, "").strip()
            if workers is None:
                raw = os.environ.get(WORKERS_ENV, "").strip()
                if raw:
                    try:
                        workers = int(raw)
                    except ValueError:
                        raise ConfigurationError(
                            f"{WORKERS_ENV} must be an integer, got {raw!r}"
                        ) from None
            if env_engine:
                engine = env_engine
            elif workers is not None and workers > 1:
                engine = "thread"
            else:
                engine = "serial"
    if engine == "serial":
        if workers is not None and workers > 1:
            raise ConfigurationError(
                f"the serial engine is single-threaded; workers={workers} "
                f"requires engine=\"thread\""
            )
        return SerialEngine()
    if engine == "thread":
        return ThreadEngine(workers)
    raise ConfigurationError(
        f"engine must be an ExecutionEngine instance or one of {ENGINES}, "
        f"got {engine!r}"
    )
