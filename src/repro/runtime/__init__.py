"""Simulated parallel runtime: time ledger, DMA, register comm, MPI.

The runtime reproduces the three transports the paper's implementation uses
and prices them with the machine's published parameters:

* :mod:`repro.runtime.dma` — main-memory <-> LDM staging at 32 GB/s,
* :mod:`repro.runtime.regcomm` — intra-CG mesh collectives at 46.4 GB/s,
* :mod:`repro.runtime.mpi` — inter-CG/inter-node collectives over the fat
  tree at 16 GB/s (derated across supernodes),
* :mod:`repro.runtime.compute` — CPE arithmetic,
* :mod:`repro.runtime.ledger` — where every modelled second is recorded.
"""

from .chaos import (
    CHAOS_KINDS,
    ChaosInjector,
    ChaosPlan,
    ChaosSpec,
    parse_chaos_plan,
    resolve_chaos,
)
from .collectives import barrier, exscan_sum, gatherv, reduce_scatter_sum, scatterv
from .compute import ComputeModel, DEFAULT_EFFICIENCY, distance_flops, update_flops
from .dma import DMAEngine
from .engine import (
    ENGINES,
    ExecutionEngine,
    SerialEngine,
    TaskPolicy,
    ThreadEngine,
    resolve_engine,
    resolve_task_policy,
    shutdown_pools,
)
from .faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
    resolve_fault_plan,
)
from .ledger import (
    CATEGORIES,
    IterationBreakdown,
    LedgerProtocol,
    NullLedger,
    PhaseRecord,
    TimeLedger,
)
from .mpi import ALGORITHMS, SimComm, world_comm
from .regcomm import RegisterComm
from .supervisor import (
    HostEvent,
    RunSupervisor,
    resolve_supervisor,
)

__all__ = [
    "ALGORITHMS",
    "barrier",
    "exscan_sum",
    "gatherv",
    "reduce_scatter_sum",
    "scatterv",
    "CATEGORIES",
    "CHAOS_KINDS",
    "ChaosInjector",
    "ChaosPlan",
    "ChaosSpec",
    "ComputeModel",
    "DEFAULT_EFFICIENCY",
    "DMAEngine",
    "ENGINES",
    "ExecutionEngine",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "HostEvent",
    "IterationBreakdown",
    "LedgerProtocol",
    "NullLedger",
    "PhaseRecord",
    "RegisterComm",
    "RunSupervisor",
    "SerialEngine",
    "SimComm",
    "TaskPolicy",
    "ThreadEngine",
    "TimeLedger",
    "distance_flops",
    "parse_chaos_plan",
    "parse_fault_plan",
    "resolve_chaos",
    "resolve_fault_plan",
    "resolve_engine",
    "resolve_supervisor",
    "resolve_task_policy",
    "shutdown_pools",
    "update_flops",
    "world_comm",
]
