"""Deterministic map/combine/reduce contract for the execution engine.

Every partition level used to follow ``engine.map(...)`` with a hand-rolled
*serial* fold of ``(sums, counts)`` partials — five copies of the same loop,
and the Amdahl bottleneck a process-pool engine would expose.  This module
replaces the idiom with an explicit contract:

``combine``
    A pure, associative, **non-mutating** binary merge of two partials.
    :func:`combine_partials` handles the shapes the executors produce
    (tuples of ndarrays, bare ndarrays, numbers) and defers to a partial's
    own ``combine`` method when it has one (see :class:`Reducible`).

``topology``
    *Which* pairs merge, and in what order — a :class:`ReduceTopology`
    whose :meth:`~ReduceTopology.schedule` is a **pure function of the
    block count**.  Thread timing never picks the merge order, so a
    reduction is bit-reproducible by construction: the same partials under
    the same topology give the same bits on any engine, at any worker
    count.

Two reduction shapes ship (mirroring the two engines):

``serial``
    The left fold ``(((p0 + p1) + p2) + ...)`` — exactly the loop the call
    sites used to hand-roll, so it is the bit-identical default.  Combines
    run inline in the caller; no engine tasks are issued.

``tree``
    A balanced binary tree over the block slots: round r merges slot
    ``i + 2^r`` into slot ``i`` for every ``i`` divisible by ``2^(r+1)``.
    Each round's merges are independent, so
    :meth:`~repro.runtime.engine.ExecutionEngine.map_reduce` runs them as
    real engine tasks — on the pool, under the full
    :class:`~repro.runtime.engine.TaskPolicy` retry/quarantine ladder and
    the chaos hooks.  Task ids are issued per round in canonical slot
    order, so chaos plans and retry jitter replay bit-identically across
    engines and worker counts (the same invariant the map phase has).

:class:`GroupedTopology` composes an inner per-group reduction with an
outer reduction over the group winners — the shape Level 1/2 use so the
within-CG merge and the cross-CG allreduce keep today's exact operation
order.

Ledger note: combines charge **nothing** here.  Modelled reduction costs
(register-communication and MPI allreduce seconds) stay with the
executors, which charge them in canonical order outside engine tasks —
reprolint rule L201 forbids charging from inside a mapped task, and the
tree seam keeps that contract.

Selection: ``reduce="tree"`` on the facade/executors/:func:`lloyd`/CLI, or
the ``REPRO_REDUCE`` environment variable (consulted only when no explicit
``reduce=`` is given; empty/whitespace counts as unset).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from ..analysis.envvars import ENV_REDUCE, read_str
from ..errors import ConfigurationError

#: Names accepted by :func:`resolve_reduce`.
REDUCTIONS = ("serial", "tree")

#: Environment override, consulted only when ``reduce=None`` is passed
#: (declared in :mod:`repro.analysis.envvars`; string alias for callers).
REDUCE_ENV = ENV_REDUCE.name

#: One pairwise merge: (destination slot, source slot).  The source is
#: consumed; the destination holds the combined partial afterwards.
Merge = Tuple[int, int]

#: One round of independent merges (disjoint slots — safe to run
#: concurrently as engine tasks).
Round = Tuple[Merge, ...]

#: A full reduction plan: rounds run in order, merges within a round are
#: unordered (independent).
Schedule = Tuple[Round, ...]

#: A binary combine over partials.
CombineFn = Callable[[Any, Any], Any]


@runtime_checkable
class Reducible(Protocol):
    """A partial that knows how to merge with a peer.

    ``combine`` must be pure and non-mutating: it returns a *new* partial
    and leaves both operands untouched, so a partial can safely feed
    several speculative merges (engine retries re-run combines).
    Associativity is required for tree topologies to be well-defined;
    bitwise commutativity is **not** required — schedules only ever merge
    ``(dst, src)`` with ``dst < src``, preserving block order.
    """

    def combine(self, other: Any) -> Any:
        """Return the merge of ``self`` and ``other`` (a new object)."""
        ...


class SumCountPartial:
    """Per-block ``(sums, counts)`` accumulator partial.

    The canonical payload of the Assign+Accumulate dataflow: ``sums`` is
    the (k, d) per-centroid vector sum over the block, ``counts`` the
    (k,) member tally.

    ABFT fields (all carriers): ``crc`` is a CRC32 over the payload bytes
    stamped by :func:`~repro.runtime.integrity.seal_partial` when the
    integrity layer is on (None = unsealed, verification passes
    vacuously), and — for the sums-bearing carriers — ``check_row`` is
    the additive checksum row ``sums.sum(axis=0)`` whose preservation
    every combine is checked against.  ``combine`` returns *unsealed*
    objects; the verifying combine wrapper re-seals them.
    """

    __slots__ = ("sums", "counts", "crc", "check_row")

    def __init__(self, sums: np.ndarray, counts: np.ndarray) -> None:
        self.sums = sums
        self.counts = counts
        self.crc: Optional[int] = None
        self.check_row: Optional[np.ndarray] = None

    def _integrity_payload(self) -> Tuple[Any, ...]:
        return (self.sums, self.counts)

    def combine(self, other: "SumCountPartial") -> "SumCountPartial":
        return SumCountPartial(self.sums + other.sums,
                               self.counts + other.counts)

    def __repr__(self) -> str:
        return (f"SumCountPartial(sums={self.sums.shape}, "
                f"counts={self.counts.shape})")


class InertiaPartial:
    """Per-block partial of the objective: sum of winning d^2 and count."""

    __slots__ = ("total", "n", "crc")

    def __init__(self, total: float, n: int) -> None:
        self.total = float(total)
        self.n = int(n)
        self.crc: Optional[int] = None

    def _integrity_payload(self) -> Tuple[Any, ...]:
        return (self.total, self.n)

    def combine(self, other: "InertiaPartial") -> "InertiaPartial":
        return InertiaPartial(self.total + other.total, self.n + other.n)

    @property
    def mean(self) -> float:
        """The inertia (mean winning squared distance) over the blocks."""
        return self.total / self.n

    def __repr__(self) -> str:
        return f"InertiaPartial(total={self.total!r}, n={self.n})"


class LabelPartial:
    """Labels (and winning distances) of one contiguous sample block.

    Combining adjacent blocks concatenates; the blocks must abut
    (``self.hi == other.lo``), which every schedule guarantees because
    merges always fold a later block into an earlier one.
    """

    __slots__ = ("lo", "hi", "labels", "best_d2", "crc")

    def __init__(self, lo: int, hi: int, labels: np.ndarray,
                 best_d2: np.ndarray) -> None:
        self.lo = int(lo)
        self.hi = int(hi)
        self.labels = labels
        self.best_d2 = best_d2
        self.crc: Optional[int] = None

    def _integrity_payload(self) -> Tuple[Any, ...]:
        return (self.lo, self.hi, self.labels, self.best_d2)

    def combine(self, other: "LabelPartial") -> "LabelPartial":
        if self.hi != other.lo:
            raise ConfigurationError(
                f"LabelPartial blocks must abut: [{self.lo}, {self.hi}) "
                f"then [{other.lo}, {other.hi})"
            )
        return LabelPartial(
            self.lo, other.hi,
            np.concatenate([self.labels, other.labels]),
            np.concatenate([self.best_d2, other.best_d2]),
        )

    def __repr__(self) -> str:
        return f"LabelPartial([{self.lo}, {self.hi}))"


class BlockPartial:
    """The full Assign+Accumulate payload of one contiguous sample block.

    What a block task returns when the caller needs *both* the accumulator
    sums and the per-sample assignment labels: ``sums``/``counts`` as in
    :class:`SumCountPartial`, plus the block's half-open sample range and
    its ``labels`` (and optionally the winning squared distances).  The
    whole object stays compact — labels are ``(hi - lo,)`` int32 — so it
    is cheap to ship back from a worker process.

    ``combine`` merges only the accumulator half (sums and counts add, the
    covered range widens) and **drops the labels**: concatenating labels
    inside a reduction would copy them once per tree level for no
    consumer.  Callers recover the assignment vector from the *unreduced*
    partials list instead, via :func:`scatter_labels` — a fixed-order
    scatter into preallocated arrays.
    """

    __slots__ = ("sums", "counts", "lo", "hi", "labels", "best_d2",
                 "crc", "check_row")

    def __init__(self, sums: np.ndarray, counts: np.ndarray, lo: int,
                 hi: int, labels: Optional[np.ndarray] = None,
                 best_d2: Optional[np.ndarray] = None) -> None:
        self.sums = sums
        self.counts = counts
        self.lo = int(lo)
        self.hi = int(hi)
        self.labels = labels
        self.best_d2 = best_d2
        self.crc: Optional[int] = None
        self.check_row: Optional[np.ndarray] = None

    def _integrity_payload(self) -> Tuple[Any, ...]:
        return (self.sums, self.counts, self.lo, self.hi,
                self.labels, self.best_d2)

    def combine(self, other: "BlockPartial") -> "BlockPartial":
        return BlockPartial(
            self.sums + other.sums,
            self.counts + other.counts,
            min(self.lo, other.lo),
            max(self.hi, other.hi),
        )

    def __repr__(self) -> str:
        return (f"BlockPartial([{self.lo}, {self.hi}), "
                f"sums={self.sums.shape}, counts={self.counts.shape})")


class PrunedPartial(BlockPartial):
    """A :class:`BlockPartial` extended with the pruned kernel's extras.

    Adds the block's fresh lower bounds ``lb`` (scattered back to the
    full-length array by :func:`scatter_bounds`, exactly like labels) and
    ``n_dist`` — the actual number of point-centroid distance evaluations
    the block performed, which survives the reduction as a plain sum so
    the executors can charge the ledger for work *done* under pruning.
    ``combine`` inherits the label-dropping contract of the base class and
    drops ``lb`` for the same reason: per-sample payloads are recovered
    from the unreduced partials list, never concatenated up the tree.
    """

    __slots__ = ("lb", "n_dist")

    def __init__(self, sums: np.ndarray, counts: np.ndarray, lo: int,
                 hi: int, labels: Optional[np.ndarray] = None,
                 best_d2: Optional[np.ndarray] = None,
                 lb: Optional[np.ndarray] = None,
                 n_dist: int = 0) -> None:
        super().__init__(sums, counts, lo, hi, labels, best_d2)
        self.lb = lb
        self.n_dist = int(n_dist)

    def _integrity_payload(self) -> Tuple[Any, ...]:
        return super()._integrity_payload() + (self.lb, self.n_dist)

    def combine(self, other: "BlockPartial") -> "PrunedPartial":
        return PrunedPartial(
            self.sums + other.sums,
            self.counts + other.counts,
            min(self.lo, other.lo),
            max(self.hi, other.hi),
            n_dist=self.n_dist + getattr(other, "n_dist", 0),
        )

    def __repr__(self) -> str:
        return (f"PrunedPartial([{self.lo}, {self.hi}), "
                f"n_dist={self.n_dist})")


def scatter_bounds(partials: Sequence["PrunedPartial"],
                   lb: np.ndarray) -> None:
    """Write each pruned partial's lower bounds into the full-length array.

    The bounds counterpart of :func:`scatter_labels`: fixed submission
    order, disjoint slice assignment, engine- and worker-count-independent.
    """
    for p in partials:
        if p.lb is not None:
            lb[p.lo:p.hi] = p.lb


def scatter_labels(partials: Sequence["BlockPartial"],
                   assignments: np.ndarray,
                   best_d2: Optional[np.ndarray] = None) -> None:
    """Write each block partial's labels back into the full-length arrays.

    Iterates the partials in their given (submission) order and slice-
    assigns disjoint ranges, so the result is independent of engine and
    worker count.  ``best_d2`` is filled only where both sides carry it.
    """
    for p in partials:
        if p.labels is not None:
            assignments[p.lo:p.hi] = p.labels
        if best_d2 is not None and p.best_d2 is not None:
            best_d2[p.lo:p.hi] = p.best_d2


def combine_partials(a: Any, b: Any) -> Any:
    """The default combine: merge two partials without mutating either.

    * objects with a ``combine`` method delegate to it (:class:`Reducible`),
    * tuples combine elementwise (the executors' ``(sums, counts)`` shape),
    * ndarrays and plain numbers add.

    Always returns fresh objects — the operands stay pristine, so a
    retried combine task recomputes from unpoisoned inputs.
    """
    if hasattr(a, "combine"):
        return a.combine(b)
    if isinstance(a, tuple):
        if not isinstance(b, tuple) or len(a) != len(b):
            raise ConfigurationError(
                f"cannot combine tuple partial of length {len(a)} with "
                f"{type(b).__name__}"
            )
        return tuple(combine_partials(x, y) for x, y in zip(a, b))
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return a + b
    if isinstance(a, (int, float, complex, np.number)):
        return a + b
    raise ConfigurationError(
        f"no default combine for partials of type {type(a).__name__}; "
        f"give the partial a combine() method or pass combine= explicitly"
    )


def serial_fold(partials: Sequence[Any],
                combine: CombineFn = combine_partials) -> Any:
    """Plain left fold — the reference reduction (and the serial schedule)."""
    if len(partials) == 0:
        raise ConfigurationError("cannot reduce zero partials")
    acc = partials[0]
    for p in partials[1:]:
        acc = combine(acc, p)
    return acc


class ReduceTopology:
    """Which pairs of partial slots merge, and in what order.

    A topology is stateless: :meth:`schedule` is a pure function of the
    slot count ``n``, so the merge order can never depend on thread
    timing.  ``pooled`` says whether the engine should run each round's
    combines as real engine tasks (tree) or fold inline (serial).
    """

    #: Registry name ("serial", "tree", or a composed description).
    name: str = ""
    #: True when combines should run as engine tasks (on the pool).
    pooled: bool = False

    def schedule(self, n: int) -> Schedule:
        """The merge plan for ``n`` slots: rounds of independent merges.

        Exactly ``n - 1`` merges in total; every slot except the final
        winner is consumed exactly once, and a consumed slot never
        appears again.  :func:`validate_schedule` checks these invariants.
        """
        raise NotImplementedError

    def for_groups(self, groups: Sequence[Sequence[int]]) -> "ReduceTopology":
        """This topology lifted to a grouped (two-stage) reduction.

        Used by the Level 1/2 executors: partials reduce within each group
        (a CG) first, then the group winners reduce across groups — both
        stages under this topology's shape.
        """
        return GroupedTopology(groups, inner=self, outer=self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialTopology(ReduceTopology):
    """Left-fold chain: slot i merges into slot 0, in index order.

    This is exactly the loop the call sites used to hand-roll, so it is
    the bit-identical default.  ``pooled`` is False: the engine folds
    inline, issuing no task ids — the pre-refactor task-id stream (and so
    every existing chaos/fault replay) is preserved.
    """

    name = "serial"
    pooled = False

    def schedule(self, n: int) -> Schedule:
        return tuple(((0, i),) for i in range(1, n))


class TreeTopology(ReduceTopology):
    """Balanced binary reduction tree over the slot indices.

    Round r merges slot ``i + 2^r`` into slot ``i`` for every surviving
    ``i`` with ``i % 2^(r+1) == 0`` — the textbook recursive-halving
    shape.  ``ceil(log2 n)`` rounds; merges within a round touch disjoint
    slots, so they run concurrently as engine tasks without changing the
    result: the *shape* fixes the merge order, not the thread schedule.
    """

    name = "tree"
    pooled = True

    def schedule(self, n: int) -> Schedule:
        rounds: List[Round] = []
        stride = 1
        while stride < n:
            merges = tuple(
                (dst, dst + stride)
                for dst in range(0, n - stride, 2 * stride)
            )
            if merges:
                rounds.append(merges)
            stride *= 2
        return tuple(rounds)


class GroupedTopology(ReduceTopology):
    """Two-stage reduction: within each group, then across group winners.

    ``groups`` lists the slot indices of each group, in the order the
    outer stage should see them; together the groups must partition
    ``range(n)``.  The inner topology reduces each group to its first
    slot; the outer topology then reduces those winners.  Inner rounds of
    different groups are independent, so round i of every group fuses
    into one global round (they run concurrently when pooled).

    ``GroupedTopology(groups, SerialTopology(), SerialTopology())``
    reproduces the Level 1/2 pre-refactor order exactly: per-CG left
    folds, then a left fold across CGs — the same operation sequence as
    the old per-CG ``np.sum`` + cross-CG allreduce.
    """

    def __init__(self, groups: Sequence[Sequence[int]],
                 inner: Optional[ReduceTopology] = None,
                 outer: Optional[ReduceTopology] = None) -> None:
        self.groups: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(int(s) for s in group) for group in groups
        )
        if not self.groups or any(not g for g in self.groups):
            raise ConfigurationError(
                "GroupedTopology needs at least one group and no empty "
                "groups"
            )
        self.inner = inner if inner is not None else SerialTopology()
        self.outer = outer if outer is not None else self.inner
        self.pooled = self.inner.pooled or self.outer.pooled
        self.name = f"grouped({self.inner.name}/{self.outer.name})"

    def schedule(self, n: int) -> Schedule:
        members = sorted(s for g in self.groups for s in g)
        if members != list(range(n)):
            raise ConfigurationError(
                f"GroupedTopology groups must partition range({n}); "
                f"got slots {members}"
            )
        # Stage 1: each group's inner schedule, slot-translated; round i
        # of every group fuses into one global round.
        inner_rounds: List[List[Merge]] = []
        for group in self.groups:
            for i, round_ in enumerate(self.inner.schedule(len(group))):
                while len(inner_rounds) <= i:
                    inner_rounds.append([])
                inner_rounds[i].extend(
                    (group[dst], group[src]) for dst, src in round_
                )
        # Stage 2: the group winners (each group's first slot) reduce
        # under the outer topology.
        winners = [group[0] for group in self.groups]
        outer_rounds = [
            [(winners[dst], winners[src]) for dst, src in round_]
            for round_ in self.outer.schedule(len(winners))
        ]
        return tuple(tuple(r) for r in inner_rounds + outer_rounds if r)

    def for_groups(self, groups: Sequence[Sequence[int]]) -> "ReduceTopology":
        raise ConfigurationError(
            "GroupedTopology is already grouped; build a fresh one from "
            "the base topology instead"
        )

    def __repr__(self) -> str:
        return (f"GroupedTopology({len(self.groups)} groups, "
                f"inner={self.inner.name!r}, outer={self.outer.name!r})")


def validate_schedule(schedule: Schedule, n: int) -> int:
    """Check a schedule's invariants; returns the winning slot index.

    Exactly ``n - 1`` merges; each source consumed once and never reused;
    destinations always alive.  The winner is the destination of the last
    merge (with ``n == 1``, slot 0 wins by default).
    """
    alive = set(range(n))
    merges = 0
    winner = 0
    for round_ in schedule:
        seen: set = set()
        for dst, src in round_:
            if dst not in alive or src not in alive:
                raise ConfigurationError(
                    f"schedule merges dead slot: ({dst}, {src}) with "
                    f"alive={sorted(alive)}"
                )
            if dst == src or dst in seen or src in seen:
                raise ConfigurationError(
                    f"schedule round reuses a slot: ({dst}, {src})"
                )
            seen.update((dst, src))
            merges += 1
            winner = dst
        for dst, src in round_:
            alive.discard(src)
    if merges != n - 1 or len(alive) != 1:
        raise ConfigurationError(
            f"schedule for {n} slots must have exactly {n - 1} merges "
            f"leaving one winner; got {merges} merges, "
            f"{len(alive)} survivors"
        )
    return winner


#: Anything :func:`resolve_reduce` accepts.
ReduceLike = Union[str, ReduceTopology, None]


def resolve_reduce(reduce: ReduceLike = None) -> ReduceTopology:
    """Turn a reduction name (or ready topology) into a :class:`ReduceTopology`.

    ``reduce=None`` consults ``REPRO_REDUCE`` (default ``"serial"``);
    empty or whitespace-only values count as unset, so CI matrices can
    export empty strings on the legs that don't use the knob.
    """
    if isinstance(reduce, ReduceTopology):
        return reduce
    if reduce is None:
        reduce = read_str(ENV_REDUCE) or "serial"
    if reduce == "serial":
        return SerialTopology()
    if reduce == "tree":
        return TreeTopology()
    raise ConfigurationError(
        f"reduce must be a ReduceTopology instance or one of "
        f"{REDUCTIONS}, got {reduce!r}"
    )
