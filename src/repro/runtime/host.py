"""Host-side parallel execution of the k-means kernels.

Everything in :mod:`repro.core` models *Sunway* time; this module is about
*your* machine's time: it runs the embarrassingly-parallel Assign phase
(distances + argmin + partial accumulation) across host processes, the way
an mpi4py rank-per-core prototype would, so large laptop-scale runs finish
faster without changing any numerics.

Design notes (following the mpi4py/NumPy guide idioms):

* workers receive the sample matrix once, via fork copy-on-write — the
  parent publishes ``X`` and ``C`` in module globals before forking, so no
  per-task array pickling happens for the big operands;
* each task is a contiguous sample block; results are small (per-block
  partial sums/counts/assignments) and combine exactly like the simulated
  levels combine them (same reduction order ⇒ same floats as the
  block-sequential computation);
* falls back to in-process execution when ``n_workers <= 1`` or the fork
  start method is unavailable, so callers never need a special case.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.result import KMeansResult

from ..core._common import (
    accumulate,
    assign_chunked,
    even_slices,
    update_centroids,
    validate_data,
)
from ..errors import ConfigurationError

# Worker-side globals, populated by the pool initialiser before forking.
_WORKER_X: Optional[np.ndarray] = None
_WORKER_C: Optional[np.ndarray] = None


def _init_worker(X: np.ndarray, C: np.ndarray) -> None:
    global _WORKER_X, _WORKER_C
    _WORKER_X = X
    _WORKER_C = C


def _assign_block(bounds: Tuple[int, int]
                  ) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Worker task: assign one sample block and accumulate its partials."""
    lo, hi = bounds
    assert _WORKER_X is not None and _WORKER_C is not None
    block = _WORKER_X[lo:hi]
    assignments = assign_chunked(block, _WORKER_C)
    sums, counts = accumulate(block, assignments, _WORKER_C.shape[0])
    return lo, assignments, sums, counts


def default_workers() -> int:
    """Worker count used when none is given (leave one core for the OS)."""
    return max(1, (os.cpu_count() or 2) - 1)


def parallel_assign_accumulate(
    X: np.ndarray, C: np.ndarray, n_workers: Optional[int] = None,
    blocks_per_worker: int = 4,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Assign every sample and accumulate sums/counts, in parallel.

    Returns ``(assignments, sums, counts)``.  Assignments are exact; the
    float accumulators are bit-identical to computing the *same block
    partition* sequentially (partials combine in block order), and agree
    with any other partition to fp-reassociation tolerance.

    Parameters
    ----------
    n_workers:
        Process count; ``None`` = cpu_count - 1; ``<= 1`` runs in-process.
    blocks_per_worker:
        Oversubscription factor for load balancing.
    """
    X, C = validate_data(X, C)
    if n_workers is None:
        n_workers = default_workers()
    if n_workers < 0:
        raise ConfigurationError(f"n_workers must be >= 0, got {n_workers}")
    if blocks_per_worker < 1:
        raise ConfigurationError(
            f"blocks_per_worker must be >= 1, got {blocks_per_worker}"
        )

    n = X.shape[0]
    n_blocks = max(1, min(n, n_workers * blocks_per_worker))
    blocks = [b for b in even_slices(n, n_blocks) if b[0] < b[1]]

    if n_workers <= 1 or len(blocks) == 1 or not _fork_available():
        _init_worker(X, C)
        results = [_assign_block(b) for b in blocks]
    else:
        ctx = mp.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=n_workers, mp_context=ctx,
            initializer=_init_worker, initargs=(X, C),
        ) as pool:
            results = list(pool.map(_assign_block, blocks))

    assignments = np.empty(n, dtype=np.int64)
    sums = np.zeros((C.shape[0], X.shape[1]), dtype=np.float64)
    counts = np.zeros(C.shape[0], dtype=np.int64)
    # Combine in block order so floats match the sequential computation.
    for lo, block_assign, block_sums, block_counts in sorted(results):
        assignments[lo:lo + block_assign.shape[0]] = block_assign
        sums += block_sums
        counts += block_counts
    return assignments, sums, counts


def _fork_available() -> bool:
    try:
        return "fork" in mp.get_all_start_methods()
    # reprolint: disable=E403 -- platform probe; no FaultError can originate here
    except Exception:  # pragma: no cover - platform-specific
        return False


def lloyd_parallel(X: np.ndarray, centroids: np.ndarray,
                   max_iter: int = 100, tol: float = 0.0,
                   n_workers: Optional[int] = None
                   ) -> "KMeansResult":
    """Serial-Lloyd semantics, host-parallel Assign phase.

    Produces the same trajectory as :func:`repro.core.lloyd.lloyd` (same
    assignment rule, same empty-cluster rule); only wall-clock differs.
    """
    from ..core._common import inertia, max_centroid_shift
    from ..core.result import IterationStats, KMeansResult

    if max_iter < 1:
        raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
    if tol < 0:
        raise ConfigurationError(f"tol must be >= 0, got {tol}")
    X, C = validate_data(X, np.array(centroids, copy=True))
    k = C.shape[0]

    history: List[IterationStats] = []
    assignments = np.full(X.shape[0], -1, dtype=np.int64)
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        new_assignments, sums, counts = parallel_assign_accumulate(
            X, C, n_workers=n_workers)
        new_C = update_centroids(sums, counts, C)
        shift = max_centroid_shift(C, new_C)
        history.append(IterationStats(
            iteration=it,
            inertia=inertia(X, C, new_assignments),
            centroid_shift=shift,
            n_reassigned=int((new_assignments != assignments).sum()),
        ))
        assignments = new_assignments
        C = new_C
        if shift <= tol:
            converged = True
            break

    return KMeansResult(
        centroids=C,
        assignments=assignments,
        inertia=inertia(X, C, assignments),
        n_iter=it,
        converged=converged,
        history=history,
        ledger=None,
        level=0,
    )
