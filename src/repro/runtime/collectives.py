"""Additional data-carrying collectives over :class:`SimComm`.

The k-means executors only need allreduce/minloc/bcast, but the runtime is
a general substrate ("potentially similar algorithms", the paper's closing
sentence): this module rounds it out with the remaining MPI-style
collectives — reduce-scatter, gather/scatter with uneven counts, exclusive
scan, and barrier — each performing the real array semantics and charging a
textbook cost to the ledger.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..errors import CommunicatorError
from .mpi import SimComm


def reduce_scatter_sum(comm: SimComm, buffers: Sequence[np.ndarray],
                       label: str = "mpi.reduce_scatter") -> List[np.ndarray]:
    """Sum one buffer per rank, scatter equal slices of the result.

    Returns rank-ordered slices (``even_slices`` semantics along axis 0).
    Cost: the reduce-scatter half of a ring allreduce —
    ``(p-1) * (lat + (V/p)/bw)``.
    """
    arr = comm._validate_buffers(buffers)
    total = arr.sum(axis=0)
    p = comm.size
    bw, lat = comm._link()
    nbytes = total.nbytes
    if p > 1 and nbytes > 0:
        comm.ledger.charge("network", label,
                           (p - 1) * (lat + (nbytes / p) / bw))
    else:
        comm.ledger.charge("network", label, 0.0)
    base, extra = divmod(total.shape[0], p)
    out: List[np.ndarray] = []
    start = 0
    for r in range(p):
        size = base + (1 if r < extra else 0)
        out.append(total[start:start + size].copy())
        start += size
    return out


def gatherv(comm: SimComm, buffers: Sequence[np.ndarray], root: int = 0,
            label: str = "mpi.gatherv") -> np.ndarray:
    """Concatenate unequal per-rank buffers at the root.

    Cost: every non-root rank sends its payload toward the root through a
    binomial tree — ``ceil(log2 p)`` steps of the largest payload.
    """
    if len(buffers) != comm.size:
        raise CommunicatorError(
            f"expected {comm.size} buffers, got {len(buffers)}"
        )
    comm._check_rank(root)
    arrays = [np.asarray(b) for b in buffers]
    if any(a.ndim == 0 for a in arrays):
        raise CommunicatorError("gatherv buffers must be at least 1-D")
    p = comm.size
    bw, lat = comm._link()
    per_rank = max(a.nbytes for a in arrays)
    steps = math.ceil(math.log2(p)) if p > 1 else 0
    comm.ledger.charge("network", label,
                       steps * (lat + per_rank / bw))
    return np.concatenate(arrays, axis=0)


def scatterv(comm: SimComm, chunks: Sequence[np.ndarray], root: int = 0,
             label: str = "mpi.scatterv") -> List[np.ndarray]:
    """Distribute one (possibly unequal) chunk to each rank from the root.

    Returns the chunk list (copies), charging the mirror cost of gatherv.
    """
    if len(chunks) != comm.size:
        raise CommunicatorError(
            f"expected {comm.size} chunks, got {len(chunks)}"
        )
    comm._check_rank(root)
    arrays = [np.asarray(c) for c in chunks]
    p = comm.size
    bw, lat = comm._link()
    per_rank = max(a.nbytes for a in arrays) if arrays else 0
    steps = math.ceil(math.log2(p)) if p > 1 else 0
    comm.ledger.charge("network", label,
                       steps * (lat + per_rank / bw))
    return [a.copy() for a in arrays]


def exscan_sum(comm: SimComm, values: Sequence[np.ndarray],
               label: str = "mpi.exscan") -> List[np.ndarray]:
    """Exclusive prefix sum across ranks (rank 0 receives zeros).

    The classic building block for computing per-rank output offsets.
    Cost: ``ceil(log2 p)`` latency-bound steps (payloads are small).
    """
    arr = comm._validate_buffers(values)
    p = comm.size
    bw, lat = comm._link()
    steps = math.ceil(math.log2(p)) if p > 1 else 0
    comm.ledger.charge("network", label,
                       steps * (lat + arr[0].nbytes / bw))
    out: List[np.ndarray] = []
    running = np.zeros_like(arr[0])
    for r in range(p):
        out.append(running.copy())
        running = running + arr[r]
    return out


def barrier(comm: SimComm, label: str = "mpi.barrier") -> None:
    """Synchronise all ranks: ``ceil(log2 p)`` zero-payload latency steps."""
    p = comm.size
    _, lat = comm._link()
    steps = math.ceil(math.log2(p)) if p > 1 else 0
    comm.ledger.charge("network", label, steps * lat)
