"""Host-side run supervision: deadlines, watchdogs, and host events.

Everything in :mod:`repro.core` charges **modelled** Sunway seconds; this
module watches the *real* clock of the Python process running the numerics.
A :class:`RunSupervisor` wraps a convergence loop with

* a wall-clock **deadline** (``deadline_s``) — the run aborts with
  :class:`~repro.errors.DeadlineExceededError` at the next iteration
  boundary once the budget is spent,
* a per-iteration **watchdog** (``watchdog_s``) — iterations that take
  longer than the threshold are flagged (never killed: a slow iteration
  still produces correct numbers),
* a structured ``host_events`` record on
  :class:`~repro.core.result.KMeansResult`, mirroring how ``fault_events``
  records the *modelled* faults of PR 2.

Deadline checks run at iteration boundaries only: Python cannot preempt a
NumPy kernel mid-call, so a run may overshoot the deadline by up to one
iteration.  That is the same granularity at which checkpoints are taken,
so a deadline abort never loses more state than a crash would.

Selection: ``HierarchicalKMeans(..., deadline_s=300)``, the same knob on
the executors and :func:`~repro.core.lloyd.lloyd`, the CLI ``--deadline``
flag, or the ``REPRO_DEADLINE`` environment variable (read only when no
explicit ``deadline_s=`` is given).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from ..analysis.envvars import ENV_DEADLINE, read_float
from ..errors import ConfigurationError, DeadlineExceededError

#: Environment override for the wall-clock deadline, consulted only when
#: ``deadline_s=None`` is passed (empty/whitespace value counts as unset;
#: declared in :mod:`repro.analysis.envvars`).
DEADLINE_ENV = ENV_DEADLINE.name


@dataclass
class HostEvent:
    """One host-side occurrence during a supervised run.

    Mirrors :class:`~repro.runtime.faults.FaultEvent` for the host layer:
    ``kind`` is a short tag (``"task_retry"``, ``"task_timeout"``,
    ``"quarantine"``, ``"degraded_serial"``, ``"chaos"``,
    ``"slow_iteration"``, ``"deadline_exceeded"``, ``"rollback"``,
    ``"resume"``, and from the process engine's supervisor
    ``"worker_lost"``, ``"worker_respawn"``, ``"worker_hung"``,
    ``"poison_quarantine"``, ``"engine_fallback"``, ...),
    ``detail`` a human-readable elaboration, and
    ``seconds`` the measured host wall-clock time involved (0.0 when the
    event has no duration).
    """

    iteration: int
    kind: str
    detail: str = ""
    seconds: float = 0.0

    def describe(self) -> str:
        """One-line human-readable form (used by the CLI)."""
        extra = f" ({self.seconds:.3f}s)" if self.seconds else ""
        detail = f": {self.detail}" if self.detail else ""
        return f"iter {self.iteration} {self.kind}{detail}{extra}"


class RunSupervisor:
    """Watches one convergence loop against the host wall clock.

    Parameters
    ----------
    deadline_s:
        Wall-clock budget for the whole run in real seconds; ``None``
        disables the deadline.  Checked at every iteration boundary.
    watchdog_s:
        Per-iteration threshold in real seconds; iterations exceeding it
        are recorded as ``"slow_iteration"`` host events.  ``None``
        disables the watchdog.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, deadline_s: Optional[float] = None,
                 watchdog_s: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if deadline_s is not None and not deadline_s > 0:
            raise ConfigurationError(
                f"deadline_s must be > 0 or None, got {deadline_s}"
            )
        if watchdog_s is not None and not watchdog_s > 0:
            raise ConfigurationError(
                f"watchdog_s must be > 0 or None, got {watchdog_s}"
            )
        self.deadline_s = deadline_s
        self.watchdog_s = watchdog_s
        self._clock = clock
        self._lock = threading.Lock()
        self._t_start: Optional[float] = None
        self._t_iter: Optional[float] = None
        self._iteration = 0
        self.events: List[HostEvent] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Arm the deadline clock; called once before the first iteration."""
        self._t_start = self._clock()

    def elapsed(self) -> float:
        """Real seconds since :meth:`start` (0.0 if never started)."""
        if self._t_start is None:
            return 0.0
        return self._clock() - self._t_start

    def begin_iteration(self, iteration: int) -> None:
        """Deadline gate at the top of an iteration.

        Raises :class:`~repro.errors.DeadlineExceededError` when the
        wall-clock budget is already spent, after recording a
        ``"deadline_exceeded"`` host event.
        """
        self._iteration = iteration
        if self._t_start is None:
            self.start()
        if self.deadline_s is not None:
            spent = self.elapsed()
            if spent >= self.deadline_s:
                self.record("deadline_exceeded",
                            f"deadline {self.deadline_s:g}s spent before "
                            f"iteration {iteration}", seconds=spent)
                raise DeadlineExceededError(
                    f"run exceeded its {self.deadline_s:g}s wall-clock "
                    f"deadline after {spent:.3f}s "
                    f"({iteration - 1} iterations completed)"
                )
        self._t_iter = self._clock()

    def end_iteration(self, iteration: int) -> None:
        """Watchdog check at the bottom of an iteration."""
        if self._t_iter is None:
            return
        took = self._clock() - self._t_iter
        if self.watchdog_s is not None and took > self.watchdog_s:
            self.record("slow_iteration",
                        f"iteration took {took:.3f}s "
                        f"(watchdog {self.watchdog_s:g}s)", seconds=took)

    # -- event recording -----------------------------------------------------

    def record(self, kind: str, detail: str = "",
               seconds: float = 0.0) -> HostEvent:
        """Append one host event stamped with the current iteration."""
        event = HostEvent(iteration=self._iteration, kind=kind,
                          detail=detail, seconds=float(seconds))
        with self._lock:
            self.events.append(event)
        return event

    def absorb(self, engine: object) -> None:
        """Drain an engine's pending host events into this supervisor.

        Engine events are recorded without an iteration number (the engine
        does not know the loop's epoch); absorbing stamps them with the
        iteration currently in flight.
        """
        drain = getattr(engine, "drain_events", None)
        if drain is None:
            return
        for kind, detail, seconds in drain():
            self.record(kind, detail, seconds)


SupervisorLike = Union[RunSupervisor, None]


def resolve_supervisor(supervisor: SupervisorLike = None,
                       deadline_s: Optional[float] = None,
                       watchdog_s: Optional[float] = None) -> RunSupervisor:
    """Build (or pass through) the supervisor for one run.

    An explicit :class:`RunSupervisor` instance wins (its own knobs must
    not be contradicted).  Otherwise a fresh supervisor is built from
    ``deadline_s``/``watchdog_s``; when ``deadline_s`` is None the
    ``REPRO_DEADLINE`` environment variable is consulted, with empty or
    whitespace-only values counting as unset.
    """
    if isinstance(supervisor, RunSupervisor):
        if deadline_s is not None and deadline_s != supervisor.deadline_s:
            raise ConfigurationError(
                f"deadline_s={deadline_s} conflicts with the provided "
                f"supervisor instance (deadline_s={supervisor.deadline_s}); "
                f"pass one or the other"
            )
        return supervisor
    if deadline_s is None:
        deadline_s = read_float(ENV_DEADLINE)
    return RunSupervisor(deadline_s=deadline_s, watchdog_s=watchdog_s)
