"""Shared-memory array publishing for the process engine.

The process engine (:mod:`repro.runtime.process_engine`) must hand every
worker the same large read-only operands — the sample matrix ``X`` each
iteration and the current centroid matrix ``C`` — without pickling hundreds
of megabytes per task.  This module provides the zero-copy seam:

:class:`SharedArena`
    Owns named :class:`multiprocessing.shared_memory.SharedMemory`
    segments, one per published key.  ``publish(key, array)`` copies the
    array into the segment **once** (re-publishing the identical array
    object is free; re-publishing a same-shape replacement — the new
    centroids each iteration — rewrites the segment in place) and returns
    an :class:`ArrayRef` that pickles in a few dozen bytes.

:class:`ArrayRef`
    ``(segment name, shape, dtype)``.  Workers resolve it with
    :func:`as_ndarray`, which attaches the segment and returns a read-only
    ndarray view — no copy in either process.

Lifetime discipline (the part that must survive crashes):

* every arena registers itself in a module-wide set; ``drain_arenas()``
  unlinks every live segment and is wired into
  :func:`repro.runtime.engine.shutdown_pools`, which already runs from an
  ``atexit`` hook — normal interpreter exit (including SIGINT) leaks
  nothing;
* each arena also carries a :func:`weakref.finalize` on itself, so an
  engine (and its arena) collected mid-session releases its segments
  without waiting for interpreter exit;
* a SIGKILL'd parent cannot run either path; there the stdlib
  ``resource_tracker`` — a separate process that outlives the parent —
  best-effort unlinks the leaked segments (``tests/runtime/test_shm.py``
  asserts this end to end against ``/dev/shm``).

With the fork start method every process shares the *same* resource
tracker (forked children inherit its pipe), and the tracker's registry is
a set of names — a worker's attach-time re-registration of a segment the
parent created is idempotent, and the parent's ``unlink()`` clears the
single entry.  The attach path therefore deliberately does **not**
unregister anything: removing the shared entry would disable the
SIGKILL backstop above.
"""

from __future__ import annotations

import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..errors import ConfigurationError, IntegrityError

__all__ = [
    "ArrayRef",
    "ArrayLike",
    "SharedArena",
    "as_ndarray",
    "drain_arenas",
]


@dataclass(frozen=True)
class ArrayRef:
    """A picklable handle to an ndarray living in a shared-memory segment.

    ``crc`` is the optional integrity checksum stamped by the process
    engine when integrity is on: workers re-verify the segment bytes
    against it on first attach (:func:`as_ndarray`), so corruption that
    lands between the parent's pre-dispatch verification and the task's
    read is still caught inside the worker.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str
    crc: Optional[int] = None

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


#: What the block tasks accept: a plain ndarray (serial/thread engines pass
#: operands through untouched) or an :class:`ArrayRef` (process engine).
ArrayLike = Union[np.ndarray, ArrayRef]


# Attached segments, keyed by name.  Shared by parent (inline fallback) and
# workers (which inherit a fork-time copy and extend it independently).  A
# mapping stays cached across tasks (re-attaching per task would thrash the
# page tables) but the cache is bounded: beyond _ATTACH_CAP entries the
# oldest mappings are closed at the next attach — views resolved by
# :func:`as_ndarray` are only valid for the duration of the task that
# resolved them, so eviction between tasks can never invalidate a live view.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}
_ATTACH_LOCK = threading.Lock()
_ATTACH_CAP = 8

# Per-process memo of segment checksums already verified, keyed by segment
# name.  A re-publish rewrites the segment *and* stamps a fresh crc on the
# ref, so a stale memo entry can never vouch for new bytes; bounding it the
# same way as _ATTACHED keeps the worker-side cost at one CRC pass per
# (segment, publish) rather than per task.
_VERIFIED: Dict[str, int] = {}


def _segment_crc(view: np.ndarray) -> int:
    import zlib

    return zlib.crc32(np.ascontiguousarray(view))  # type: ignore[arg-type]


def as_ndarray(ref: ArrayLike) -> np.ndarray:
    """Resolve an :class:`ArrayRef` to a read-only ndarray view (no copy).

    Plain ndarrays pass straight through, so block tasks are engine-agnostic:
    the serial and thread engines share arrays by reference, the process
    engine by segment name.  Refs carrying an integrity ``crc`` are verified
    against the segment bytes on first resolution (memoised per publish);
    a mismatch raises :class:`~repro.errors.IntegrityError` inside the
    worker, where the supervisor's ordinary fault handling picks it up.
    """
    if isinstance(ref, np.ndarray):
        return ref
    with _ATTACH_LOCK:
        shm = _ATTACHED.get(ref.name)
        if shm is None:
            while len(_ATTACHED) >= _ATTACH_CAP:
                stale = _ATTACHED.pop(next(iter(_ATTACHED)))
                try:
                    stale.close()
                except OSError:  # pragma: no cover - platform-specific
                    pass
            try:
                shm = shared_memory.SharedMemory(name=ref.name)
            except FileNotFoundError:
                raise ConfigurationError(
                    f"shared segment {ref.name!r} is gone (arena drained "
                    f"while a task still referenced it)"
                ) from None
            # NOTE: attach re-registers the name with the (shared, fork-
            # inherited) resource tracker; that is an idempotent set-add,
            # and unregistering it here would delete the creator's entry
            # and with it the SIGKILL leak backstop.
            _ATTACHED[ref.name] = shm
    view: np.ndarray = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                                  buffer=shm.buf)
    view.flags.writeable = False
    if ref.crc is not None:
        with _ATTACH_LOCK:
            verified = _VERIFIED.get(ref.name) == ref.crc
        if not verified:
            if _segment_crc(view) != ref.crc:
                raise IntegrityError(
                    f"shared segment {ref.name!r} failed CRC32 verification "
                    f"on task entry (corrupted between publish and read)",
                    location=f"segment:{ref.name}",
                )
            with _ATTACH_LOCK:
                while len(_VERIFIED) >= _ATTACH_CAP:
                    _VERIFIED.pop(next(iter(_VERIFIED)))
                _VERIFIED[ref.name] = ref.crc
    return view


def _detach(name: str) -> None:
    """Close this process's mapping of a segment (if any)."""
    with _ATTACH_LOCK:
        shm = _ATTACHED.pop(name, None)
    if shm is not None:
        try:
            shm.close()
        except OSError:  # pragma: no cover - platform-specific
            pass


#: Live arenas, drained by shutdown_pools() / atexit.  Weak so an arena's
#: own finalizer (GC path) stays the primary owner of its segments.
_ARENAS: "weakref.WeakSet[SharedArena]" = weakref.WeakSet()
_ARENAS_LOCK = threading.Lock()


def _release_segments(segments: Dict[str, shared_memory.SharedMemory]) -> None:
    """Close and unlink every segment in the mapping (idempotent)."""
    for name in sorted(segments):
        shm = segments[name]
        _detach(name)
        try:
            shm.close()
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        except OSError:  # pragma: no cover - platform-specific
            pass
    segments.clear()


class SharedArena:
    """Named shared-memory segments for one engine's published operands.

    ``publish`` is called by the engine's ``share()`` right before a map,
    and every map completes before the next ``publish`` of the same key, so
    rewriting a segment in place can never race a reader.  The identity
    check makes the per-iteration re-publish of a *stable* operand (the
    sample matrix) free; a published array must not be mutated in place
    while tasks may still read it.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self, tag: str = "arena") -> None:
        with SharedArena._counter_lock:
            SharedArena._counter += 1
            serial = SharedArena._counter
        #: Unique prefix: pid disambiguates processes, the serial number
        #: disambiguates arenas within one process.
        self._prefix = f"repro-{os.getpid()}-{serial}-{tag}"
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._views: Dict[str, np.ndarray] = {}
        #: Strong refs to the last-published array per key, so the identity
        #: fast path can never be fooled by id() reuse after GC.
        self._sources: Dict[str, np.ndarray] = {}
        with _ARENAS_LOCK:
            _ARENAS.add(self)
        # GC of the arena (engine teardown) releases the segments even if
        # shutdown_pools() is never called.
        self._finalizer = weakref.finalize(
            self, _release_segments, self._segments)

    def publish(self, key: str, array: np.ndarray) -> ArrayRef:
        """Copy ``array`` into the segment for ``key``; return its ref."""
        array = np.ascontiguousarray(array)
        if self._sources.get(key) is array:
            return ArrayRef(self._segments[key].name, array.shape,
                            array.dtype.str)
        shm = self._segments.get(key)
        view = self._views.get(key)
        if shm is None or view is None or view.nbytes < array.nbytes:
            if shm is not None:
                _release_segments({key: self._segments.pop(key)})
                self._views.pop(key, None)
            name = f"{self._prefix}-{key}"
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(array.nbytes, 1))
            self._segments[key] = shm
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        self._views[key] = view
        self._sources[key] = array
        return ArrayRef(shm.name, array.shape, array.dtype.str)

    def view(self, key: str) -> Optional[np.ndarray]:
        """The parent-side view over ``key``'s segment (None if unpublished).

        This is what the engines' pre-dispatch integrity verification reads:
        it sees the *segment* bytes — including any corruption injected
        after :meth:`publish` — not the retained source array.
        """
        return self._views.get(key)

    def corrupt(self, key: str, offset: int) -> bool:
        """Flip one bit in ``key``'s segment at ``offset`` (chaos seam).

        Silent by design: readers see the flipped byte with no error raised.
        Returns False when the key was never published (nothing to corrupt).
        """
        view = self._views.get(key)
        if view is None or view.nbytes == 0:
            return False
        raw = view.reshape(-1).view(np.uint8)
        raw[min(int(offset), view.nbytes - 1)] ^= np.uint8(1)
        return True

    def repair(self, key: str) -> bool:
        """Rewrite ``key``'s segment from its retained source array.

        The arena keeps a strong ref to every published array (the identity
        fast path needs it), which doubles as the golden copy for integrity
        repair.  Returns False when the key was never published.
        """
        view = self._views.get(key)
        source = self._sources.get(key)
        if view is None or source is None:
            return False
        view[...] = source
        return True

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """Names of the live segments (for tests and diagnostics)."""
        return tuple(sorted(self._segments[key].name
                            for key in sorted(self._segments)))

    def drain(self) -> None:
        """Unlink every segment now (idempotent; re-publish re-creates)."""
        self._views.clear()
        self._sources.clear()
        _release_segments(self._segments)


def drain_arenas() -> None:
    """Drain every live arena (test teardown + interpreter exit).

    Wired into :func:`repro.runtime.engine.shutdown_pools`, which the
    package registers with :mod:`atexit`.
    """
    with _ARENAS_LOCK:
        arenas = list(_ARENAS)
    for arena in arenas:
        arena.drain()


def _heartbeat_segment(workers: int) -> shared_memory.SharedMemory:
    """A fresh segment sized for one float64 heartbeat slot per worker."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    with SharedArena._counter_lock:
        SharedArena._counter += 1
        serial = SharedArena._counter
    return shared_memory.SharedMemory(
        name=f"repro-{os.getpid()}-{serial}-hb", create=True,
        size=8 * workers)


def heartbeat_view(shm: shared_memory.SharedMemory,
                   workers: int) -> np.ndarray:
    """The float64 per-worker heartbeat slots over a heartbeat segment."""
    view: np.ndarray = np.ndarray((workers,), dtype=np.float64,
                                  buffer=shm.buf)
    return view


def make_heartbeats(workers: int
                    ) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Create the heartbeat segment and its slot view for a worker pool.

    The pool owns the segment: workers inherit the mapping through fork (no
    attach, no tracker duplicate) and the pool unlinks it on shutdown.
    """
    shm = _heartbeat_segment(workers)
    view = heartbeat_view(shm, workers)
    view[:] = 0.0
    return shm, view
