"""Register communication across a core group's 8x8 CPE mesh.

The SW26010 provides 8 row and 8 column communication buses that let CPEs
exchange register values without touching memory — the paper measures this
at 46.4 GB/s and reports a "3x to 4x speedup than other on-chip and Internet
communication techniques" for the AllReduce bottleneck (section III.A).

Intra-CG collectives are implemented in two sweeps on the mesh: a reduction
along rows (each row bus combines its 8 CPEs) followed by a reduction along
the first column, then the mirror broadcast.  That gives
``rows + cols`` hop-latencies and moves every payload byte twice (reduce +
broadcast), which is the cost shape charged here.

The module also *performs* the reductions on real NumPy buffers so the
execute backend's arithmetic goes through the same code path that is being
charged for.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import CommunicatorError
from ..machine.specs import CGSpec
from .ledger import LedgerProtocol


class RegisterComm:
    """Collectives over the CPEs of one core group.

    Parameters
    ----------
    cg_spec:
        Mesh geometry and register-bus bandwidth/latency.
    ledger:
        Ledger the collective times are charged to.
    injector:
        Optional :class:`~repro.runtime.faults.FaultInjector`; mesh
        allreduces pass through its collective hook, which may raise
        :class:`~repro.errors.CollectiveTimeoutError`.
    """

    def __init__(self, cg_spec: CGSpec, ledger: LedgerProtocol,
                 injector=None) -> None:
        self.spec = cg_spec
        self.ledger = ledger
        self.injector = injector

    # -- cost model ------------------------------------------------------------

    def _sweep_hops(self) -> int:
        """Bus hops of one full mesh sweep (rows then the spine column)."""
        return self.spec.mesh_rows + self.spec.mesh_cols

    def reduce_time(self, nbytes: int) -> float:
        """Modelled time of a mesh-wide reduction of ``nbytes`` payload."""
        if nbytes < 0:
            raise CommunicatorError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return (self._sweep_hops() * self.spec.register_latency
                + nbytes / self.spec.register_bw)

    def broadcast_time(self, nbytes: int) -> float:
        """Broadcast has the mirror cost of a reduction on this mesh."""
        return self.reduce_time(nbytes)

    def allreduce_time(self, nbytes: int,
                       label: str = "regcomm.allreduce") -> float:
        """AllReduce = reduce sweep + broadcast sweep.

        Every mesh allreduce — the executors charge through this entry —
        passes the fault injector's collective hook first.
        """
        if self.injector is not None:
            self.injector.on_collective(label, nbytes)
        return self.reduce_time(nbytes) + self.broadcast_time(nbytes)

    # -- data-carrying collectives ----------------------------------------------

    def allreduce_sum(self, buffers: Sequence[np.ndarray],
                      label: str = "regcomm.allreduce") -> np.ndarray:
        """Sum per-CPE buffers; every CPE ends with the total.

        ``buffers`` holds one array per participating CPE (they must agree in
        shape and dtype).  Returns the elementwise sum; the caller distributes
        it back to the per-CPE state.  Charges one mesh allreduce.
        """
        arr = self._validate(buffers)
        total = arr.sum(axis=0)
        self.ledger.charge("regcomm", label, self.allreduce_time(total.nbytes))
        return total

    def reduce_min_pairs(self, values: Sequence[float],
                         payload: Sequence[object],
                         label: str = "regcomm.minloc") -> object:
        """MINLOC-style reduction: return the payload of the smallest value.

        Used to combine per-CPE partial argmin results (value = distance,
        payload = centroid index).  Ties resolve to the lowest CPE rank,
        matching a deterministic hardware reduction tree.
        """
        if len(values) == 0 or len(values) != len(payload):
            raise CommunicatorError(
                "values and payload must be equal-length and non-empty"
            )
        best = int(np.argmin(np.asarray(values, dtype=np.float64)))
        per_item = 16  # one double + one index per CPE on the bus
        self.ledger.charge(
            "regcomm", label, self.allreduce_time(per_item * len(values))
        )
        return payload[best]

    def broadcast(self, buffer: np.ndarray, n_cpes: Optional[int] = None,
                  label: str = "regcomm.bcast") -> np.ndarray:
        """Broadcast a buffer from one CPE to the mesh; returns the buffer."""
        if n_cpes is not None and not 1 <= n_cpes <= self.spec.n_cpes:
            raise CommunicatorError(
                f"n_cpes must be in [1, {self.spec.n_cpes}], got {n_cpes}"
            )
        self.ledger.charge("regcomm", label, self.broadcast_time(buffer.nbytes))
        return buffer

    @staticmethod
    def _validate(buffers: Sequence[np.ndarray]) -> np.ndarray:
        if len(buffers) == 0:
            raise CommunicatorError("allreduce over zero CPEs")
        first = buffers[0]
        for b in buffers[1:]:
            if b.shape != first.shape or b.dtype != first.dtype:
                raise CommunicatorError(
                    "allreduce buffers must agree in shape and dtype: "
                    f"{first.shape}/{first.dtype} vs {b.shape}/{b.dtype}"
                )
        return np.stack([np.asarray(b) for b in buffers], axis=0)
