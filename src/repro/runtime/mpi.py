"""Simulated MPI layer over core-group ranks.

The paper runs one MPI process per core group; collectives among CGs on the
same node go through shared DDR3, while collectives spanning nodes ride the
fat-tree network (16 GB/s bidirectional peak, derated across supernode
boundaries).  :class:`SimComm` reproduces that: it is addressed by *global CG
index*, resolves CG -> node -> supernode through the machine topology, and
charges each collective with textbook cost formulas:

* ring allreduce:            ``2 (p-1)/p * V / bw + 2 (p-1) * lat``
* binomial-tree reduce/bcast: ``ceil(log2 p) * (lat + V / bw)`` each
* recursive doubling:         ``ceil(log2 p) * (lat + V / bw)``

where V is the payload volume, bw the worst link bandwidth among the member
nodes, and lat the matching hop latency.  Like the register-communication
layer, the collectives also *perform* the arithmetic on NumPy buffers so the
execute backend's numerics flow through the charged code path (the mpi4py
idiom of buffer-typed collectives, minus the actual wire).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CommunicatorError, ConfigurationError
from ..machine.machine import Machine
from .ledger import LedgerProtocol

#: Collective algorithm names accepted by SimComm.
ALGORITHMS = ("ring", "tree", "recursive-doubling")

#: Fraction of DDR3 bandwidth available to CG-to-CG transfers on one node.
#: Same-node "MPI" traffic is a memcpy through shared memory.
_ONNODE_BW_FACTOR = 2.0


class SimComm:
    """A communicator over a fixed, ordered set of core-group ranks.

    Parameters
    ----------
    machine:
        The machine whose topology prices the traffic.
    cg_indices:
        Global CG indices of the member ranks, in rank order.
    ledger:
        Ledger that collective costs are charged to.
    algorithm:
        Default collective algorithm (see :data:`ALGORITHMS`).
    injector:
        Optional :class:`~repro.runtime.faults.FaultInjector`; every
        collective passes through its hook (which may raise
        :class:`~repro.errors.CollectiveTimeoutError`) and link pricing
        honours its degraded-link bandwidth factor.
    """

    def __init__(self, machine: Machine, cg_indices: Sequence[int],
                 ledger: LedgerProtocol, algorithm: str = "ring",
                 injector=None) -> None:
        if len(cg_indices) == 0:
            raise CommunicatorError("communicator must have at least one rank")
        if len(set(cg_indices)) != len(cg_indices):
            raise CommunicatorError("duplicate CG index in communicator")
        if algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown collective algorithm {algorithm!r}; "
                f"expected one of {ALGORITHMS}"
            )
        self.machine = machine
        self.ledger = ledger
        self.algorithm = algorithm
        self.injector = injector
        self._cgs: Tuple[int, ...] = tuple(int(i) for i in cg_indices)
        for cg in self._cgs:
            machine.node_of_cg(cg)  # validates range
        self._nodes = tuple(machine.node_of_cg(cg) for cg in self._cgs)

    # -- structure ---------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._cgs)

    @property
    def cg_indices(self) -> Tuple[int, ...]:
        return self._cgs

    def rank_of_cg(self, cg_index: int) -> int:
        try:
            return self._cgs.index(cg_index)
        except ValueError:
            raise CommunicatorError(
                f"CG {cg_index} is not a member of this communicator"
            ) from None

    def split(self, groups: Sequence[Sequence[int]]) -> List["SimComm"]:
        """Create one sub-communicator per group of member ranks."""
        comms = []
        for group in groups:
            members = [self._cgs[r] for r in group]
            comms.append(SimComm(self.machine, members, self.ledger,
                                 self.algorithm, injector=self.injector))
        return comms

    # -- link pricing ---------------------------------------------------------------

    def _link(self) -> Tuple[float, float]:
        """(bandwidth bytes/s, latency s) of the worst link in this comm.

        An active ``degraded_link`` fault derates the bandwidth (latency is
        unaffected — the link is slow, not long).
        """
        nodes = set(self._nodes)
        net = self.machine.spec.network
        if len(nodes) <= 1:
            # All ranks on one node: shared-memory transport.
            bw = self.machine.spec.processor.cg.dma_bw * _ONNODE_BW_FACTOR
            lat = self.machine.spec.processor.cg.dma_latency
        else:
            same_super = not self.machine.topology.spans_supernodes(nodes)
            bw, lat = net.bandwidth(same_super), net.latency(same_super)
        if self.injector is not None:
            bw *= self.injector.link_bandwidth_factor()
        return bw, lat

    def _inject(self, label: str, nbytes: int) -> None:
        """Fault hook for every collective (cost query or data-carrying)."""
        if self.injector is not None:
            self.injector.on_collective(label, nbytes)

    # -- cost model -------------------------------------------------------------------

    def allreduce_time(self, nbytes: int,
                       algorithm: Optional[str] = None,
                       label: str = "mpi.allreduce") -> float:
        """Modelled time of an allreduce of ``nbytes`` per rank."""
        self._inject(label, nbytes)
        return self._collective_time(nbytes, algorithm or self.algorithm,
                                     kind="allreduce")

    def bcast_time(self, nbytes: int, label: str = "mpi.bcast") -> float:
        self._inject(label, nbytes)
        p = self.size
        if p == 1 or nbytes == 0:
            return 0.0
        bw, lat = self._link()
        steps = math.ceil(math.log2(p))
        return steps * (lat + nbytes / bw)

    def allgather_time(self, nbytes_per_rank: int,
                       label: str = "mpi.allgather") -> float:
        """Ring allgather: each rank contributes ``nbytes_per_rank``."""
        self._inject(label, nbytes_per_rank)
        p = self.size
        if p == 1 or nbytes_per_rank == 0:
            return 0.0
        bw, lat = self._link()
        return (p - 1) * (lat + nbytes_per_rank / bw)

    def p2p_time(self, src_rank: int, dst_rank: int, nbytes: int) -> float:
        self._check_rank(src_rank)
        self._check_rank(dst_rank)
        a, b = self._nodes[src_rank], self._nodes[dst_rank]
        if a == b:
            if src_rank == dst_rank:
                return 0.0
            bw = self.machine.spec.processor.cg.dma_bw * _ONNODE_BW_FACTOR
            return self.machine.spec.processor.cg.dma_latency + nbytes / bw
        return self.machine.topology.point_to_point_time(a, b, nbytes)

    def _collective_time(self, nbytes: int, algorithm: str,
                         kind: str) -> float:
        if algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown collective algorithm {algorithm!r}"
            )
        p = self.size
        if p == 1 or nbytes == 0:
            return 0.0
        bw, lat = self._link()
        if algorithm == "ring":
            # reduce-scatter + allgather, each (p-1) steps of V/p bytes.
            return 2.0 * (p - 1) * (lat + (nbytes / p) / bw)
        if algorithm == "recursive-doubling":
            steps = math.ceil(math.log2(p))
            return steps * (lat + nbytes / bw)
        # binomial tree: reduce to root then broadcast back.
        steps = math.ceil(math.log2(p))
        return 2.0 * steps * (lat + nbytes / bw)

    # -- data-carrying collectives ----------------------------------------------------

    def allreduce_sum(self, buffers: Sequence[np.ndarray],
                      label: str = "mpi.allreduce",
                      algorithm: Optional[str] = None) -> np.ndarray:
        """Sum one buffer per rank; all ranks receive the total.

        Returns the summed array (callers copy it into per-rank state).
        """
        arr = self._validate_buffers(buffers)
        total = arr.sum(axis=0)
        self.ledger.charge(
            "network", label,
            self.allreduce_time(total.nbytes, algorithm, label=label)
        )
        return total

    def allreduce_min_pairs(
        self, values: Sequence[np.ndarray], payloads: Sequence[np.ndarray],
        label: str = "mpi.minloc",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Elementwise MINLOC across ranks.

        ``values[r]`` and ``payloads[r]`` are equal-length vectors on rank
        ``r``; the result picks, per element, the payload of the smallest
        value (ties to the lowest rank).  This is how partial per-CG argmins
        combine into the global assignment a(i).
        """
        vals = self._validate_buffers(values)
        pays = self._validate_buffers(payloads)
        if vals.shape != pays.shape:
            raise CommunicatorError(
                f"values/payloads shape mismatch: {vals.shape} vs {pays.shape}"
            )
        winner = np.argmin(vals, axis=0)
        cols = np.arange(vals.shape[1])
        best_vals = vals[winner, cols]
        best_pays = pays[winner, cols]
        nbytes = int(vals[0].nbytes + pays[0].nbytes)
        self.ledger.charge("network", label,
                           self.allreduce_time(nbytes, label=label))
        return best_vals, best_pays

    def allgather(self, buffers: Sequence[np.ndarray],
                  label: str = "mpi.allgather") -> np.ndarray:
        """Concatenate one buffer per rank along axis 0; all ranks get it."""
        if len(buffers) != self.size:
            raise CommunicatorError(
                f"expected {self.size} buffers, got {len(buffers)}"
            )
        out = np.concatenate([np.asarray(b) for b in buffers], axis=0)
        per_rank = max(int(np.asarray(b).nbytes) for b in buffers)
        self.ledger.charge("network", label,
                           self.allgather_time(per_rank, label=label))
        return out

    def bcast(self, buffer: np.ndarray, root: int = 0,
              label: str = "mpi.bcast") -> np.ndarray:
        """Broadcast ``buffer`` from ``root`` to all ranks."""
        self._check_rank(root)
        buffer = np.asarray(buffer)
        self.ledger.charge("network", label,
                           self.bcast_time(buffer.nbytes, label=label))
        return buffer

    # -- helpers ------------------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommunicatorError(
                f"rank {rank} out of range [0, {self.size})"
            )

    def _validate_buffers(self, buffers: Sequence[np.ndarray]) -> np.ndarray:
        if len(buffers) != self.size:
            raise CommunicatorError(
                f"expected one buffer per rank ({self.size}), "
                f"got {len(buffers)}"
            )
        arrays = [np.asarray(b) for b in buffers]
        first = arrays[0]
        for a in arrays[1:]:
            if a.shape != first.shape or a.dtype != first.dtype:
                raise CommunicatorError(
                    "collective buffers must agree in shape and dtype: "
                    f"{first.shape}/{first.dtype} vs {a.shape}/{a.dtype}"
                )
        return np.stack(arrays, axis=0)


def world_comm(machine: Machine, ledger: LedgerProtocol,
               algorithm: str = "ring") -> SimComm:
    """A communicator over every CG of the machine, in global CG order."""
    return SimComm(machine, range(machine.n_cgs), ledger, algorithm)
