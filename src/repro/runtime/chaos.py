"""Seeded host-chaos injection at the execution-engine seam.

PR 2's :mod:`repro.runtime.faults` injects faults into the *simulated*
Sunway machine (modelled DMA errors, CG deaths, collective timeouts).  This
module injects faults into the *host* process actually running the numerics
— the block tasks the :class:`~repro.runtime.engine.ExecutionEngine` maps —
so the robustness layer of PR 4 can be exercised end to end:

``task_exception``
    The block task raises :class:`~repro.errors.ChaosError` instead of
    running.  The engine's bounded-retry ladder must absorb it.

``slow_task``
    The block task sleeps ``delay`` real seconds before running, turning it
    into a straggler for the per-task timeout / speculative re-execution
    path.

``nan_result``
    The block task's returned partial is corrupted with a NaN.  The engine
    cannot see this; the per-iteration numerical guard must catch the
    poisoned centroids and the recovery policy roll the iteration back.

``worker_kill``
    The OS worker process running the task SIGKILLs itself before the task
    body runs — a real crash, not a simulated one.  Only the process
    engine (:mod:`repro.runtime.process_engine`) has workers to kill, so
    the kind is a no-op under the serial and thread engines; the process
    engine's supervisor must detect the death, respawn the worker, and
    re-run the task.  ``kills=N`` fires on the task's first N attempts —
    ``kills >= TaskPolicy.quarantine_after`` makes a *poison task* that
    kills every worker touching it until the engine quarantines it to
    inline serial execution.

``worker_hang``
    The worker SIGSTOPs itself before the task body runs, stalling its
    heartbeat thread with it; the process engine's heartbeat timeout must
    flag the worker as hung, SIGKILL it, and take the same
    respawn/re-run path.  ``kills`` bounds the stalls like worker_kill.

``bitflip_partial``
    A single low-order mantissa bit of the task's returned partial is
    flipped — *silently*.  Unlike ``nan_result`` the corruption stays
    finite, so the numerical guard never trips: only the integrity
    layer's ABFT checksums (:mod:`repro.runtime.integrity`) can see it.
    ``kills=N`` keeps re-corrupting the task's first N attempts, so a
    persistent-corruption escalation can be staged deterministically.

``bitflip_arena``
    One mantissa byte of a shared operand is corrupted between
    publish and task start — in the :class:`~repro.runtime.shm.SharedArena`
    segment under the process engine, in the in-process shared copy
    otherwise.  Fires per *share id* (engine ``share()`` calls count from
    0), targeted with ``@id`` or stochastic with ``p=``.

``bitflip_checkpoint``
    One bit of the checkpoint npz just written by ``CheckpointStore`` is
    flipped on disk.  Fires per *write id* (persisted checkpoints count
    from 0).  Detection is the npz SHA-256 manifest verified by
    ``load_checkpoint``.

Determinism: every firing decision is a pure function of
``(plan seed, spec index, task id)`` — task ids are assigned at submission
time in fixed order — so a chaos plan replays bit-identically across
engines, worker counts, and thread interleavings.  Chaos only ever fires on
a task's *first* attempt (attempt 0): retries and speculative re-runs are
clean, which is exactly the transient-fault model the retry ladder is built
for.  The worker_* kinds are the one refinement: they fire while
``attempt < kills`` (default 1), because killing a worker *is* the failed
attempt — the re-run on a fresh worker is the clean retry.

Selection: attach a :class:`ChaosInjector` to an engine (``engine.chaos``),
or export ``REPRO_CHAOS`` with the compact grammar below and let
:func:`~repro.runtime.engine.resolve_engine` attach one — this is how the
CI chaos leg runs the whole test suite under injected host faults.
"""

from __future__ import annotations

import copy
import json
import os
import signal
import time
from dataclasses import asdict, dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.envvars import ENV_CHAOS, read_str
from ..errors import ChaosError, ConfigurationError

#: Chaos kinds a :class:`ChaosSpec` may carry.  The worker_* kinds act on
#: real OS worker processes, so they only fire inside the process engine's
#: workers (see :meth:`ChaosInjector.worker_before_task`).
CHAOS_KINDS = ("task_exception", "slow_task", "nan_result",
               "worker_kill", "worker_hang",
               "bitflip_partial", "bitflip_arena", "bitflip_checkpoint")

#: Kinds that crash/stall a worker process rather than perturb a task.
WORKER_KINDS = ("worker_kill", "worker_hang")

#: Silent-data-corruption kinds: they raise nothing and keep values finite,
#: so only the integrity layer (repro.runtime.integrity) can detect them.
BITFLIP_KINDS = ("bitflip_partial", "bitflip_arena", "bitflip_checkpoint")

#: Environment override: compact chaos-plan string consulted by
#: :func:`resolve_chaos` (empty/whitespace counts as unset; declared in
#: :mod:`repro.analysis.envvars`).
CHAOS_ENV = ENV_CHAOS.name


@dataclass(frozen=True)
class ChaosSpec:
    """One scheduled or stochastic host fault.

    Parameters
    ----------
    kind:
        One of :data:`CHAOS_KINDS`.
    task_id:
        Fire deterministically on this exact task id (ids count engine
        submissions from 0; ``bitflip_arena`` counts ``share()`` calls and
        ``bitflip_checkpoint`` counts checkpoint writes instead).  ``None``
        fires stochastically per task with ``probability``.
    probability:
        Per-task firing probability for specs with ``task_id=None``.
    delay:
        ``slow_task`` only: real seconds the afflicted task sleeps.
    kills:
        ``worker_kill``/``worker_hang``: the fault fires while the
        task's attempt number is below this bound, so one task can take
        down (or stall) up to ``kills`` workers before succeeding.  At
        ``kills >= TaskPolicy.quarantine_after`` the task is poison: the
        process engine must quarantine it to inline serial execution.
        ``bitflip_partial`` reuses the bound the same way: the task's
        first ``kills`` attempts each return a corrupted partial, so
        ``kills > TaskPolicy.max_retries`` models persistent corruption
        that must escalate past in-place repair.
    """

    kind: str
    task_id: Optional[int] = None
    probability: float = 0.0
    delay: float = 0.05
    kills: int = 1

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ConfigurationError(
                f"unknown chaos kind {self.kind!r}; "
                f"expected one of {CHAOS_KINDS}"
            )
        if self.task_id is not None and self.task_id < 0:
            raise ConfigurationError(
                f"chaos task_id must be >= 0, got {self.task_id}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"chaos probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.task_id is None and self.probability == 0.0:
            raise ConfigurationError(
                f"a stochastic {self.kind} chaos spec needs probability > 0 "
                f"(or target it with task_id=t)"
            )
        if self.delay < 0:
            raise ConfigurationError(
                f"chaos delay must be >= 0, got {self.delay}"
            )
        if self.kills < 1:
            raise ConfigurationError(
                f"chaos kills must be >= 1, got {self.kills}"
            )


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded schedule of host faults, replayable bit-for-bit.

    The plan is immutable and stateless: firing decisions are a pure
    function of ``(seed, spec index, task id)``, so one plan can drive many
    concurrent engines without shared-stream races.
    """

    specs: Tuple[ChaosSpec, ...] = ()
    seed: int = 0

    def __init__(self, specs: Sequence[ChaosSpec] = (), seed: int = 0) -> None:
        object.__setattr__(self, "specs", tuple(specs))
        object.__setattr__(self, "seed", int(seed))
        for spec in self.specs:
            if not isinstance(spec, ChaosSpec):
                raise ConfigurationError(
                    f"ChaosPlan specs must be ChaosSpec instances, "
                    f"got {type(spec).__name__}"
                )

    def __bool__(self) -> bool:
        return bool(self.specs)

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "chaos": [asdict(s) for s in self.specs],
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as e:
            raise ConfigurationError(f"invalid chaos-plan JSON: {e}") from None
        try:
            specs = [ChaosSpec(**entry) for entry in data.get("chaos", [])]
        except TypeError as e:
            raise ConfigurationError(f"invalid chaos spec: {e}") from None
        return cls(specs, seed=int(data.get("seed", 0)))


def parse_chaos_plan(text: str, seed: int = 0) -> ChaosPlan:
    """Parse the compact chaos-plan grammar (or a ``@file`` reference).

    Grammar: semicolon-separated events, each ``kind[@task][:key=val,...]``
    (mirroring :func:`~repro.runtime.faults.parse_fault_plan`):

    * ``task_exception@7`` — the task with id 7 raises on its first attempt,
    * ``task_exception:p=0.02`` — each task raises with probability 0.02,
    * ``slow_task:p=0.01,delay=0.2`` — stragglers sleeping 0.2 s,
    * ``nan_result@3`` — task 3's returned partial is NaN-poisoned,
    * ``worker_kill:p=0.05`` — process-engine workers SIGKILL themselves
      before 5% of first attempts (``kills=3`` makes the afflicted tasks
      kill up to 3 workers each — poison at the default quarantine bound),
    * ``worker_hang@2`` — the worker running task 2 SIGSTOPs itself (the
      heartbeat timeout must reap it),
    * ``bitflip_partial:p=0.02`` — 2% of first attempts return a partial
      with one mantissa bit silently flipped (``kills=N`` re-corrupts the
      first N attempts),
    * ``bitflip_arena@1`` — the second ``share()`` call's segment is
      corrupted between publish and task start,
    * ``bitflip_checkpoint:p=1`` — every checkpoint npz written gets one
      bit flipped on disk,
    * ``seed=42`` — seed the stochastic draws.

    ``@path.json`` loads a :meth:`ChaosPlan.to_json` file instead.
    """
    text = text.strip()
    if text.startswith("@"):
        try:
            with open(text[1:], "r", encoding="utf-8") as fh:
                return ChaosPlan.from_json(fh.read())
        except OSError as e:
            raise ConfigurationError(
                f"cannot read chaos plan {text[1:]!r}: {e}"
            ) from None
    key_map = {"p": "probability", "delay": "delay", "kills": "kills"}
    specs: List[ChaosSpec] = []
    for event in filter(None, (e.strip() for e in text.split(";"))):
        if event.startswith("seed="):
            seed = int(event[len("seed="):])
            continue
        head, _, opts = event.partition(":")
        kind, _, when = head.partition("@")
        kwargs: dict = {"kind": kind.strip()}
        if when:
            try:
                kwargs["task_id"] = int(when)
            except ValueError:
                raise ConfigurationError(
                    f"bad chaos task id {when!r} in {event!r}"
                ) from None
        for pair in filter(None, (p.strip() for p in opts.split(","))):
            key, eq, value = pair.partition("=")
            if not eq or key not in key_map:
                raise ConfigurationError(
                    f"bad chaos option {pair!r} in {event!r} "
                    f"(expected p=, delay=, kills=)"
                )
            try:
                kwargs[key_map[key]] = (int(value) if key == "kills"
                                        else float(value))
            except ValueError:
                raise ConfigurationError(
                    f"bad value {value!r} for {key!r} in {event!r}"
                ) from None
        specs.append(ChaosSpec(**kwargs))
    if not specs:
        raise ConfigurationError(f"chaos plan {text!r} contains no events")
    return ChaosPlan(specs, seed=seed)


ChaosLike = Union["ChaosInjector", ChaosPlan, str, None]


def _poison_first_array(result):
    """Return ``result`` with a NaN written into its first float ndarray.

    Engine block tasks return float partials: ``(sums, counts)`` tuples, a
    lone array, or a partial object carrying a ``sums`` array (e.g.
    :class:`repro.runtime.reduce.BlockPartial`).  The corruption copies
    before writing so a retried task — which recomputes from the pristine
    inputs — is unaffected.
    """
    def poison(value: object) -> Tuple[object, bool]:
        if isinstance(value, np.ndarray) \
                and np.issubdtype(value.dtype, np.floating) and value.size:
            bad = value.copy()
            bad.flat[0] = np.nan
            return bad, True
        return value, False

    if isinstance(result, tuple):
        out = []
        done = False
        for value in result:
            if not done:
                value, done = poison(value)
            out.append(value)
        return tuple(out) if done else result
    sums, done = poison(getattr(result, "sums", None))
    if done:
        bad = copy.copy(result)
        bad.sums = sums
        return bad
    poisoned, done = poison(result)
    return poisoned if done else result


def _mantissa_offset(rng: np.random.Generator, nbytes: int,
                     itemsize: int) -> int:
    """A byte offset that lands in an element's low-order mantissa bytes.

    Little-endian IEEE floats keep the sign/exponent bits in the top two
    bytes, so restricting the flip to bytes ``[0, itemsize - 2)`` of one
    element keeps the corrupted value finite — *silent* corruption that
    the NaN guard can never see, only checksums.
    """
    n_elems = max(1, nbytes // max(1, itemsize))
    elem = int(rng.integers(n_elems))
    byte = int(rng.integers(max(1, itemsize - 2)))
    return min(elem * itemsize + byte, nbytes - 1)


def _flip_bit_at(buffer: np.ndarray, offset: int, bit: int) -> None:
    """XOR one bit of a writable array viewed as raw bytes."""
    raw = buffer.reshape(-1).view(np.uint8)
    raw[offset] ^= np.uint8(1 << bit)


def _bitflip_first_array(result, rng: np.random.Generator):
    """Return ``result`` with one mantissa bit of its first float array
    flipped, or ``result`` unchanged when it carries no float array.

    Like :func:`_poison_first_array` the corruption copies before writing
    (a retried task recomputes from pristine inputs), and — crucially for
    the integrity layer — a copied partial object keeps its now-stale
    checksum fields, exactly like real in-transit corruption would.
    """
    def flip(value: object) -> Tuple[object, bool]:
        if isinstance(value, np.ndarray) \
                and np.issubdtype(value.dtype, np.floating) and value.size:
            bad = value.copy()
            offset = _mantissa_offset(rng, bad.nbytes, bad.dtype.itemsize)
            _flip_bit_at(bad, offset, int(rng.integers(8)))
            return bad, True
        return value, False

    if isinstance(result, tuple):
        out = []
        done = False
        for value in result:
            if not done:
                value, done = flip(value)
            out.append(value)
        return tuple(out) if done else result
    sums, done = flip(getattr(result, "sums", None))
    if done:
        bad = copy.copy(result)
        bad.sums = sums
        return bad
    flipped, done = flip(result)
    return flipped if done else result


class ChaosInjector:
    """Fires a :class:`ChaosPlan` from the engine's task hooks.

    The engine calls :meth:`before_task` as an attempt starts and
    :meth:`after_task` on its result.  Both receive the engine's
    ``record(kind, detail, seconds)`` callback so every firing lands in the
    run's ``host_events``.
    """

    def __init__(self, plan: ChaosPlan,
                 sleeper: Callable[[float], None] = time.sleep) -> None:
        if isinstance(plan, str):
            plan = parse_chaos_plan(plan)
        self.plan = plan
        self._sleep = sleeper

    def _fires(self, spec_index: int, spec: ChaosSpec, task_id: int) -> bool:
        if spec.task_id is not None:
            return spec.task_id == task_id
        # Fresh generator per decision: no shared stream for racing threads
        # to perturb, so the outcome depends only on the ids.
        u = np.random.default_rng(
            [self.plan.seed, spec_index, task_id]).random()
        return u < spec.probability

    def before_task(self, task_id: int, attempt: int,
                    record: Callable[[str, str, float], None]) -> None:
        """Pre-execution hook: may sleep (straggler) or raise ChaosError."""
        if attempt != 0:  # retries and speculative re-runs are clean
            return
        for i, spec in enumerate(self.plan.specs):
            if spec.kind == "slow_task" and self._fires(i, spec, task_id):
                record("chaos", f"slow_task: task {task_id} delayed "
                       f"{spec.delay:g}s", spec.delay)
                self._sleep(spec.delay)
        for i, spec in enumerate(self.plan.specs):
            if spec.kind == "task_exception" and self._fires(i, spec, task_id):
                record("chaos", f"task_exception: task {task_id} killed",
                       0.0)
                raise ChaosError(
                    f"injected task_exception on task {task_id} (attempt 0)",
                    task_id=task_id, kind="task_exception",
                )

    def worker_before_task(self, task_id: int, attempt: int,
                           record: Callable[[str, str, float], None]) -> None:
        """Worker-process-side pre-execution hook (process engine only).

        The worker_* kinds act here, on the real OS process running the
        task: ``worker_kill`` SIGKILLs it, ``worker_hang`` SIGSTOPs it
        (stalling the heartbeat thread with it).  A dying worker cannot
        record anything — the parent-side supervisor records the
        ``worker_lost``/``worker_respawn`` host events when it detects the
        death.  Ordinary task kinds then run via :meth:`before_task`,
        which ignores the worker_* kinds, so the same plan drives the
        serial and thread engines with the worker faults inert.
        """
        for i, spec in enumerate(self.plan.specs):
            if spec.kind not in WORKER_KINDS or attempt >= spec.kills:
                continue
            if not self._fires(i, spec, task_id):
                continue
            if spec.kind == "worker_kill":
                os.kill(os.getpid(), signal.SIGKILL)
            else:  # worker_hang: the parent's heartbeat timeout reaps us
                os.kill(os.getpid(), signal.SIGSTOP)
        self.before_task(task_id, attempt, record)

    def after_task(self, task_id: int, attempt: int, result: object,
                   record: Callable[[str, str, float], None]) -> object:
        """Post-execution hook: may NaN-poison or silently bitflip the
        returned partial.

        ``nan_result`` keeps the attempt-0-only transient model;
        ``bitflip_partial`` fires while ``attempt < kills`` so persistent
        corruption (corrupt on every recompute) can be staged.
        """
        for i, spec in enumerate(self.plan.specs):
            if spec.kind == "nan_result" and attempt == 0 \
                    and self._fires(i, spec, task_id):
                poisoned = _poison_first_array(result)
                if poisoned is not result:
                    record("chaos",
                           f"nan_result: task {task_id} partial poisoned",
                           0.0)
                    result = poisoned
            elif spec.kind == "bitflip_partial" and attempt < spec.kills \
                    and self._fires(i, spec, task_id):
                rng = np.random.default_rng(
                    [self.plan.seed, i, task_id, 7, attempt])
                flipped = _bitflip_first_array(result, rng)
                if flipped is not result:
                    record("chaos",
                           f"bitflip_partial: task {task_id} partial "
                           f"corrupted (attempt {attempt})", 0.0)
                    result = flipped
        return result

    def on_share(self, share_id: int, key: str, nbytes: int, itemsize: int,
                 record: Callable[[str, str, float], None]) -> Optional[int]:
        """Shared-operand hook: a byte offset to corrupt, or None.

        Called by ``ExecutionEngine.share`` after publishing; the engine
        owns the corruption mechanics (in-process copy vs arena segment),
        this hook only makes the seeded decision and picks a mantissa
        byte so the damage stays finite and silent.
        """
        for i, spec in enumerate(self.plan.specs):
            if spec.kind != "bitflip_arena":
                continue
            if not self._fires(i, spec, share_id):
                continue
            rng = np.random.default_rng([self.plan.seed, i, share_id, 11])
            offset = _mantissa_offset(rng, nbytes, itemsize)
            record("chaos",
                   f"bitflip_arena: shared operand {key!r} (share "
                   f"{share_id}) corrupted at byte {offset}", 0.0)
            return offset
        return None

    def on_checkpoint_write(self, write_id: int, path: str,
                            record: Callable[[str, str, float], None]) -> bool:
        """Checkpoint hook: flip one bit of a just-written npz on disk.

        Called by ``CheckpointStore`` after the atomic replace; ``write_id``
        counts persisted checkpoints from 0.  Returns True when the file
        was corrupted.
        """
        fired = False
        for i, spec in enumerate(self.plan.specs):
            if spec.kind != "bitflip_checkpoint":
                continue
            if not self._fires(i, spec, write_id):
                continue
            rng = np.random.default_rng([self.plan.seed, i, write_id, 13])
            try:
                size = os.path.getsize(path)
                if size <= 0:
                    continue
                offset = int(rng.integers(size))
                with open(path, "r+b") as fh:
                    fh.seek(offset)
                    byte = fh.read(1)
                    if not byte:
                        continue
                    fh.seek(offset)
                    fh.write(bytes([byte[0] ^ (1 << int(rng.integers(8)))]))
            except OSError:
                continue
            record("chaos",
                   f"bitflip_checkpoint: write {write_id} ({path}) "
                   f"corrupted at byte offset", 0.0)
            fired = True
        return fired


def resolve_chaos(chaos: ChaosLike = None) -> Optional[ChaosInjector]:
    """Build (or pass through) a chaos injector.

    ``chaos=None`` consults ``REPRO_CHAOS``; an empty or whitespace-only
    value counts as unset and returns None (no injection).
    """
    if isinstance(chaos, ChaosInjector):
        return chaos
    if chaos is None:
        raw = read_str(ENV_CHAOS)
        if raw is None:
            return None
        chaos = raw
    if isinstance(chaos, str):
        chaos = parse_chaos_plan(chaos)
    if isinstance(chaos, ChaosPlan):
        return ChaosInjector(chaos) if chaos else None
    raise ConfigurationError(
        f"chaos must be a ChaosInjector, ChaosPlan, spec string, or None; "
        f"got {type(chaos).__name__}"
    )
