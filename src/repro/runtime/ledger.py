"""Time accounting for the simulated machine.

The simulator executes the partitioned k-means *for real* (NumPy does the
arithmetic) but the wall-clock of the Python process says nothing about the
Sunway.  Instead, every phase of the algorithm charges its modelled cost to a
:class:`TimeLedger`:

* ``compute``  — floating-point work on the CPEs,
* ``dma``      — main-memory <-> LDM transfers,
* ``regcomm``  — register communication across a CG's CPE mesh,
* ``network``  — MPI traffic between CGs/nodes.

Parallel work is charged as the *maximum* over the concurrent units (the
SPMD critical path); sequential phases add.  Iteration boundaries let the
experiments report the paper's headline metric, **one-iteration completion
time**.

Cost charging is an *observer* of the numerics, not part of them: every
executor and transport talks to the :class:`LedgerProtocol` interface, and
:class:`NullLedger` is the no-op implementation that lets the same code run
pure NumPy arithmetic with zero simulation bookkeeping
(``HierarchicalKMeans(..., model_costs=False)``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..errors import ConfigurationError

#: The categories a phase may be charged to.  ``checkpoint`` holds the I/O
#: cost of periodic state snapshots and ``recovery`` the time lost to
#: fault handling (retry backoff, checkpoint restore, re-planning) — both
#: are empty unless fault tolerance is enabled (see
#: :mod:`repro.runtime.faults`).
CATEGORIES = ("compute", "dma", "regcomm", "network", "checkpoint",
              "recovery")


@dataclass(frozen=True)
class PhaseRecord:
    """One charged phase: where the time went and why."""

    iteration: int
    category: str
    label: str
    seconds: float


@dataclass
class IterationBreakdown:
    """Per-iteration totals by category."""

    iteration: int
    by_category: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        # Sum in the canonical category order (then any custom keys,
        # sorted) so float addition order never depends on how the dict
        # was built.  For ledgers built by TimeLedger this is bit-identical
        # to insertion order.
        extras = sorted(k for k in self.by_category if k not in CATEGORIES)
        return sum(self.by_category[c]
                   for c in (*CATEGORIES, *extras) if c in self.by_category)


class LedgerProtocol(ABC):
    """Observer interface every cost-charging site writes to.

    Implementations: :class:`TimeLedger` (records everything — the default)
    and :class:`NullLedger` (discards everything — pure-numerics mode).
    Executors and transports must only depend on this interface so the two
    are interchangeable.
    """

    #: False when charges are discarded; executors skip cost-model
    #: bookkeeping entirely (byte counts, per-unit critical paths) when
    #: their ledger is disabled.
    enabled: bool = True

    # -- recording -----------------------------------------------------------

    @abstractmethod
    def charge(self, category: str, label: str, seconds: float) -> None:
        """Charge ``seconds`` of sequential time to a category."""

    @abstractmethod
    def charge_parallel(self, category: str, label: str,
                        unit_seconds: Iterable[float]) -> float:
        """Charge the critical path (max) over concurrent units."""

    @abstractmethod
    def next_iteration(self) -> int:
        """Mark the start of a new algorithm iteration; returns its index."""

    def skip_to(self, iteration: int) -> None:
        """Fast-forward the iteration counter without charging anything.

        Used by the resume path: a run restarted from an on-disk
        checkpoint at iteration ``j`` continues its epoch numbering at
        ``j + 1``, so telemetry and per-iteration records line up with the
        uninterrupted run's.  Never rewinds.
        """
        self._iteration = max(self._iteration, int(iteration))

    # -- queries ---------------------------------------------------------------

    @property
    @abstractmethod
    def records(self) -> Tuple[PhaseRecord, ...]:
        """Every phase charged so far."""

    @property
    @abstractmethod
    def n_iterations(self) -> int:
        """Number of iteration boundaries seen."""

    @abstractmethod
    def total(self) -> float:
        """Total modelled seconds across the whole run."""


class NullLedger(LedgerProtocol):
    """Discards every charge — the pure-numerics observer.

    Iteration boundaries are still counted (the convergence loop numbers
    its telemetry through the ledger) but no records accumulate, every
    total is 0.0, and nothing is ever validated or summed.
    """

    enabled = False

    def __init__(self) -> None:
        self._iteration = 0

    def charge(self, category: str, label: str, seconds: float) -> None:
        pass

    def charge_parallel(self, category: str, label: str,
                        unit_seconds: Iterable[float]) -> float:
        return 0.0

    def next_iteration(self) -> int:
        self._iteration += 1
        return self._iteration

    @property
    def records(self) -> Tuple[PhaseRecord, ...]:
        return ()

    @property
    def n_iterations(self) -> int:
        return self._iteration

    def total(self) -> float:
        return 0.0

    def total_by_category(self) -> Dict[str, float]:
        return {c: 0.0 for c in CATEGORIES}


class TimeLedger(LedgerProtocol):
    """Accumulates modelled time over the run of a simulated algorithm."""

    enabled = True

    def __init__(self) -> None:
        self._records: List[PhaseRecord] = []
        self._iteration = 0

    # -- recording -----------------------------------------------------------

    def charge(self, category: str, label: str, seconds: float) -> None:
        """Charge ``seconds`` of sequential time to a category.

        ``seconds`` must be finite and non-negative; the caller is expected
        to have already collapsed parallel units via :meth:`charge_parallel`.
        """
        if category not in CATEGORIES:
            raise ConfigurationError(
                f"unknown ledger category {category!r}; "
                f"expected one of {CATEGORIES}"
            )
        seconds = float(seconds)
        if not seconds >= 0.0:  # also catches NaN
            raise ConfigurationError(
                f"phase {label!r} has invalid duration {seconds!r}"
            )
        self._records.append(
            PhaseRecord(self._iteration, category, label, seconds)
        )

    def charge_parallel(self, category: str, label: str,
                        unit_seconds: Iterable[float]) -> float:
        """Charge the critical path (max) over concurrent units.

        Returns the charged value so callers can report it.
        """
        times = [float(t) for t in unit_seconds]
        if not times:
            raise ConfigurationError(
                f"phase {label!r} charged with no participating units"
            )
        worst = max(times)
        self.charge(category, label, worst)
        return worst

    def next_iteration(self) -> int:
        """Mark the start of a new algorithm iteration; returns its index."""
        self._iteration += 1
        return self._iteration

    # -- queries ---------------------------------------------------------------

    @property
    def records(self) -> Tuple[PhaseRecord, ...]:
        return tuple(self._records)

    @property
    def n_iterations(self) -> int:
        return self._iteration

    def total(self) -> float:
        """Total modelled seconds across the whole run."""
        return sum(r.seconds for r in self._records)

    def total_by_category(self) -> Dict[str, float]:
        out = {c: 0.0 for c in CATEGORIES}
        for r in self._records:
            out[r.category] += r.seconds
        return out

    def iteration_breakdowns(self) -> List[IterationBreakdown]:
        """Per-iteration category totals (iteration 0 is setup/load time)."""
        by_iter: Dict[int, IterationBreakdown] = {}
        for r in self._records:
            b = by_iter.setdefault(r.iteration, IterationBreakdown(r.iteration))
            b.by_category[r.category] = (
                b.by_category.get(r.category, 0.0) + r.seconds
            )
        return [by_iter[i] for i in sorted(by_iter)]

    def iteration_time(self, iteration: int) -> float:
        """Total modelled seconds charged during one iteration."""
        return sum(r.seconds for r in self._records if r.iteration == iteration)

    def mean_iteration_time(self) -> float:
        """Mean time of iterations 1..N (excludes the setup epoch 0).

        This is the paper's reported metric: *one iteration completion time*.
        """
        if self._iteration == 0:
            raise ConfigurationError("no iterations recorded")
        per_iter = [self.iteration_time(i) for i in range(1, self._iteration + 1)]
        return sum(per_iter) / len(per_iter)

    def merge(self, other: "TimeLedger") -> None:
        """Fold another ledger's records into this one (keeps iterations)."""
        self._records.extend(other._records)
        self._iteration = max(self._iteration, other._iteration)

    def report(self) -> str:
        """Human-readable category breakdown."""
        totals = self.total_by_category()
        lines = [f"total modelled time: {self.total():.6f} s "
                 f"over {self.n_iterations} iteration(s)"]
        for c in CATEGORIES:
            lines.append(f"  {c:8s} {totals[c]:.6f} s")
        return "\n".join(lines)
