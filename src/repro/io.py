"""Serialization: save/load k-means results and export experiment data.

Long-running sweeps need durable outputs.  Formats:

* ``save_result`` / ``load_result`` — a :class:`KMeansResult` round-trips
  through one ``.npz`` file (arrays) with the scalar metadata and the time
  ledger embedded as JSON,
* ``export_series_csv`` — figure series to CSV (one file per figure),
* ``save_experiment`` — an :class:`ExperimentOutput`'s report, CSV and
  check verdicts into a directory.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

import numpy as np

from .core.result import IterationStats, KMeansResult
from .errors import ConfigurationError
from .experiments.base import ExperimentOutput
from .perfmodel.sweep import Series
from .reporting.figures import series_csv
from .runtime.faults import FaultEvent
from .runtime.ledger import PhaseRecord, TimeLedger
from .runtime.supervisor import HostEvent

#: Format marker embedded in every saved result.
_FORMAT_VERSION = 1


def _ledger_to_dict(ledger: Optional[TimeLedger]) -> Optional[dict]:
    if ledger is None:
        return None
    return {
        "n_iterations": ledger.n_iterations,
        "records": [
            [r.iteration, r.category, r.label, r.seconds]
            for r in ledger.records
        ],
    }


def _ledger_from_dict(data: Optional[dict]) -> Optional[TimeLedger]:
    if data is None:
        return None
    ledger = TimeLedger()
    ledger._records = [
        PhaseRecord(int(it), str(cat), str(label), float(sec))
        for it, cat, label, sec in data["records"]
    ]
    ledger._iteration = int(data["n_iterations"])
    return ledger


def save_result(result: KMeansResult, path: str) -> None:
    """Persist a KMeansResult to ``path`` (.npz appended if missing)."""
    meta = {
        "format_version": _FORMAT_VERSION,
        "inertia": result.inertia,
        "n_iter": result.n_iter,
        "converged": result.converged,
        "level": result.level,
        "history": [
            [s.iteration, s.inertia, s.centroid_shift, s.n_reassigned,
             s.modelled_seconds]
            for s in result.history
        ],
        "ledger": _ledger_to_dict(result.ledger),
        "fault_events": [
            [e.iteration, e.kind, e.label, e.cg_index, e.action,
             e.recovery_seconds]
            for e in result.fault_events
        ],
        "host_events": [
            [e.iteration, e.kind, e.detail, e.seconds]
            for e in result.host_events
        ],
    }
    np.savez_compressed(
        path,
        centroids=result.centroids,
        assignments=result.assignments,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def load_result(path: str) -> KMeansResult:
    """Load a KMeansResult saved by :func:`save_result`."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        try:
            meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
            centroids = data["centroids"]
            assignments = data["assignments"]
        except KeyError as e:
            raise ConfigurationError(
                f"{path} is not a saved KMeansResult (missing {e})"
            ) from None
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported result format {meta.get('format_version')!r}"
        )
    history = [
        IterationStats(int(it), float(inr), float(shift), int(reass),
                       float(sec))
        for it, inr, shift, reass, sec in meta["history"]
    ]
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=float(meta["inertia"]),
        n_iter=int(meta["n_iter"]),
        converged=bool(meta["converged"]),
        history=history,
        ledger=_ledger_from_dict(meta["ledger"]),
        level=int(meta["level"]),
        # Absent in files saved before fault injection existed.
        fault_events=[
            FaultEvent(int(it), str(kind), str(label),
                       None if cg is None else int(cg), str(action),
                       float(sec))
            for it, kind, label, cg, action, sec
            in meta.get("fault_events", [])
        ],
        # Absent in files saved before host supervision existed.
        host_events=[
            HostEvent(int(it), str(kind), str(detail), float(sec))
            for it, kind, detail, sec in meta.get("host_events", [])
        ],
    )


def export_series_csv(series_by_label: Dict[str, Series], x_name: str,
                      path: str) -> None:
    """Write figure series to a CSV file."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(series_csv(series_by_label, x_name))


def save_experiment(output: ExperimentOutput, directory: str) -> None:
    """Persist an experiment: report text, checks JSON, and series CSV."""
    os.makedirs(directory, exist_ok=True)
    base = os.path.join(directory, output.exp_id)
    with open(base + ".txt", "w", encoding="utf-8") as f:
        f.write(output.text + "\n")
    with open(base + ".checks.json", "w", encoding="utf-8") as f:
        json.dump({"title": output.title, "checks": output.checks}, f,
                  indent=2)
    if output.series:
        # Series sharing an x axis go into one CSV; figures with multiple
        # panels (different axes, e.g. Figure 6) get one CSV per panel.
        groups: list[dict] = []
        for label, series in output.series.items():
            for group in groups:
                if next(iter(group.values())).x == series.x:
                    group[label] = series
                    break
            else:
                groups.append({label: series})
        if len(groups) == 1:
            export_series_csv(groups[0], "x", base + ".csv")
        else:
            for i, group in enumerate(groups, start=1):
                export_series_csv(group, "x", f"{base}.panel{i}.csv")
