"""Land-cover classification application (the paper's Figure 10).

Pipeline: satellite tile -> patch feature matrix -> hierarchical k-means
(k = 7 land classes) -> per-patch class map -> accuracy against ground
truth.  The paper runs this on DeepGlobe 2018 tiles (n = 5,838,480 patches,
k = 7, d = 4096, 400 SW26010 processors); the library runs the same pipeline
end-to-end on synthetic tiles at configurable scale, and prices the paper's
full-scale configuration with the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.kmeans import HierarchicalKMeans
from ..core.result import KMeansResult
from ..data.remote_sensing import (
    CLASS_NAMES,
    LandCoverImage,
    classification_accuracy,
    extract_patches,
    majority_class_map,
    synth_land_cover,
)
from ..errors import ConfigurationError
from ..machine.machine import Machine, toy_machine
from ..machine.specs import sunway_spec
from ..perfmodel.model import CostPrediction, PerformanceModel

#: The paper's full-scale configuration for this application (section IV.D).
PAPER_N = 5_838_480
PAPER_K = 7
PAPER_D = 4096
PAPER_NODES = 400


@dataclass
class LandCoverResult:
    """Outcome of the land-cover pipeline."""

    image: LandCoverImage
    kmeans: KMeansResult
    #: (patch-grid H, W) class indices predicted per patch.
    class_map: np.ndarray
    #: Cluster -> land-class mapping used to label clusters.
    cluster_to_class: Dict[int, int]
    #: Patch-level accuracy vs ground truth.
    accuracy: float
    #: Paper-scale one-iteration prediction (None if not requested).
    paper_scale: Optional[CostPrediction] = None

    def class_shares(self) -> Dict[str, float]:
        """Fraction of patches per land class."""
        total = self.class_map.size
        out: Dict[str, float] = {}
        for c, name in enumerate(CLASS_NAMES[:self.image.n_classes]):
            out[name] = float((self.class_map == c).sum()) / total
        return out

    def render_ascii(self, max_width: int = 64) -> str:
        """Coarse ASCII rendering of the predicted class map."""
        glyphs = "UAR FWB?"  # urban agriculture rangeland forest water barren
        h, w = self.class_map.shape
        step = max(1, w // max_width)
        lines = []
        for i in range(0, h, step):
            row = self.class_map[i, ::step]
            lines.append("".join(glyphs[c] if c < len(glyphs) else "?"
                                 for c in row))
        return "\n".join(lines)


def classify_land_cover(height: int = 128, width: int = 128, patch: int = 4,
                        n_classes: int = 7, machine: Optional[Machine] = None,
                        seed: int = 0, max_iter: int = 30,
                        predict_paper_scale: bool = False) -> LandCoverResult:
    """Run the full land-cover pipeline on a synthetic tile.

    Parameters
    ----------
    height, width:
        Tile size in pixels (must divide by ``patch``).
    patch:
        Patch edge; d = patch*patch*3.
    machine:
        Simulated machine for the clustering (default: a toy machine big
        enough for the patch dimensionality).
    predict_paper_scale:
        Also price the paper's n=5.8M, k=7, d=4096, 400-node configuration
        with the performance model.
    """
    if height % patch or width % patch:
        raise ConfigurationError(
            f"tile {height}x{width} must divide into {patch}x{patch} patches"
        )
    image = synth_land_cover(height, width, n_classes=n_classes, seed=seed)
    X, truth = extract_patches(image, patch=patch)

    if machine is None:
        machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                              ldm_bytes=64 * 1024)
    model = HierarchicalKMeans(
        n_clusters=n_classes, machine=machine, level="auto",
        init="kmeans++", seed=seed, max_iter=max_iter, tol=1e-12,
    )
    result = model.fit(X)

    mapping = majority_class_map(result.assignments, truth, n_classes)
    accuracy = classification_accuracy(result.assignments, truth, n_classes)
    grid_h, grid_w = height // patch, width // patch
    class_map = np.vectorize(mapping.__getitem__)(
        result.assignments).reshape(grid_h, grid_w)

    paper_pred = None
    if predict_paper_scale:
        paper_model = PerformanceModel(sunway_spec(PAPER_NODES))
        paper_pred = paper_model.predict(3, PAPER_N, PAPER_K, PAPER_D)

    return LandCoverResult(
        image=image,
        kmeans=result,
        class_map=class_map,
        cluster_to_class=mapping,
        accuracy=accuracy,
        paper_scale=paper_pred,
    )
