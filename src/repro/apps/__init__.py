"""End-user applications built on the public k-means API."""

from .landcover import (
    LandCoverResult,
    PAPER_D,
    PAPER_K,
    PAPER_N,
    PAPER_NODES,
    classify_land_cover,
)

__all__ = [
    "LandCoverResult",
    "PAPER_D",
    "PAPER_K",
    "PAPER_N",
    "PAPER_NODES",
    "classify_land_cover",
]
