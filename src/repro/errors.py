"""Exception hierarchy for the repro package.

All errors raised by this package derive from :class:`ReproError`, so callers
can catch one type at an API boundary.  The memory/partition errors mirror the
failure modes of the real machine: a configuration that would overflow a CPE's
64 KB LDM on the Sunway raises :class:`LDMOverflowError` here, and a workload
that no partition plan can place raises :class:`PartitionError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A machine or algorithm configuration is inconsistent or out of range."""


class LDMOverflowError(ReproError):
    """An allocation would exceed a CPE's Local Directive Memory budget.

    Attributes
    ----------
    requested:
        Bytes requested by the failing allocation.
    available:
        Bytes still free in the LDM at the time of the request.
    capacity:
        Total LDM capacity in bytes.
    """

    def __init__(self, requested: int, available: int, capacity: int,
                 label: str = "") -> None:
        self.requested = int(requested)
        self.available = int(available)
        self.capacity = int(capacity)
        self.label = label
        what = f" for {label!r}" if label else ""
        super().__init__(
            f"LDM overflow{what}: requested {requested} B, "
            f"available {available} B of {capacity} B"
        )


class PartitionError(ReproError):
    """No feasible partition plan exists for the requested (n, k, d, machine)."""


class CommunicatorError(ReproError):
    """Invalid use of a simulated communicator (bad rank, size mismatch...)."""


class ConvergenceWarning(UserWarning):
    """k-means stopped on the iteration cap before centroids stabilised."""


class DataShapeError(ReproError):
    """Input data does not have the shape an algorithm requires."""


class FaultError(ReproError):
    """Base class for injected machine faults (see :mod:`repro.runtime.faults`).

    Attributes
    ----------
    iteration:
        Ledger epoch during which the fault fired (0 = setup).
    cg_index:
        Core group the fault targets, when the fault has a location.
    label:
        Phase label of the operation that hit the fault (e.g. the DMA or
        collective label), for diagnostics.
    transient:
        Class-level flag: True when a bounded retry can clear the fault,
        False for permanent failures (a dead core group stays dead).
    """

    transient: bool = True

    def __init__(self, message: str, *, iteration: int | None = None,
                 cg_index: int | None = None, label: str = "") -> None:
        self.iteration = iteration
        self.cg_index = cg_index
        self.label = label
        super().__init__(message)


class CGFailedError(FaultError):
    """A core group failed permanently; its work must be re-placed."""

    transient = False


class TransientDMAError(FaultError):
    """A DMA transfer was corrupted or dropped; retrying may succeed."""


class CollectiveTimeoutError(FaultError):
    """A collective did not complete in time; retrying may succeed."""


class NumericalFaultError(FaultError):
    """An iteration produced non-finite centroids or inertia.

    Raised by the per-iteration numerical guard when NaN/Inf leaks into
    the centroid matrix or the objective.  Transient: a NaN injected at
    the engine seam (or a corrupted partial) clears on a clean re-run,
    and the ``replan`` policy rolls back to the last checkpoint instead.
    """


class IntegrityError(FaultError):
    """Silent data corruption detected by the integrity layer.

    Raised when an ABFT checksum on a reduction partial, the CRC32 of a
    shared-arena segment, or the SHA-256 manifest of a checkpoint file
    fails verification (see :mod:`repro.runtime.integrity`).  Transient:
    under ``integrity="repair"`` the engine recomputes the smallest
    corrupted subtree/block, and persistent corruption escalates through
    the ordinary recovery policies (rollback/replan restore the last
    verified checkpoint).

    Attributes
    ----------
    path:
        Offending file for on-disk corruption (checkpoint npz), else None.
    location:
        Short description of where verification failed (e.g.
        ``"partial 3"``, ``"share:X"``, ``"final fold"``).
    """

    def __init__(self, message: str, *, path: str | None = None,
                 location: str = "", iteration: int | None = None) -> None:
        self.path = path
        self.location = location
        super().__init__(message, iteration=iteration)


class HostFaultError(ReproError):
    """Base class for *host-side* failures (the real Python process).

    Distinct from :class:`FaultError`, which models faults of the
    simulated Sunway machine: host faults are raised by the execution
    engine and the run supervisor about the process actually running
    the numerics, and deliberately do not flow through the modelled
    recovery policies.
    """


class ChaosError(HostFaultError):
    """An injected host-chaos block-task failure (see repro.runtime.chaos)."""

    def __init__(self, message: str, *, task_id: int | None = None,
                 kind: str = "") -> None:
        self.task_id = task_id
        self.kind = kind
        super().__init__(message)


class TaskTimeoutError(HostFaultError):
    """A block task exceeded the engine's per-task timeout on every attempt."""


class DeadlineExceededError(HostFaultError):
    """The run supervisor's wall-clock deadline expired mid-run."""
