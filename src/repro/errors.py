"""Exception hierarchy for the repro package.

All errors raised by this package derive from :class:`ReproError`, so callers
can catch one type at an API boundary.  The memory/partition errors mirror the
failure modes of the real machine: a configuration that would overflow a CPE's
64 KB LDM on the Sunway raises :class:`LDMOverflowError` here, and a workload
that no partition plan can place raises :class:`PartitionError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A machine or algorithm configuration is inconsistent or out of range."""


class LDMOverflowError(ReproError):
    """An allocation would exceed a CPE's Local Directive Memory budget.

    Attributes
    ----------
    requested:
        Bytes requested by the failing allocation.
    available:
        Bytes still free in the LDM at the time of the request.
    capacity:
        Total LDM capacity in bytes.
    """

    def __init__(self, requested: int, available: int, capacity: int,
                 label: str = "") -> None:
        self.requested = int(requested)
        self.available = int(available)
        self.capacity = int(capacity)
        self.label = label
        what = f" for {label!r}" if label else ""
        super().__init__(
            f"LDM overflow{what}: requested {requested} B, "
            f"available {available} B of {capacity} B"
        )


class PartitionError(ReproError):
    """No feasible partition plan exists for the requested (n, k, d, machine)."""


class CommunicatorError(ReproError):
    """Invalid use of a simulated communicator (bad rank, size mismatch...)."""


class ConvergenceWarning(UserWarning):
    """k-means stopped on the iteration cap before centroids stabilised."""


class DataShapeError(ReproError):
    """Input data does not have the shape an algorithm requires."""
