"""Calibration parameters for the analytic performance model.

The model prices one Lloyd iteration at *paper scale* (up to 4,096 nodes /
1,064,496 cores) without materialising any data.  Its constants come from
two places:

* the machine spec (bandwidths, latencies, core counts) — published numbers,
* a small set of implementation parameters below (staging-buffer sizing,
  sustained-FLOP efficiency, per-message MPI overhead) calibrated once so
  the model lands in the paper's reported ranges (see EXPERIMENTS.md).

A key modelling decision, documented in DESIGN.md: the paper's written
constraints C1-C3 describe a fully *resident* buffer set, but its own
experiments exceed them by orders of magnitude (e.g. Level 2 running
k=131,072 x d=4,096), so the real implementation must stream centroid slices
through the LDM with double-buffered DMA.  The model therefore computes a
*resident fraction* for the centroid+accumulator working set and charges
re-streaming traffic for the remainder — which reproduces, exactly, the
paper's "Level 2 cannot run with d greater than 4096" cutoff: four staging
buffers of d float32 elements hit 64 KB at d = 4096.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..machine.specs import MachineSpec


@dataclass(frozen=True)
class ModelParams:
    """Tunable implementation parameters of the analytic model."""

    #: Element type the experiments run with.  The paper's datasets are
    #: imagery/sensor features; float32 is the natural storage type and is
    #: required to make its published (k, d) ranges feasible at all.
    dtype: np.dtype = np.dtype(np.float32)
    #: Sustained fraction of peak FLOP/s for the LDM-resident distance kernel.
    compute_efficiency: float = 0.35
    #: Fraction of the LDM reserved for the streaming sample stage.
    stage_fraction: float = 0.45
    #: Fixed LDM overhead (stack, control, counters) in bytes.
    ldm_overhead_bytes: int = 1024
    #: Per-message software overhead (seconds) of fine-grained MPI traffic —
    #: the Level-3 per-sample MINLOC is a chain of 16-byte messages whose
    #: sustained rate this bounds.  MPE-driven MPI on the SW26010 is slow
    #: for small messages; 8 us calibrates Level 3's flat overhead floor to
    #: the paper's Figure 7.
    mpi_message_overhead: float = 8.0e-6
    #: Streaming buffers required per CPE: sample double-buffer (2) +
    #: centroid chunk + accumulator chunk.
    stream_buffers: int = 4
    #: Fixed per-iteration orchestration cost (seconds): MPE kernel launch,
    #: CPE spawn/join, MPI setup.  Matters only for sub-10ms workloads.
    iteration_overhead: float = 1.0e-3

    def __post_init__(self) -> None:
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ConfigurationError(
                f"compute_efficiency must be in (0, 1], got "
                f"{self.compute_efficiency}"
            )
        if not 0.0 < self.stage_fraction < 1.0:
            raise ConfigurationError(
                f"stage_fraction must be in (0, 1), got {self.stage_fraction}"
            )
        if self.ldm_overhead_bytes < 0:
            raise ConfigurationError("ldm_overhead_bytes must be >= 0")

    @property
    def itemsize(self) -> int:
        return int(np.dtype(self.dtype).itemsize)


@dataclass(frozen=True)
class MachineParams:
    """Machine-derived constants the model consumes, in consistent units."""

    n_nodes: int
    n_cgs: int
    cpes_per_cg: int
    ldm_bytes: int
    #: DMA bandwidth per CG, bytes/s (shared by its CPEs).
    dma_bw: float
    #: Register-communication bandwidth per CG mesh, bytes/s.
    reg_bw: float
    #: Register hop latency (s) and hops per mesh sweep.
    reg_latency: float
    mesh_hops: int
    #: Peak FLOP/s of one CPE.
    cpe_peak_flops: float
    #: Network bandwidth intra/inter supernode, bytes/s, and latencies.
    net_bw_intra: float
    net_bw_inter: float
    net_lat_intra: float
    net_lat_inter: float
    nodes_per_supernode: int

    @property
    def total_cpes(self) -> int:
        return self.n_cgs * self.cpes_per_cg

    def network_bw(self, n_nodes_spanned: int) -> float:
        """Worst-link bandwidth for a collective spanning ``n`` nodes."""
        if n_nodes_spanned <= self.nodes_per_supernode:
            return self.net_bw_intra
        return self.net_bw_inter

    def network_lat(self, n_nodes_spanned: int) -> float:
        if n_nodes_spanned <= self.nodes_per_supernode:
            return self.net_lat_intra
        return self.net_lat_inter


def machine_params(spec: MachineSpec) -> MachineParams:
    """Extract the model's machine constants from a spec."""
    cg = spec.processor.cg
    net = spec.network
    return MachineParams(
        n_nodes=spec.n_nodes,
        n_cgs=spec.n_cgs,
        cpes_per_cg=cg.n_cpes,
        ldm_bytes=cg.cpe.ldm_bytes,
        dma_bw=cg.dma_bw,
        reg_bw=cg.register_bw,
        reg_latency=cg.register_latency,
        mesh_hops=cg.mesh_rows + cg.mesh_cols,
        cpe_peak_flops=cg.cpe.peak_flops,
        net_bw_intra=net.bandwidth(True),
        net_bw_inter=net.bandwidth(False),
        net_lat_intra=net.latency(True),
        net_lat_inter=net.latency(False),
        nodes_per_supernode=net.nodes_per_supernode,
    )


#: Default calibration used by every experiment.
DEFAULT_PARAMS = ModelParams()
