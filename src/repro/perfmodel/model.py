"""Analytic per-iteration cost model for the three partition levels.

The model prices the same phase structure the execute backend charges —
DMA streaming, CPE arithmetic, register-communication reductions, MPI
collectives — but analytically, so it scales to the paper's full machine
(4,096 nodes) in microseconds of wall time.  It adds the one mechanism the
laptop-scale executor never hits: **LDM residency and centroid
re-streaming** (see :mod:`repro.perfmodel.params`): when the per-CPE
centroid + accumulator working set exceeds the scratchpad, the non-resident
fraction must be re-fetched from main memory for every staged sample block,
multiplying DMA traffic.  This term is what makes Level 2 collapse as k*d
grows while Level 3 — which shrinks the per-CPE working set by the CG-group
size — keeps it resident, reproducing the crossovers of Figures 7-9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..machine.specs import MachineSpec
from .params import DEFAULT_PARAMS, MachineParams, ModelParams, machine_params

#: Candidate mgroup values for Level 2 (powers of two up to the mesh size).
_MGROUP_CANDIDATES = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class CostPrediction:
    """Modelled one-iteration completion time and its breakdown."""

    level: int
    n: int
    k: int
    d: int
    feasible: bool
    reason: str = ""
    #: Seconds per phase category.
    overhead: float = 0.0
    dma: float = 0.0
    compute: float = 0.0
    regcomm: float = 0.0
    network: float = 0.0
    #: Chosen partition parameters.
    mgroup: int = 0
    mprime_group: int = 0
    n_groups: int = 0
    #: Fraction of the centroid working set resident in LDM.
    resident_fraction: float = 1.0
    #: Fine-grained phase times for reporting/ablation.
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """One-iteration completion time (inf when infeasible)."""
        if not self.feasible:
            return math.inf
        return (self.overhead + self.dma + self.compute + self.regcomm
                + self.network)


@dataclass(frozen=True)
class _Residency:
    """Per-CPE LDM residency analysis for one configuration."""

    resident_fraction: float
    #: Samples held by one staging refill.
    samples_per_stage: int
    #: Total centroid-slice bytes fetched per iteration per CPE.
    cent_traffic_bytes: float


class PerformanceModel:
    """Prices one Lloyd iteration of each level on a machine spec.

    Parameters
    ----------
    spec:
        Machine description (any node count; nothing is materialised).
    params:
        Calibration constants; defaults reproduce the paper's setup.
    """

    def __init__(self, spec: MachineSpec,
                 params: ModelParams = DEFAULT_PARAMS) -> None:
        self.spec = spec
        self.mp: MachineParams = machine_params(spec)
        self.params = params

    # -- shared machinery ---------------------------------------------------

    def _stream_feasible(self, d_slice: int) -> bool:
        """Can streaming buffers for a d_slice-element sample slice fit?"""
        s = self.params.itemsize
        return self.params.stream_buffers * d_slice * s <= self.mp.ldm_bytes

    def _residency(self, d_slice: int, cent_slice_elems: float,
                   count_elems: float, samples_per_cpe: float) -> _Residency:
        """Residency fraction + per-iteration centroid DMA traffic per CPE."""
        s = self.params.itemsize
        ldm = self.mp.ldm_bytes
        sample_bytes = d_slice * s
        budget = ldm - self.params.ldm_overhead_bytes - 2 * sample_bytes
        working = (2.0 * cent_slice_elems + count_elems) * s
        cent_bytes = cent_slice_elems * s
        if working <= 0:
            return _Residency(1.0, max(1, int(samples_per_cpe)), 0.0)
        rf = max(0.0, min(1.0, budget / working))
        if rf >= 1.0:
            # Fully resident: the slice is fetched once per iteration.
            return _Residency(1.0, max(1, int(samples_per_cpe)), cent_bytes)
        stage_bytes = self.params.stage_fraction * ldm
        samples_per_stage = max(1, int(stage_bytes / max(sample_bytes, 1)))
        n_stages = math.ceil(max(samples_per_cpe, 1.0) / samples_per_stage)
        traffic = cent_bytes * (1.0 + (n_stages - 1) * (1.0 - rf))
        return _Residency(rf, samples_per_stage, traffic)

    def _allreduce(self, ranks: int, nbytes: float,
                   nodes_spanned: int) -> float:
        """Allreduce time over ``ranks`` of ``nbytes`` payload each.

        MPI libraries switch between algorithms by message size; we model
        that as the better of bandwidth-optimal ring and latency-optimal
        recursive doubling.
        """
        if ranks <= 1 or nbytes <= 0:
            return 0.0
        bw = self.mp.network_bw(nodes_spanned)
        lat = self.mp.network_lat(nodes_spanned)
        ring = 2.0 * (ranks - 1) * (lat + (nbytes / ranks) / bw)
        steps = math.ceil(math.log2(ranks))
        doubling = steps * (lat + nbytes / bw)
        return min(ring, doubling)

    def _flops_time(self, flops: float) -> float:
        return flops / (self.params.compute_efficiency
                        * self.mp.cpe_peak_flops)

    @staticmethod
    def _infeasible(level: int, n: int, k: int, d: int,
                    reason: str) -> CostPrediction:
        return CostPrediction(level=level, n=n, k=k, d=d, feasible=False,
                              reason=reason)

    # -- public API -----------------------------------------------------------

    def predict(self, level: int, n: int, k: int, d: int) -> CostPrediction:
        """One-iteration time for (n, k, d) at the given partition level."""
        if n < 1 or k < 1 or d < 1:
            raise ConfigurationError(
                f"n, k, d must be >= 1, got {n}, {k}, {d}"
            )
        if level == 1:
            return self.predict_level1(n, k, d)
        if level == 2:
            return self.predict_level2(n, k, d)
        if level == 3:
            return self.predict_level3(n, k, d)
        raise ConfigurationError(f"level must be 1, 2 or 3, got {level}")

    # -- Level 1 -----------------------------------------------------------------

    def predict_level1(self, n: int, k: int, d: int) -> CostPrediction:
        """n-partition: all centroids on every CPE, samples striped."""
        mp, p = self.mp, self.params
        s = p.itemsize
        if not self._stream_feasible(d):
            return self._infeasible(
                1, n, k, d,
                f"sample of d={d} cannot be double-buffered in "
                f"{mp.ldm_bytes} B LDM",
            )
        m = min(mp.total_cpes, n)
        samples_per_cpe = n / m
        res = self._residency(d, float(k) * d, float(k), samples_per_cpe)

        active_per_cg = min(mp.cpes_per_cg, math.ceil(m / mp.n_cgs))
        dma = active_per_cg * (samples_per_cpe * d * s
                               + res.cent_traffic_bytes) / mp.dma_bw
        compute = self._flops_time(
            3.0 * samples_per_cpe * k * d     # distances
            + samples_per_cpe * d             # accumulate
            + k * d                           # divide
        )
        acc_bytes = (k * d + k) * s
        regcomm = 2.0 * acc_bytes / mp.reg_bw + mp.mesh_hops * mp.reg_latency
        ranks = min(mp.n_cgs, m)
        network = self._allreduce(ranks, acc_bytes, mp.n_nodes)

        return CostPrediction(
            level=1, n=n, k=k, d=d, feasible=True,
            overhead=p.iteration_overhead, dma=dma, compute=compute, regcomm=regcomm, network=network,
            mgroup=1, mprime_group=1, n_groups=m,
            resident_fraction=res.resident_fraction,
            phases={
                "dma.stream": dma,
                "compute.assign+update": compute,
                "regcomm.allreduce": regcomm,
                "network.allreduce": network,
            },
        )

    # -- Level 2 -----------------------------------------------------------------

    def predict_level2(self, n: int, k: int, d: int) -> CostPrediction:
        """nk-partition: k over mgroup CPEs of a CG, n over CPE groups."""
        mp, p = self.mp, self.params
        s = p.itemsize
        if not self._stream_feasible(d):
            return self._infeasible(
                2, n, k, d,
                f"Level 2 needs {p.stream_buffers} LDM buffers of d={d} "
                f"elements; {p.stream_buffers * d * s} B exceeds the "
                f"{mp.ldm_bytes} B LDM",
            )

        # Smallest mgroup whose slice is fully resident; otherwise take the
        # whole mesh and accept re-streaming.
        cap = mp.cpes_per_cg
        chosen: Optional[int] = None
        for mg in _MGROUP_CANDIDATES:
            if mg > cap:
                break
            k_slice = math.ceil(k / mg)
            res = self._residency(d, float(k_slice) * d, float(k_slice), 1.0)
            if res.resident_fraction >= 1.0:
                chosen = mg
                break
        mgroup = chosen if chosen is not None else cap
        mgroup = min(mgroup, cap)

        groups = max(1, min(mp.total_cpes // mgroup, n))
        samples_per_group = n / groups
        k_slice = math.ceil(k / mgroup)
        res = self._residency(d, float(k_slice) * d, float(k_slice),
                              samples_per_group)

        # Every member CPE streams the whole group block; each CG hosts
        # cpes_per_cg member CPEs (of one or more groups).
        dma = mp.cpes_per_cg * (samples_per_group * d * s
                                + res.cent_traffic_bytes) / mp.dma_bw
        compute = self._flops_time(
            3.0 * samples_per_group * k_slice * d
            + samples_per_group * d / mgroup
            + k_slice * d
        )
        # Per-sample MINLOC across the group's mesh + the update allreduce.
        acc_bytes = (k * d + k) * s
        regcomm = (samples_per_group * (mp.mesh_hops * mp.reg_latency
                                        + 16.0 / mp.reg_bw)
                   + 2.0 * acc_bytes / mp.reg_bw)
        ranks = min(mp.n_cgs, groups)
        network = self._allreduce(ranks, acc_bytes, mp.n_nodes)

        return CostPrediction(
            level=2, n=n, k=k, d=d, feasible=True,
            overhead=p.iteration_overhead, dma=dma, compute=compute, regcomm=regcomm, network=network,
            mgroup=mgroup, mprime_group=1, n_groups=groups,
            resident_fraction=res.resident_fraction,
            phases={
                "dma.stream+restream": dma,
                "compute.assign+update": compute,
                "regcomm.minloc+allreduce": regcomm,
                "network.allreduce": network,
            },
        )

    # -- Level 3 -----------------------------------------------------------------

    def predict_level3(self, n: int, k: int, d: int) -> CostPrediction:
        """nkd-partition: d over the mesh, k over CG groups, n over groups."""
        mp, p = self.mp, self.params
        s = p.itemsize
        d_slice = math.ceil(d / mp.cpes_per_cg)
        if not self._stream_feasible(d_slice):
            return self._infeasible(
                3, n, k, d,
                f"even a d/{mp.cpes_per_cg} sample slice cannot be "
                f"double-buffered in {mp.ldm_bytes} B LDM",
            )

        # Smallest m'group whose per-CPE centroid slice is fully resident.
        budget = (mp.ldm_bytes - p.ldm_overhead_bytes
                  - 2 * d_slice * s)
        per_centroid_bytes = (2 * d_slice + 1) * s
        kg_max = budget // per_centroid_bytes if budget > 0 else 0
        if kg_max >= 1:
            mprime = min(max(1, math.ceil(k / kg_max)), mp.n_cgs)
        else:
            mprime = mp.n_cgs
        mprime = min(mprime, k) if k < mprime else mprime

        groups = max(1, mp.n_cgs // mprime)
        samples_per_group = n / groups
        k_slice = math.ceil(k / mprime)
        res = self._residency(d_slice, float(k_slice) * d_slice,
                              float(k_slice), samples_per_group)

        # A CG streams the block across its mesh: per-CPE volume is the
        # block's d_slice share, so the CG-aggregate is block * d * s.
        dma = (samples_per_group * d * s
               + mp.cpes_per_cg * res.cent_traffic_bytes) / mp.dma_bw
        compute = self._flops_time(
            3.0 * samples_per_group * k_slice * d_slice
            + samples_per_group * d_slice
            + k_slice * d_slice
        )
        # Mesh reduce of partial distances for every sample.
        regcomm = samples_per_group * (
            mp.mesh_hops * mp.reg_latency + k_slice * s / mp.reg_bw
        )
        # Per-sample MINLOC across the group's CGs (Algorithm 3 line 10-11):
        # a chain of 16-byte messages through a *pipelined* reduction tree.
        # Successive samples overlap across tree stages, so the sustained
        # cost is one per-message overhead per sample (plus the tree depth
        # once to drain) — independent of m'group, which is why Level 3
        # carries a roughly d-independent overhead floor (paper Figure 7).
        group_nodes = max(1, math.ceil(mprime / (mp.n_cgs // mp.n_nodes)))
        minloc_steps = math.ceil(math.log2(mprime)) if mprime > 1 else 0
        net_bw = self.mp.network_bw(group_nodes)
        if mprime > 1:
            minloc = (samples_per_group + minloc_steps) * (
                p.mpi_message_overhead + 16.0 / net_bw)
        else:
            minloc = 0.0
        # Update allreduce: slice owners across groups (machine-wide span).
        slice_bytes = (k_slice * d + k_slice) * s
        update = self._allreduce(groups, slice_bytes, mp.n_nodes)
        network = minloc + update

        return CostPrediction(
            level=3, n=n, k=k, d=d, feasible=True,
            overhead=p.iteration_overhead, dma=dma, compute=compute, regcomm=regcomm, network=network,
            mgroup=1, mprime_group=mprime, n_groups=groups,
            resident_fraction=res.resident_fraction,
            phases={
                "dma.stream+restream": dma,
                "compute.assign+update": compute,
                "regcomm.dim_reduce": regcomm,
                "network.minloc": minloc,
                "network.update_allreduce": update,
            },
        )


def predict(spec: MachineSpec, level: int, n: int, k: int, d: int,
            params: ModelParams = DEFAULT_PARAMS) -> CostPrediction:
    """One-shot convenience wrapper around :class:`PerformanceModel`."""
    return PerformanceModel(spec, params).predict(level, n, k, d)
