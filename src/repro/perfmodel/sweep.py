"""Parameter-sweep driver for regenerating the paper's figures.

A sweep varies one axis (k, d, or node count) while holding the rest fixed,
producing one :class:`Series` per partition level — exactly the data behind
Figures 3-9.  Infeasible points carry ``math.inf`` so plots/tables can show
where a strategy stops existing (Level 2 beyond d=4096 in Figure 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..errors import ConfigurationError
from ..machine.specs import sunway_spec
from .model import CostPrediction, PerformanceModel
from .params import DEFAULT_PARAMS, ModelParams

AXES = ("k", "d", "nodes")


@dataclass
class Series:
    """One line of a figure: x values and per-iteration seconds."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    predictions: List[CostPrediction] = field(default_factory=list)

    def finite(self) -> List[tuple]:
        """(x, y) pairs where the configuration was feasible."""
        return [(a, b) for a, b in zip(self.x, self.y) if math.isfinite(b)]

    def crossover_with(self, other: "Series") -> float | None:
        """First shared x where this series becomes cheaper than ``other``.

        Returns None if it never does (on feasible shared points).
        """
        for a, mine, theirs in zip(self.x, self.y, other.y):
            if math.isfinite(mine) and math.isfinite(theirs) and mine < theirs:
                return a
        return None


def sweep(axis: str, values: Sequence[int], levels: Iterable[int],
          n: int, k: int, d: int, nodes: int,
          params: ModelParams = DEFAULT_PARAMS) -> Dict[int, Series]:
    """Sweep one axis and price every level at every point.

    Parameters
    ----------
    axis:
        "k", "d" or "nodes" — which quantity ``values`` replaces.
    values:
        Sweep points.
    levels:
        Which partition levels to price (subset of {1, 2, 3}).
    n, k, d, nodes:
        The fixed workload; the swept one is ignored.

    Returns
    -------
    dict mapping level -> Series.
    """
    if axis not in AXES:
        raise ConfigurationError(f"axis must be one of {AXES}, got {axis!r}")
    levels = list(levels)
    if not levels or any(lv not in (1, 2, 3) for lv in levels):
        raise ConfigurationError(f"levels must be a subset of (1,2,3), got {levels}")
    if not values:
        raise ConfigurationError("values must be non-empty")

    out = {lv: Series(label=f"Level {lv}") for lv in levels}
    # Reuse one model per distinct node count (cheap, but tidy).
    models: Dict[int, PerformanceModel] = {}

    for v in values:
        cur_k, cur_d, cur_nodes = k, d, nodes
        if axis == "k":
            cur_k = int(v)
        elif axis == "d":
            cur_d = int(v)
        else:
            cur_nodes = int(v)
        model = models.get(cur_nodes)
        if model is None:
            model = PerformanceModel(sunway_spec(cur_nodes), params)
            models[cur_nodes] = model
        for lv in levels:
            pred = model.predict(lv, n, cur_k, cur_d)
            s = out[lv]
            s.x.append(float(v))
            s.y.append(pred.total)
            s.predictions.append(pred)
    return out


def best_level_series(series_by_level: Dict[int, Series]) -> Series:
    """Pointwise minimum over levels (what the auto-selector would give)."""
    levels = sorted(series_by_level)
    if not levels:
        raise ConfigurationError("series_by_level must be non-empty")
    first = series_by_level[levels[0]]
    best = Series(label="best level")
    for i, x in enumerate(first.x):
        ys = [(series_by_level[lv].y[i], lv) for lv in levels]
        y, lv = min(ys)
        best.x.append(x)
        best.y.append(y)
        best.predictions.append(series_by_level[lv].predictions[i])
    return best
