"""Calibrating model parameters against execute-backend measurements.

The analytic model carries a handful of implementation constants
(`ModelParams`).  For the paper's machine they are set once from published
evidence; for *other* machines (a different `MachineSpec`) the honest way
to choose them is to fit: run the execute backend on a set of workloads
and pick the constants minimising the log-ratio error between predicted
and charged per-iteration time.

The fit is a coarse-to-fine grid search over ``compute_efficiency`` and
``mpi_message_overhead`` — the two constants that dominate small-scale
behaviour — keeping everything else fixed.  Grid search is deliberate:
two parameters, a cheap objective, no risk of a quiet bad local minimum.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.init import init_centroids
from ..core.level1 import run_level1
from ..core.level2 import run_level2
from ..core.level3 import run_level3
from ..data.synthetic import gaussian_blobs
from ..errors import ConfigurationError
from ..machine.machine import Machine
from .model import PerformanceModel
from .params import ModelParams

_RUNNERS = {1: run_level1, 2: run_level2, 3: run_level3}

#: Default workload grid for calibration runs (all levels feasible on the
#: toy machines used in tests).
DEFAULT_WORKLOADS: Tuple[Dict[str, int], ...] = (
    dict(n=1000, k=8, d=16),
    dict(n=2000, k=16, d=32),
    dict(n=4000, k=24, d=64),
)


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a parameter fit."""

    params: ModelParams
    #: RMS log10 model/measurement ratio before and after fitting.
    error_before: float
    error_after: float
    #: (level, workload index) -> model/measured ratio under fitted params.
    ratios: Dict[Tuple[int, int], float]

    @property
    def improved(self) -> bool:
        return self.error_after <= self.error_before


def _measure(machine: Machine, workloads: Sequence[Dict[str, int]],
             levels: Sequence[int], seed: int,
             max_iter: int) -> Dict[Tuple[int, int], float]:
    measured: Dict[Tuple[int, int], float] = {}
    for w_i, shape in enumerate(workloads):
        X, _ = gaussian_blobs(**shape, seed=seed)
        C0 = init_centroids(X, shape["k"], method="first")
        for level in levels:
            result = _RUNNERS[level](X, C0, machine, max_iter=max_iter)
            measured[(level, w_i)] = result.mean_iteration_seconds()
    return measured


def _rms_log_error(model: PerformanceModel,
                   workloads: Sequence[Dict[str, int]],
                   measured: Dict[Tuple[int, int], float]) -> float:
    errs: List[float] = []
    for (level, w_i), seconds in measured.items():
        pred = model.predict(level, **workloads[w_i])
        if not pred.feasible or pred.total <= 0 or seconds <= 0:
            return float("inf")
        errs.append(np.log10(pred.total / seconds) ** 2)
    return float(np.sqrt(np.mean(errs)))


def calibrate(machine: Machine,
              workloads: Sequence[Dict[str, int]] = DEFAULT_WORKLOADS,
              levels: Sequence[int] = (1, 2, 3),
              base_params: Optional[ModelParams] = None,
              seed: int = 0, max_iter: int = 3) -> CalibrationResult:
    """Fit compute_efficiency and mpi_message_overhead to this machine.

    Parameters
    ----------
    machine:
        The machine to calibrate for (execute backend must be able to run
        on it, i.e. materialised LDM).
    workloads:
        (n, k, d) dicts; every level in ``levels`` must be feasible for
        each (resident semantics).
    base_params:
        Starting parameters; defaults to the paper calibration with the
        execute backend's dtype (float64) and no fixed overhead.

    Returns
    -------
    CalibrationResult with the fitted params (other fields of
    ``base_params`` are preserved).
    """
    if not workloads:
        raise ConfigurationError("workloads must be non-empty")
    if not levels or any(lv not in _RUNNERS for lv in levels):
        raise ConfigurationError(
            f"levels must be a subset of (1, 2, 3), got {levels}"
        )
    if base_params is None:
        base_params = ModelParams(dtype=np.dtype(np.float64),
                                  iteration_overhead=0.0)

    measured = _measure(machine, workloads, levels, seed, max_iter)
    error_before = _rms_log_error(
        PerformanceModel(machine.spec, base_params), workloads, measured)

    efficiencies = (0.1, 0.2, 0.35, 0.5, 0.7, 1.0)
    overheads = (2.5e-7, 1e-6, 4e-6, 8e-6, 3.2e-5)
    best_params = base_params
    best_error = error_before
    for eff in efficiencies:
        for ovh in overheads:
            candidate = replace(base_params, compute_efficiency=eff,
                                mpi_message_overhead=ovh)
            err = _rms_log_error(
                PerformanceModel(machine.spec, candidate),
                workloads, measured)
            if err < best_error:
                best_error = err
                best_params = candidate

    fitted_model = PerformanceModel(machine.spec, best_params)
    ratios = {
        (level, w_i): (fitted_model.predict(level, **workloads[w_i]).total
                       / seconds)
        for (level, w_i), seconds in measured.items()
    }
    return CalibrationResult(
        params=best_params,
        error_before=error_before,
        error_after=best_error,
        ratios=ratios,
    )
