"""Table III comparator fixtures: published per-iteration times of other systems.

The paper compares its Sunway execution time against five published
implementations on *their* largest solvable workloads (Table III).  The
comparator numbers are citations from the literature — we encode them as
fixtures; the Sunway side comes from our performance model, at the node
counts the paper lists for each row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError
from ..machine.specs import sunway_spec
from .model import PerformanceModel
from .params import DEFAULT_PARAMS, ModelParams


@dataclass(frozen=True)
class ComparatorRow:
    """One row of Table III."""

    approach: str
    hardware: str
    n: int
    k: int
    d: int
    #: Published per-iteration execution time of the comparator (seconds).
    their_seconds: float
    #: Node count the paper used for the Sunway side of this row.
    sunway_nodes: int
    #: Per-iteration Sunway time the paper reports.
    paper_sunway_seconds: float
    #: Speedup the paper claims.
    paper_speedup: float


#: Table III of the paper, verbatim.
TABLE_III: List[ComparatorRow] = [
    ComparatorRow(
        approach="Rossbach, et al [33] (Dandelion)",
        hardware="10x NVIDIA Tesla K20M + 20x Intel Xeon E5-2620",
        n=1_000_000_000, k=120, d=40,
        their_seconds=49.4, sunway_nodes=128,
        paper_sunway_seconds=0.468635, paper_speedup=105.0,
    ),
    ComparatorRow(
        approach="Bhimani, et al [3]",
        hardware="NVIDIA Tesla K20M",
        n=1_400_000, k=240, d=5,
        their_seconds=1.77, sunway_nodes=4,
        paper_sunway_seconds=0.025336, paper_speedup=70.0,
    ),
    ComparatorRow(
        approach="Jin, et al [23]",
        hardware="NVIDIA Tesla K20c",
        n=140_000, k=500, d=90,
        their_seconds=5.407, sunway_nodes=1,
        paper_sunway_seconds=0.110191, paper_speedup=49.0,
    ),
    ComparatorRow(
        approach="Li, et al [27]",
        hardware="Xilinx ZC706 FPGA",
        n=2_100_000, k=4, d=4,
        their_seconds=0.0085, sunway_nodes=1,
        paper_sunway_seconds=0.002839, paper_speedup=3.0,
    ),
    ComparatorRow(
        approach="Ding, et al [13] (Yinyang)",
        hardware="Intel i7-3770K",
        n=2_500_000, k=10_000, d=68,
        their_seconds=75.976, sunway_nodes=16,
        paper_sunway_seconds=2.424517, paper_speedup=31.0,
    ),
]


@dataclass(frozen=True)
class ComparisonResult:
    """Our model's verdict for one Table III row."""

    row: ComparatorRow
    our_sunway_seconds: float
    our_level: int

    @property
    def our_speedup(self) -> float:
        if self.our_sunway_seconds <= 0:
            raise ConfigurationError("modelled time must be positive")
        return self.row.their_seconds / self.our_sunway_seconds

    @property
    def sunway_wins(self) -> bool:
        return self.our_sunway_seconds < self.row.their_seconds


def compare_all(params: ModelParams = DEFAULT_PARAMS) -> List[ComparisonResult]:
    """Price every Table III row with our model at the paper's node counts.

    The best feasible level is chosen per row, as the paper's flexible
    multi-level design would.
    """
    out: List[ComparisonResult] = []
    for row in TABLE_III:
        model = PerformanceModel(sunway_spec(row.sunway_nodes), params)
        best = min(
            (model.predict(level, row.n, row.k, row.d)
             for level in (1, 2, 3)),
            key=lambda pred: pred.total,
        )
        out.append(ComparisonResult(
            row=row,
            our_sunway_seconds=best.total,
            our_level=best.level,
        ))
    return out
