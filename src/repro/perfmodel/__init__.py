"""Analytic performance model for paper-scale predictions.

While the execute backend (:mod:`repro.core`) runs the real partitioned
arithmetic at laptop scale, this package prices one Lloyd iteration at the
paper's full machine sizes — up to 4,096 nodes — using the machine spec's
published bandwidths plus a small calibrated parameter set.  Every figure
and table of the paper's evaluation is regenerated from these predictions
(see ``repro.experiments`` and ``benchmarks/``).
"""

from .calibration import CalibrationResult, calibrate
from .comparators import TABLE_III, ComparatorRow, ComparisonResult, compare_all
from .model import CostPrediction, PerformanceModel, predict
from .params import (
    DEFAULT_PARAMS,
    MachineParams,
    ModelParams,
    machine_params,
)
from .sweep import AXES, Series, best_level_series, sweep

__all__ = [
    "AXES",
    "CalibrationResult",
    "calibrate",
    "ComparatorRow",
    "ComparisonResult",
    "CostPrediction",
    "DEFAULT_PARAMS",
    "MachineParams",
    "ModelParams",
    "PerformanceModel",
    "Series",
    "TABLE_III",
    "best_level_series",
    "compare_all",
    "machine_params",
    "predict",
    "sweep",
]
