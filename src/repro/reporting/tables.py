"""Aligned ASCII table rendering for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import ConfigurationError


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as a column-aligned ASCII table.

    Cells are str()-ed; floats keep their repr as passed (format upstream).
    """
    headers = [str(h) for h in headers]
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {i} has {len(row)} cells but there are "
                f"{len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt_row(headers))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Human-scaled time: 'inf' for infeasible, µs/ms/s otherwise."""
    if seconds != seconds:  # NaN
        return "nan"
    if seconds == float("inf"):
        return "infeasible"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
