"""Ledger trace rendering: where did a simulated run's time go?

Turns a :class:`~repro.runtime.ledger.TimeLedger` into

* a per-iteration category table (`iteration_table`),
* a per-phase top-N hot-spot list (`hotspots`),
* a proportional text bar chart per category (`category_bars`),

so users can see, e.g., that a Level-2 run at d=4096 is DMA-bound while a
Level-3 run of the same workload is compute-bound — the paper's analysis
sections III.A-C rendered from actual charged phases.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from ..runtime.ledger import CATEGORIES, TimeLedger
from .tables import format_seconds, format_table

_BAR_WIDTH = 40


def iteration_table(ledger: TimeLedger) -> str:
    """Per-iteration seconds by category (iteration 0 = setup)."""
    breakdowns = ledger.iteration_breakdowns()
    if not breakdowns:
        raise ConfigurationError("ledger has no records")
    rows = []
    for b in breakdowns:
        label = "setup" if b.iteration == 0 else str(b.iteration)
        rows.append(
            [label]
            + [format_seconds(b.by_category.get(c, 0.0)) for c in CATEGORIES]
            + [format_seconds(b.total)]
        )
    return format_table(["iter"] + list(CATEGORIES) + ["total"], rows,
                        title="per-iteration time by category")


def hotspots(ledger: TimeLedger, top: int = 10) -> List[Tuple[str, float]]:
    """The ``top`` most expensive phase labels, aggregated over the run."""
    if top < 1:
        raise ConfigurationError(f"top must be >= 1, got {top}")
    totals: Dict[str, float] = defaultdict(float)
    for r in ledger.records:
        totals[f"{r.category}:{r.label}"] += r.seconds
    ranked = sorted(totals.items(), key=lambda kv: kv[1], reverse=True)
    return ranked[:top]


def hotspot_table(ledger: TimeLedger, top: int = 10) -> str:
    """Rendered hot-spot list with share-of-total bars."""
    ranked = hotspots(ledger, top)
    total = ledger.total()
    rows = []
    for label, seconds in ranked:
        share = seconds / total if total > 0 else 0.0
        bar = "#" * max(1, int(share * _BAR_WIDTH)) if seconds else ""
        rows.append([label, format_seconds(seconds),
                     f"{share * 100:5.1f}%", bar])
    return format_table(["phase", "time", "share", ""], rows,
                        title=f"top {len(rows)} phases")


def category_bars(ledger: TimeLedger) -> str:
    """One proportional bar per category."""
    totals = ledger.total_by_category()
    full = max(totals.values()) if any(totals.values()) else 1.0
    lines = []
    for c in CATEGORIES:
        width = int(totals[c] / full * _BAR_WIDTH) if full > 0 else 0
        lines.append(f"{c:8s} {format_seconds(totals[c]):>12s}  "
                     f"{'#' * width}")
    return "\n".join(lines)


def render_trace(ledger: TimeLedger, top: int = 8) -> str:
    """Full trace report: iteration table + categories + hot spots."""
    return "\n\n".join([
        iteration_table(ledger),
        category_bars(ledger),
        hotspot_table(ledger, top),
    ])
