"""Text rendering and CSV export for figure series.

Figures are regenerated as numeric series (see
:class:`repro.perfmodel.sweep.Series`); this module turns them into aligned
value tables and compact unicode sparkline plots so the benchmark harness
can print "the same rows/series the paper reports" without a plotting
dependency.
"""

from __future__ import annotations

import io
import math
from typing import Dict, Sequence

from ..errors import ConfigurationError
from ..perfmodel.sweep import Series
from .tables import format_seconds, format_table

_SPARK = "▁▂▃▄▅▆▇█"


def series_table(series_by_label: Dict[str, Series], x_name: str,
                 title: str | None = None) -> str:
    """Column-aligned table: one x column + one column per series."""
    if not series_by_label:
        raise ConfigurationError("series_by_label must be non-empty")
    labels = list(series_by_label)
    first = series_by_label[labels[0]]
    for lbl in labels[1:]:
        if series_by_label[lbl].x != first.x:
            raise ConfigurationError(
                f"series {lbl!r} has a different x axis than {labels[0]!r}"
            )
    headers = [x_name] + labels
    rows = []
    for i, x in enumerate(first.x):
        cells = [f"{x:g}"]
        for lbl in labels:
            cells.append(format_seconds(series_by_label[lbl].y[i]))
        rows.append(cells)
    return format_table(headers, rows, title=title)


def sparkline(values: Sequence[float]) -> str:
    """Compact unicode trend line; infeasible points render as 'x'."""
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return "x" * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in values:
        if not math.isfinite(v):
            out.append("x")
        elif span == 0:
            out.append(_SPARK[0])
        else:
            idx = int((v - lo) / span * (len(_SPARK) - 1))
            out.append(_SPARK[idx])
    return "".join(out)


def series_sparklines(series_by_label: Dict[str, Series]) -> str:
    """One sparkline per series, labels aligned."""
    if not series_by_label:
        raise ConfigurationError("series_by_label must be non-empty")
    width = max(len(lbl) for lbl in series_by_label)
    return "\n".join(
        f"{lbl.ljust(width)}  {sparkline(s.y)}"
        for lbl, s in series_by_label.items()
    )


def series_csv(series_by_label: Dict[str, Series], x_name: str) -> str:
    """CSV export (x column + one column per series, inf for infeasible)."""
    if not series_by_label:
        raise ConfigurationError("series_by_label must be non-empty")
    labels = list(series_by_label)
    first = series_by_label[labels[0]]
    for lbl in labels[1:]:
        if series_by_label[lbl].x != first.x:
            raise ConfigurationError(
                f"series {lbl!r} has a different x axis than {labels[0]!r}; "
                f"export them separately"
            )
    buf = io.StringIO()
    buf.write(",".join([x_name] + labels) + "\n")
    for i, x in enumerate(first.x):
        row = [f"{x:g}"]
        for lbl in labels:
            y = series_by_label[lbl].y[i]
            row.append("inf" if not math.isfinite(y) else f"{y:.9g}")
        buf.write(",".join(row) + "\n")
    return buf.getvalue()
