"""Rendering helpers: ASCII tables, text figures, CSV export."""

from .figures import series_csv, series_sparklines, series_table, sparkline
from .trace import category_bars, hotspot_table, hotspots, iteration_table, render_trace
from .tables import format_seconds, format_table

__all__ = [
    "category_bars",
    "format_seconds",
    "hotspot_table",
    "hotspots",
    "iteration_table",
    "render_trace",
    "format_table",
    "series_csv",
    "series_sparklines",
    "series_table",
    "sparkline",
]
