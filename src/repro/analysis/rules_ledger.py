"""L-series rules: ledger/cost-model discipline at the engine seam.

PR 3's design note: block tasks handed to the
:class:`~repro.runtime.engine.ExecutionEngine` are *pure numerics*; all
cost-model charging stays in a serial fixed-order loop after the partials
return.  A charge inside an engine task would be re-applied by host
retries/speculative re-runs and would land in pool-thread order — both
break the bit-identical modelled ledger.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from .reprolint import Finding, LintContext, Rule, dotted_name, register_rule

#: Methods that mutate the modelled ledger.
_CHARGE_METHODS = ("charge", "charge_parallel", "charge_stream_phases")


def _charge_calls(func: ast.AST) -> List[ast.Call]:
    """Ledger-charging calls anywhere inside ``func`` (excluding nested defs
    not reachable from it — conservatively we include everything: a nested
    helper defined inside a task body runs inside the task)."""
    calls = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = dotted_name(node.func.value)
            if node.func.attr in _CHARGE_METHODS \
                    or "ledger" in receiver.lower():
                if node.func.attr in _CHARGE_METHODS:
                    calls.append(node)
    return calls


@register_rule
class ChargeInsideEngineTask(Rule):
    """L201: functions submitted to the engine never touch the ledger."""

    id = "L201"
    name = "charge-inside-engine-task"
    summary = ("functions passed to ExecutionEngine.map must not charge "
               "the ledger; charging stays in the serial fixed-order loop")
    scopes = ("core", "runtime")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        # Map every function name to its (innermost) def node so a task
        # passed by name can be resolved; lambdas are inspected inline.
        defs: Dict[str, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs[node.name] = node
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "map"
                    and dotted_name(node.func.value).split(".")[-1]
                    == "engine"
                    and node.args):
                continue
            task = node.args[0]
            target: Optional[ast.AST] = None
            label = ""
            if isinstance(task, ast.Lambda):
                target, label = task, "lambda"
            elif isinstance(task, ast.Name) and task.id in defs:
                target, label = defs[task.id], task.id
            if target is None:
                continue
            for charge in _charge_calls(target):
                yield Finding(
                    rule=self.id, path=ctx.path, line=charge.lineno,
                    col=charge.col_offset + 1,
                    message=(
                        f"`.{charge.func.attr}(...)` inside engine task "  # type: ignore[attr-defined]
                        f"`{label}`: host retries would re-charge it and "
                        f"pool threads would charge out of order; move "
                        f"charging to the serial loop over the partials"),
                )


@register_rule
class UnknownChargeCategory(Rule):
    """L202: literal charge categories come from the ledger's CATEGORIES."""

    id = "L202"
    name = "unknown-charge-category"
    summary = ("string-literal categories passed to ledger.charge* must be "
               "one of repro.runtime.ledger.CATEGORIES")

    def _categories(self) -> tuple:
        from ..runtime.ledger import CATEGORIES
        return CATEGORIES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        categories = self._categories()
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("charge", "charge_parallel")
                    and node.args):
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) \
                    and isinstance(first.value, str) \
                    and first.value not in categories:
                yield ctx.finding(
                    self, first,
                    f"charge category {first.value!r} is not one of "
                    f"{categories}; typo'd categories silently split "
                    f"the time accounting")
