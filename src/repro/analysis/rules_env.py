"""E-series rules: environment hygiene and fault-path integrity.

Every ``REPRO_*`` knob is declared once in
:mod:`repro.analysis.envvars` and read through its typed accessors, so the
empty/whitespace-as-unset semantics live in exactly one place and the docs
table cannot drift from the code.  The fault-path rule guards PR 2's
contract: modelled :class:`~repro.errors.FaultError` faults belong to the
recovery policies and must never be swallowed by a broad host-side
``except``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List

from .reprolint import Finding, LintContext, Rule, dotted_name, register_rule

_REPRO_NAME = re.compile(r"^REPRO_[A-Z0-9_]+$")

#: The one module allowed to touch ``os.environ``.
_ACCESSOR_MODULE = "envvars"


@register_rule
class RawEnvironRead(Rule):
    """E401: all environment access goes through the typed accessors."""

    id = "E401"
    name = "raw-environ-read"
    summary = ("only repro.analysis.envvars may touch os.environ / "
               "os.getenv; everything else uses its typed accessors")
    scopes = ("repro",)
    exempt = (_ACCESSOR_MODULE,)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            name = ""
            if isinstance(node, (ast.Attribute, ast.Name)):
                name = dotted_name(node)
            if name.endswith("os.environ") or name == "os.environ" \
                    or name.endswith("os.getenv") or name == "os.getenv":
                yield ctx.finding(
                    self, node,
                    "direct environment access; read knobs through "
                    "repro.analysis.envvars (read_str/read_int/read_float) "
                    "so empty-as-unset semantics and the registry hold")


@register_rule
class UndeclaredEnvVar(Rule):
    """E402: every REPRO_* literal is declared in the central registry."""

    id = "E402"
    name = "undeclared-env-var"
    summary = ("string literals naming a REPRO_* variable must be declared "
               "in repro.analysis.envvars.REGISTRY")
    scopes = ("repro",)
    exempt = (_ACCESSOR_MODULE,)

    def _registered(self) -> frozenset:
        from .envvars import REGISTRY
        return frozenset(REGISTRY)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        registered = self._registered()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str) \
                    and _REPRO_NAME.match(node.value) \
                    and node.value not in registered:
                yield ctx.finding(
                    self, node,
                    f"{node.value} is not declared in "
                    f"repro.analysis.envvars.REGISTRY; add an EnvVar entry "
                    f"(and its docs/api.md row) before reading it")


def _catches_fault_error(handler: ast.ExceptHandler) -> bool:
    """True when the handler's type names FaultError or a subclass of it."""
    names: List[str] = []
    node = handler.type
    if node is None:
        return False
    for sub in ast.walk(node):
        dotted = dotted_name(sub)
        if dotted:
            names.append(dotted.rsplit(".", 1)[-1])
    return any(name == "FaultError" or name.endswith("FaultError")
               or name in ("CGFailedError", "TransientDMAError",
                           "CollectiveTimeoutError")
               for name in names)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    for sub in ast.walk(handler.type):
        dotted = dotted_name(sub)
        if dotted.rsplit(".", 1)[-1] in ("Exception", "BaseException"):
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """The handler re-raises (a bare ``raise`` or raising the bound name)."""
    bound = handler.name
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if bound is not None and isinstance(node.exc, ast.Name) \
                    and node.exc.id == bound:
                return True
            if node.cause is not None or node.exc is not None:
                # Raising *something* (possibly wrapping) still propagates.
                return True
    return False


@register_rule
class SwallowedFaultError(Rule):
    """E403: broad excepts must let modelled FaultErrors propagate."""

    id = "E403"
    name = "swallowed-fault-error"
    summary = ("an `except Exception`/bare except in core/runtime must be "
               "preceded by an `except FaultError: raise` arm or itself "
               "re-raise — modelled faults belong to the recovery policies")
    scopes = ("core", "runtime")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            fault_handled = False
            for handler in node.handlers:
                if _catches_fault_error(handler):
                    fault_handled = True
                    continue
                if _is_broad(handler) and not fault_handled \
                        and not _reraises(handler):
                    yield ctx.finding(
                        self, handler,
                        "broad except swallows FaultError: add an earlier "
                        "`except FaultError: raise` arm (or re-raise) so "
                        "modelled faults reach the recovery policies")
