"""E-series rules: environment hygiene and fault-path integrity.

Every ``REPRO_*`` knob is declared once in
:mod:`repro.analysis.envvars` and read through its typed accessors, so the
empty/whitespace-as-unset semantics live in exactly one place and the docs
table cannot drift from the code.  The fault-path rule guards PR 2's
contract: modelled :class:`~repro.errors.FaultError` faults belong to the
recovery policies and must never be swallowed by a broad host-side
``except``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set

from .reprolint import Finding, LintContext, Rule, dotted_name, register_rule

_REPRO_NAME = re.compile(r"^REPRO_[A-Z0-9_]+$")

#: The one module allowed to touch ``os.environ``.
_ACCESSOR_MODULE = "envvars"


@register_rule
class RawEnvironRead(Rule):
    """E401: all environment access goes through the typed accessors."""

    id = "E401"
    name = "raw-environ-read"
    summary = ("only repro.analysis.envvars may touch os.environ / "
               "os.getenv; everything else uses its typed accessors")
    scopes = ("repro",)
    exempt = (_ACCESSOR_MODULE,)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            name = ""
            if isinstance(node, (ast.Attribute, ast.Name)):
                name = dotted_name(node)
            if name.endswith("os.environ") or name == "os.environ" \
                    or name.endswith("os.getenv") or name == "os.getenv":
                yield ctx.finding(
                    self, node,
                    "direct environment access; read knobs through "
                    "repro.analysis.envvars (read_str/read_int/read_float) "
                    "so empty-as-unset semantics and the registry hold")


@register_rule
class UndeclaredEnvVar(Rule):
    """E402: every REPRO_* literal is declared in the central registry."""

    id = "E402"
    name = "undeclared-env-var"
    summary = ("string literals naming a REPRO_* variable must be declared "
               "in repro.analysis.envvars.REGISTRY")
    scopes = ("repro",)
    exempt = (_ACCESSOR_MODULE,)

    def _registered(self) -> frozenset:
        from .envvars import REGISTRY
        return frozenset(REGISTRY)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        registered = self._registered()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str) \
                    and _REPRO_NAME.match(node.value) \
                    and node.value not in registered:
                yield ctx.finding(
                    self, node,
                    f"{node.value} is not declared in "
                    f"repro.analysis.envvars.REGISTRY; add an EnvVar entry "
                    f"(and its docs/api.md row) before reading it")


def _catches_fault_error(handler: ast.ExceptHandler) -> bool:
    """True when the handler's type names FaultError or a subclass of it."""
    names: List[str] = []
    node = handler.type
    if node is None:
        return False
    for sub in ast.walk(node):
        dotted = dotted_name(sub)
        if dotted:
            names.append(dotted.rsplit(".", 1)[-1])
    return any(name == "FaultError" or name.endswith("FaultError")
               or name in ("CGFailedError", "TransientDMAError",
                           "CollectiveTimeoutError")
               for name in names)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    for sub in ast.walk(handler.type):
        dotted = dotted_name(sub)
        if dotted.rsplit(".", 1)[-1] in ("Exception", "BaseException"):
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """The handler re-raises (a bare ``raise`` or raising the bound name)."""
    bound = handler.name
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if bound is not None and isinstance(node.exc, ast.Name) \
                    and node.exc.id == bound:
                return True
            if node.cause is not None or node.exc is not None:
                # Raising *something* (possibly wrapping) still propagates.
                return True
    return False


@register_rule
class SwallowedFaultError(Rule):
    """E403: broad excepts must let modelled FaultErrors propagate."""

    id = "E403"
    name = "swallowed-fault-error"
    summary = ("an `except Exception`/bare except in core/runtime must be "
               "preceded by an `except FaultError: raise` arm or itself "
               "re-raise — modelled faults belong to the recovery policies")
    scopes = ("core", "runtime")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            fault_handled = False
            for handler in node.handlers:
                if _catches_fault_error(handler):
                    fault_handled = True
                    continue
                if _is_broad(handler) and not fault_handled \
                        and not _reraises(handler):
                    yield ctx.finding(
                        self, handler,
                        "broad except swallows FaultError: add an earlier "
                        "`except FaultError: raise` arm (or re-raise) so "
                        "modelled faults reach the recovery policies")


def _unwrap_partial(node: ast.AST) -> ast.AST:
    """Peel ``functools.partial(fn, ...)`` down to the wrapped callable."""
    while isinstance(node, ast.Call) and node.args \
            and dotted_name(node.func).rsplit(".", 1)[-1] == "partial":
        node = node.args[0]
    return node


def _is_engine_task_call(node: ast.Call) -> bool:
    """A ``<...>.engine.map(...)`` / ``<...>.engine.map_reduce(...)`` call."""
    return (isinstance(node.func, ast.Attribute)
            and node.func.attr in ("map", "map_reduce")
            and dotted_name(node.func.value).rsplit(".", 1)[-1] == "engine")


@register_rule
class UnpicklableEngineCallable(Rule):
    """E404: engine task callables must be module-level (picklable)."""

    id = "E404"
    name = "unpicklable-engine-callable"
    summary = ("callables handed to engine.map / engine.map_reduce must be "
               "module-level functions (functools.partial over one is fine); "
               "lambdas and nested defs cannot pickle to process-engine "
               "workers")
    scopes = ("core", "runtime")

    def _local_callables(self, ctx: LintContext) -> Set[str]:
        """Names bound to lambdas or to functions nested inside another.

        A bounded fixpoint follows one-hop rebindings (``fn =
        functools.partial(<lambda>, 2)``; ``alias = fn``) so wrapping an
        unpicklable callable does not hide it from the rule.
        """
        local: Set[str] = set()
        for outer in ast.walk(ctx.tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(outer):
                if inner is not outer and isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    local.add(inner.name)
        for _ in range(4):  # bounded fixpoint over rebinding chains
            grew = False
            for node in ast.walk(ctx.tree):
                value: "ast.AST | None"
                if isinstance(node, ast.Assign):
                    value, targets = node.value, node.targets
                elif isinstance(node, ast.AnnAssign):
                    value, targets = node.value, [node.target]
                else:
                    continue
                if value is None:
                    continue
                value = _unwrap_partial(value)
                tainted = isinstance(value, ast.Lambda) \
                    or (isinstance(value, ast.Name) and value.id in local)
                if not tainted:
                    continue
                for target in targets:
                    for name in _assigned_names(target):
                        if name not in local:
                            local.add(name)
                            grew = True
            if not grew:
                break
        return local

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        local = self._local_callables(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) \
                    or not _is_engine_task_call(node) or not node.args:
                continue
            fn = _unwrap_partial(node.args[0])
            if isinstance(fn, ast.Lambda):
                yield ctx.finding(
                    self, fn,
                    "lambda passed as an engine task; lambdas cannot pickle "
                    "to process-engine workers — hoist it to a module-level "
                    "function (wrap bound state in functools.partial)")
            elif isinstance(fn, ast.Name) and fn.id in local:
                yield ctx.finding(
                    self, fn,
                    f"`{fn.id}` is a nested def (or a name bound to a "
                    f"lambda); its qualname cannot pickle to process-engine "
                    f"workers — hoist it to module level and carry bound "
                    f"state via functools.partial or the task objects")


def _assigned_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _assigned_names(element)


_NPZ_IO_CALLS = frozenset({"np.load", "np.savez", "np.savez_compressed",
                           "numpy.load", "numpy.savez",
                           "numpy.savez_compressed"})
_CHECKPOINT_HINTS = ("checkpoint", "registry")


def _mentions_checkpoint(node: ast.AST) -> bool:
    """True when an argument subtree names a checkpoint/registry path.

    Heuristic by necessity (the path is a runtime value): a variable,
    attribute, or string literal containing ``checkpoint``/``registry``
    marks the call as touching durable run state.
    """
    for sub in ast.walk(node):
        text = ""
        if isinstance(sub, ast.Name):
            text = sub.id
        elif isinstance(sub, ast.Attribute):
            text = sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            text = sub.value
        if any(hint in text.lower() for hint in _CHECKPOINT_HINTS):
            return True
    return False


@register_rule
class RawCheckpointIO(Rule):
    """E405: checkpoint npz files go through core/checkpoint.py only."""

    id = "E405"
    name = "raw-checkpoint-io"
    summary = ("np.load / np.savez* on checkpoint or registry paths outside "
               "repro.core.checkpoint bypasses the schema version, the "
               "SHA-256 integrity manifest, and the typed IntegrityError "
               "mapping — use CheckpointStore / load_checkpoint")
    exempt = ("checkpoint",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee not in _NPZ_IO_CALLS:
                continue
            operands: List[ast.AST] = list(node.args)
            operands.extend(kw.value for kw in node.keywords
                            if kw.arg in (None, "file"))
            if any(_mentions_checkpoint(arg) for arg in operands):
                yield ctx.finding(
                    self, node,
                    f"raw {callee}() on a checkpoint/registry path; durable "
                    f"snapshots must round-trip through "
                    f"repro.core.checkpoint (CheckpointStore._persist / "
                    f"load_checkpoint) so the schema version and SHA-256 "
                    f"manifest are written and verified")
