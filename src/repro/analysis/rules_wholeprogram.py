"""W-series rules: whole-program (interprocedural) invariants.

Every per-file flagship rule has a function-boundary hole: D106 loses an
``engine.map`` result the moment it passes through a helper, L201 cannot
see a ledger charge two calls deep inside a task body, E401 misses
``from os import environ`` aliases and accessor-returned mappings, E404
misses a lambda that arrives through a factory or a parameter, and D103
flags iteration *sites* rather than where the unordered value actually
lands.  The W rules upgrade each of them to whole-program analyses on
top of :mod:`repro.analysis.project` (module/call graph) and
:mod:`repro.analysis.dataflow` (forward taint):

* ``W601`` — ``engine.map`` partials reaching a manual accumulation in
  *any* function (D106, interprocedural),
* ``W602`` — a ledger charge *reachable along call edges* from a task
  callable handed to ``engine.map``/``map_reduce`` (L201),
* ``W603`` — ``os.environ``/``os.getenv`` reads outside ``envvars.py``
  through aliases or wrapper-returned mappings (E401/E402),
* ``W604`` — unpicklable callables flowing into the engine seam through
  variables, partials, factories, or wrapper parameters (E404),
* ``W605`` — dict/set iteration order flowing into committed centroid or
  ledger state (D103, flow-sensitive).

The project (and its call graph) is built **once per invocation** by the
runner; each rule runs one taint fixpoint over it, memoised on the
project so ``--rules`` subsets pay only for what they use.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from .dataflow import TaintEngine, TaintSpec
from .project import CallRec, FuncSummary, Op, Project, Value
from .reprolint import Finding, ProjectRule, register_rule

#: Methods that mutate the modelled ledger (mirrors rules_ledger).
_CHARGE_METHODS = frozenset({"charge", "charge_parallel",
                             "charge_stream_phases"})

#: ``sum``-style reductions D106/W601 ban over raw partials.
_SUM_CALLS = frozenset({"sum", "np.sum", "numpy.sum"})

#: Environment objects whose escape W603 tracks.
_ENV_SEEDS = frozenset({"os.environ", "os.getenv"})

#: Mapping methods that read the environment when the receiver is tainted.
_ENV_READ_METHODS = frozenset({"get", "setdefault", "pop", "items",
                               "keys", "values"})


def _engine_for(project: Project, name: str,
                spec: TaintSpec) -> TaintEngine:
    """One taint fixpoint per (project, rule), memoised on the project."""
    cached = project.analysis_cache.get(name)
    if isinstance(cached, TaintEngine):
        return cached
    engine = TaintEngine(project, spec)
    engine.run()
    project.analysis_cache[name] = engine
    return engine


def _finding(rule: ProjectRule, path: str, line: int, col: int,
             message: str) -> Finding:
    return Finding(rule=rule.id, path=path, line=line, col=col + 1,
                   message=message)


# ---------------------------------------------------------------------------
# W601 — engine.map partials reaching manual accumulation anywhere
# ---------------------------------------------------------------------------

def _seed_engine_map(project: Project, func: FuncSummary,
                     call: CallRec) -> bool:
    return call.attr == "map" \
        and project.is_engine_receiver(func, call.receiver)


@register_rule
class InterproceduralPartialAccumulation(ProjectRule):
    """W601: D106 across function boundaries."""

    id = "W601"
    name = "interprocedural-partial-accumulation"
    summary = ("engine.map partials must reduce through map_reduce / "
               "runtime/reduce.py even when they travel through helper "
               "functions, returns, or carrier attributes; a hand-rolled "
               "accumulation anywhere downstream re-opens the serial-merge "
               "bottleneck (interprocedural D106)")
    scopes = ("core", "runtime")
    exempt = ("reduce", "engine")

    def check_project(self, project: Project) -> Iterator[Finding]:
        engine = _engine_for(project, self.id, TaintSpec(
            name=self.id, seed_call=_seed_engine_map))
        for summary in project.files.values():
            if not self.scope_ok(summary.parts):
                continue
            for func in summary.functions:
                seen: Set[Tuple[int, int]] = set()
                for op in func.ops:
                    if op.kind == "assign" and op.accum \
                            and engine.value_tainted(func, op.value) \
                            and (op.line, op.col) not in seen:
                        seen.add((op.line, op.col))
                        yield _finding(
                            self, summary.path, op.line, op.col,
                            "manual accumulation over engine.map partials "
                            "that crossed a function boundary; merge them "
                            "with engine.map_reduce(fn, items, "
                            "topology=...) so the reduction topology owns "
                            "the merge order")
                for call in func.calls:
                    if call.callee in _SUM_CALLS and call.args \
                            and engine.value_tainted(func, call.args[0]) \
                            and (call.line, call.col) not in seen:
                        seen.add((call.line, call.col))
                        yield _finding(
                            self, summary.path, call.line, call.col,
                            "sum(...) over engine.map partials that "
                            "crossed a function boundary bypasses the "
                            "reduction seam; merge them with "
                            "engine.map_reduce")


# ---------------------------------------------------------------------------
# W602 — ledger charges reachable from engine task bodies
# ---------------------------------------------------------------------------

@register_rule
class ReachableChargeInTask(ProjectRule):
    """W602: L201 to any call depth."""

    id = "W602"
    name = "reachable-charge-in-engine-task"
    summary = ("no ledger charge may be *reachable along call edges* from "
               "a task or combine callable handed to engine.map / "
               "map_reduce / reduce_partials — host retries would re-apply "
               "it in pool order no matter how many helpers deep it hides "
               "(interprocedural L201)")
    scopes = ("core", "runtime")

    def _roots(self, project: Project) -> List[Tuple[str, str, str]]:
        """(task qualname, site path, site pos) for every seam call site."""
        roots: List[Tuple[str, str, str]] = []
        for site in project.graph.engine_sites:
            caller = project.functions.get(site.caller)
            if caller is None:
                continue
            candidates: List[Value] = []
            if site.method in ("map", "map_reduce") and site.call.args:
                candidates.append(site.call.args[0])
            combine_slot = {"map_reduce": 2, "reduce_partials": 1}
            slot = combine_slot.get(site.method)
            if slot is not None and len(site.call.args) > slot:
                candidates.append(site.call.args[slot])
            for name, value in site.call.kwargs:
                if name == "combine":
                    candidates.append(value)
            for value in candidates:
                for qual in project.resolve_callable_value(caller, value):
                    roots.append((qual, site.path, f"{site.line}"))
        return roots

    def check_project(self, project: Project) -> Iterator[Finding]:
        seen: Set[Tuple[str, int, int]] = set()
        for root, site_path, site_line in self._roots(project):
            for reached in sorted(project.graph.reachable_from([root])):
                func = project.functions.get(reached)
                if func is None:
                    continue
            # findings reported at the charge, in the charge's file
                summary = project.files.get(func.path)
                if summary is None or not self.scope_ok(summary.parts):
                    continue
                for call in func.calls:
                    if call.attr not in _CHARGE_METHODS:
                        continue
                    key = (func.path, call.line, call.col)
                    if key in seen:
                        continue
                    seen.add(key)
                    hop = "" if reached == root else \
                        f" (reached from task `{_short(root)}` through " \
                        f"the call graph)"
                    yield _finding(
                        self, func.path, call.line, call.col,
                        f"`.{call.attr}(...)` is reachable from engine "
                        f"task `{_short(root)}` submitted at "
                        f"{site_path}:{site_line}{hop}; host retries "
                        f"would re-charge it and pool threads would "
                        f"charge out of order — charging stays in the "
                        f"serial loop over the returned partials")


def _short(qualname: str) -> str:
    return qualname.split(":", 1)[-1]


# ---------------------------------------------------------------------------
# W603 — environment reads escaping envvars.py through wrappers/aliases
# ---------------------------------------------------------------------------

def _seed_env_ref(project: Project, func: FuncSummary, ref: str) -> bool:
    return ref in _ENV_SEEDS


def _textually_visible_to_e401(path: str) -> bool:
    """E401 already flags dotted names ending in os.environ / os.getenv."""
    return path in ("os.environ", "os.getenv") \
        or path.endswith(".os.environ") or path.endswith(".os.getenv") \
        or path.endswith("os.environ") or path.endswith("os.getenv")


@register_rule
class LaunderedEnvironRead(ProjectRule):
    """W603: E401 through aliases and wrapper-returned mappings."""

    id = "W603"
    name = "laundered-environ-read"
    summary = ("environment reads outside repro.analysis.envvars through "
               "`from os import environ` aliases, rebound getters, or "
               "accessor-returned mappings are still raw reads; knobs go "
               "through the typed read_str/read_int/read_float accessors "
               "(interprocedural E401/E402)")
    scopes = ("repro",)
    exempt = ("envvars",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        engine = _engine_for(project, self.id, TaintSpec(
            name=self.id, seed_ref=_seed_env_ref,
            constructors_transparent=False))
        for summary in project.files.values():
            if not self.scope_ok(summary.parts):
                continue
            for func in summary.functions:
                yield from self._check_function(engine, summary.path, func)

    def _check_function(self, engine: TaintEngine, path: str,
                        func: FuncSummary) -> Iterator[Finding]:
        seen: Set[Tuple[int, int]] = set()

        def flag(line: int, col: int, what: str) -> Iterator[Finding]:
            if (line, col) not in seen:
                seen.add((line, col))
                yield _finding(
                    self, path, line, col,
                    f"{what} reads the environment through a laundered "
                    f"os.environ/os.getenv reference; read knobs through "
                    f"repro.analysis.envvars (read_str/read_int/"
                    f"read_float) so empty-as-unset semantics and the "
                    f"registry hold")

        for op in func.ops:
            if op.kind == "subscript" and op.targets:
                base = op.targets[0]
                if not _textually_visible_to_e401(base) \
                        and engine.ref_tainted(func, base):
                    yield from flag(op.line, op.col, f"`{base}[...]`")
        for call in func.calls:
            if _textually_visible_to_e401(call.callee):
                continue
            if call.receiver and call.attr in _ENV_READ_METHODS \
                    and engine.ref_tainted(func, call.receiver):
                yield from flag(call.line, call.col,
                                f"`{call.callee}(...)`")
            elif call.callee and "." not in call.callee \
                    and engine.ref_tainted(func, call.callee):
                yield from flag(call.line, call.col,
                                f"`{call.callee}(...)`")


# ---------------------------------------------------------------------------
# W604 — unpicklable callables flowing into the engine seam
# ---------------------------------------------------------------------------

def _seed_unpicklable_value(project: Project, func: FuncSummary,
                            value: Value) -> bool:
    if value.lambdas:
        return True
    return any("." not in ref and ref in func.nested_defs
               for ref in value.refs)


@register_rule
class FlowingUnpicklableCallable(ProjectRule):
    """W604: E404 through variables, factories, and parameters."""

    id = "W604"
    name = "flowing-unpicklable-callable"
    summary = ("lambdas and nested defs must not reach engine.map / "
               "map_reduce / reduce_partials through variables, "
               "functools.partial chains, factory returns, or wrapper-"
               "function parameters; they cannot pickle to process-engine "
               "workers (interprocedural E404)")
    scopes = ("core", "runtime")

    def check_project(self, project: Project) -> Iterator[Finding]:
        engine = _engine_for(project, self.id, TaintSpec(
            name=self.id, seed_value=_seed_unpicklable_value,
            transparent=frozenset(),
            transparent_methods=frozenset(),
            constructors_transparent=False))
        seen: Set[Tuple[str, int, int]] = set()
        for site in project.graph.engine_sites:
            summary = project.files.get(site.path)
            caller = project.functions.get(site.caller)
            if summary is None or caller is None \
                    or not self.scope_ok(summary.parts):
                continue
            values: List[Tuple[Value, str]] = []
            if site.method in ("map", "map_reduce") and site.call.args:
                values.append((site.call.args[0], "task"))
            combine_slot = {"map_reduce": 2, "reduce_partials": 1}
            slot = combine_slot.get(site.method)
            if slot is not None and len(site.call.args) > slot:
                values.append((site.call.args[slot], "combine"))
            for name, value in site.call.kwargs:
                if name == "combine":
                    values.append((value, "combine"))
            for value, role in values:
                key = (site.path, site.call.line, site.call.col)
                if key in seen:
                    continue
                if engine.value_tainted(caller, value):
                    seen.add(key)
                    yield _finding(
                        self, site.path, site.call.line, site.call.col,
                        f"the {role} callable handed to "
                        f"engine.{site.method} carries a lambda or nested "
                        f"def (possibly created in another function); it "
                        f"cannot pickle to process-engine workers — hoist "
                        f"it to module level and bind state via "
                        f"functools.partial")


# ---------------------------------------------------------------------------
# W605 — dict/set iteration order flowing into committed state
# ---------------------------------------------------------------------------

def _seed_ordered_call(project: Project, func: FuncSummary,
                       call: CallRec) -> bool:
    if call.attr in ("items", "values", "keys") and not call.args \
            and call.receiver:
        return True
    return call.callee in ("set", "frozenset")


def _seed_ordered_value(project: Project, func: FuncSummary,
                        value: Value) -> bool:
    return value.ordered


def _seed_ordered_loop(project: Project, func: FuncSummary,
                       op: Op) -> bool:
    return op.ordered_kind is not None


_STATE_NAMES = ("centroid", "inertia")


def _commits_state(path: str) -> bool:
    low = path.lower()
    return any(needle in low for needle in _STATE_NAMES)


@register_rule
class OrderedIterationIntoState(ProjectRule):
    """W605: D103 made flow-sensitive."""

    id = "W605"
    name = "ordered-iteration-into-state"
    summary = ("values carrying dict-view or set iteration order must not "
               "flow — directly or through helpers — into committed "
               "centroid/inertia state or modelled ledger charges; "
               "sort the iteration (or a fixed key list) at the source "
               "(flow-sensitive D103)")
    scopes = ("repro",)
    exempt = ("reduce",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        engine = _engine_for(project, self.id, TaintSpec(
            name=self.id,
            seed_call=_seed_ordered_call,
            seed_value=_seed_ordered_value,
            seed_loop=_seed_ordered_loop,
            # sorted() is deliberately absent: it cancels order-taint.
            transparent=frozenset({"list", "tuple", "enumerate", "zip",
                                   "reversed", "iter", "next", "dict",
                                   "sum", "array", "asarray", "stack",
                                   "concatenate"}),
        ))
        for summary in project.files.values():
            if not self.scope_ok(summary.parts):
                continue
            for func in summary.functions:
                seen: Set[Tuple[int, int]] = set()
                for op in func.ops:
                    if op.kind != "assign":
                        continue
                    committed = [t for t in op.targets if _commits_state(t)]
                    if committed and engine.value_tainted(func, op.value) \
                            and (op.line, op.col) not in seen:
                        seen.add((op.line, op.col))
                        yield _finding(
                            self, summary.path, op.line, op.col,
                            f"`{committed[0]}` is committed from a value "
                            f"that consumed dict/set iteration order "
                            f"(possibly through helper calls); the bits "
                            f"then depend on insertion/hash order — sort "
                            f"at the iteration site")
                for call in func.calls:
                    if call.attr in _CHARGE_METHODS \
                            and (call.line, call.col) not in seen \
                            and (any(engine.value_tainted(func, a)
                                     for a in call.args)
                                 or any(engine.value_tainted(func, v)
                                        for _, v in call.kwargs)):
                        seen.add((call.line, call.col))
                        yield _finding(
                            self, summary.path, call.line, call.col,
                            f"`.{call.attr}(...)` charges the modelled "
                            f"ledger with a value that consumed dict/set "
                            f"iteration order (possibly through helper "
                            f"calls); modelled seconds would depend on "
                            f"insertion/hash order — sort at the "
                            f"iteration site")
