"""Model-selection and robustness analysis on top of the public API."""

from .elbow import SweepResult, inertia_sweep, knee_point, silhouette_sweep
from .stability import StabilityReport, bootstrap_stability

__all__ = [
    "StabilityReport",
    "SweepResult",
    "bootstrap_stability",
    "inertia_sweep",
    "knee_point",
    "silhouette_sweep",
]
