"""Analysis tools: model selection, stability, and static analysis.

Two families live here:

* **Model-selection and robustness analysis** on top of the public API —
  :mod:`repro.analysis.elbow` and :mod:`repro.analysis.stability`.
* **Static analysis of the repo itself** — :mod:`repro.analysis.reprolint`,
  an AST rule framework enforcing the determinism / ledger / LDM
  invariants (run it as ``python -m repro.analysis``), and
  :mod:`repro.analysis.envvars`, the central registry of every ``REPRO_*``
  environment knob.

The numeric helpers import :mod:`repro.core`, while low-level runtime
modules import :mod:`repro.analysis.envvars`; to keep that from becoming an
import cycle this ``__init__`` loads the heavy submodules lazily via module
``__getattr__`` instead of eagerly re-exporting them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .elbow import (  # noqa: F401
        SweepResult,
        inertia_sweep,
        knee_point,
        silhouette_sweep,
    )
    from .stability import StabilityReport, bootstrap_stability  # noqa: F401

__all__ = [
    "StabilityReport",
    "SweepResult",
    "bootstrap_stability",
    "inertia_sweep",
    "knee_point",
    "silhouette_sweep",
]

_ELBOW = ("SweepResult", "inertia_sweep", "knee_point", "silhouette_sweep")
_STABILITY = ("StabilityReport", "bootstrap_stability")


def __getattr__(name: str) -> Any:
    if name in _ELBOW:
        from . import elbow

        return getattr(elbow, name)
    if name in _STABILITY:
        from . import stability

        return getattr(stability, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(__all__))
