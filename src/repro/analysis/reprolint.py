"""reprolint — AST static analysis enforcing the repo's invariants.

The package's load-bearing property is that runs are **bit-identical**
across engines, fault replays, and checkpoint resumes.  That property is a
set of coding disciplines (fixed-order merges, seeded RNGs, charging in the
serial loop, registered env knobs, LDM-feasible configs), and disciplines
erode unless something mechanical holds them.  reprolint is that mechanism:
a small rule framework over :mod:`ast` with

* a registry of :class:`Rule` subclasses, each owning one invariant and one
  stable id (``D101``, ``L201``, ...; see ``docs/invariants.md``),
* per-line and per-file suppression comments that *require a reason*::

      thing = risky()  # reprolint: disable=D103 -- insertion order is sorted here

      # reprolint: disable-file=E401 -- this module IS the env accessor

* human and JSON output plus a CLI (``python -m repro.analysis``); the CI
  lint job fails on any unsuppressed finding.

Rules are scoped by path component (a rule about engine partials applies to
``core/`` and ``runtime/``, not to ``reporting/``), and every rule ships a
positive and a negative fixture in ``tests/analysis/``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "all_rules",
    "dotted_name",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_human",
    "render_json",
]

#: ``# reprolint: disable=D101,D102 -- reason`` (trailing or whole-line) /
#: ``# reprolint: disable-file=E401 -- reason``.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Z][0-9]{3}(?:\s*,\s*[A-Z][0-9]{3})*)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation (or meta-finding) at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    reason: Optional[str] = None

    def format(self) -> str:
        mark = "  [suppressed: " + (self.reason or "") + "]" \
            if self.suppressed else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}{mark}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


@dataclass
class _Suppression:
    """One parsed suppression comment."""

    line: int
    kind: str                 # "disable" | "disable-file"
    rules: Tuple[str, ...]
    reason: Optional[str]
    own_line: bool            # comment stands alone on its line
    used: bool = False


@dataclass
class LintContext:
    """Everything a rule may inspect about one file."""

    path: str                     # display path (as given to the runner)
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    parts: Tuple[str, ...] = ()   # posix path components, file stem last

    @classmethod
    def from_source(cls, source: str, path: str) -> "LintContext":
        tree = ast.parse(source, filename=path)
        posix = PurePosixPath(str(path).replace("\\", "/"))
        parts = tuple(posix.parts[:-1]) + (posix.stem,)
        return cls(path=path, source=source, tree=tree,
                   lines=source.splitlines(), parts=parts)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(rule=rule.id, path=self.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


class Rule:
    """One enforced invariant.

    Subclasses set the class attributes and implement :meth:`check`;
    registration is explicit via :func:`register_rule` so the rule set is
    importable (and testable) piecemeal.
    """

    #: Stable identifier, e.g. ``"D101"`` (letter = series, see docs).
    id: str = ""
    #: Short kebab-ish name shown by ``--list-rules``.
    name: str = ""
    #: One-line statement of the invariant.
    summary: str = ""
    #: Path components the rule applies to (empty = every file).  A file
    #: matches when any scope appears among its path components (the module
    #: stem counts as a component, so ``"errors"`` scopes a single module).
    scopes: Tuple[str, ...] = ()
    #: Path components the rule never applies to, checked before scopes.
    exempt: Tuple[str, ...] = ()

    def applies(self, ctx: LintContext) -> bool:
        if any(part in self.exempt for part in ctx.parts):
            return False
        if not self.scopes:
            return True
        return any(scope in ctx.parts for scope in self.scopes)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one rule instance to the global registry."""
    rule = cls()
    if not rule.id or not rule.summary:
        raise ValueError(f"rule {cls.__name__} needs an id and a summary")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in id order (imports the rule modules)."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def _load_builtin_rules() -> None:
    # Import for the registration side effect; late so that the framework
    # itself stays importable from the rule modules.
    from . import (  # noqa: F401
        rules_config,
        rules_determinism,
        rules_env,
        rules_ledger,
        rules_typing,
    )


# -- AST helpers shared by the rule modules ---------------------------------

def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, else '' (calls are opaque)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# -- suppression handling ----------------------------------------------------

def _parse_suppressions(lines: Sequence[str]) -> List[_Suppression]:
    found: List[_Suppression] = []
    for i, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = tuple(r.strip() for r in match.group("rules").split(","))
        found.append(_Suppression(
            line=i,
            kind=match.group("kind"),
            rules=rules,
            reason=match.group("reason"),
            own_line=line.strip().startswith("#"),
        ))
    return found


def _apply_suppressions(findings: List[Finding],
                        suppressions: List[_Suppression],
                        ctx: LintContext,
                        known_ids: Iterable[str]) -> List[Finding]:
    """Mark findings suppressed and emit the R-series meta-findings.

    * ``R001`` — a suppression without a ``-- reason`` string,
    * ``R002`` — a suppression naming an unknown rule id.

    A ``disable`` comment covers its own line, and — when it stands alone —
    the next line (so long statements can carry the comment above them).
    A ``disable-file`` comment covers the whole file for its rules.
    """
    known = set(known_ids)
    meta: List[Finding] = []
    file_wide: Dict[str, _Suppression] = {}
    by_line: Dict[int, List[_Suppression]] = {}
    for sup in suppressions:
        if sup.reason is None:
            meta.append(Finding(
                rule="R001", path=ctx.path, line=sup.line, col=1,
                message="suppression needs a reason: "
                        "`# reprolint: disable=ID -- why`",
            ))
        for rule_id in sup.rules:
            if rule_id not in known:
                meta.append(Finding(
                    rule="R002", path=ctx.path, line=sup.line, col=1,
                    message=f"suppression names unknown rule {rule_id!r}",
                ))
        if sup.kind == "disable-file":
            for rule_id in sup.rules:
                file_wide.setdefault(rule_id, sup)
        else:
            by_line.setdefault(sup.line, []).append(sup)
            if sup.own_line:
                by_line.setdefault(sup.line + 1, []).append(sup)

    out: List[Finding] = []
    for finding in findings:
        covering: Optional[_Suppression] = None
        for sup in by_line.get(finding.line, ()):
            if finding.rule in sup.rules:
                covering = sup
                break
        if covering is None:
            covering = file_wide.get(finding.rule)
        if covering is not None and covering.reason is not None:
            covering.used = True
            out.append(Finding(
                rule=finding.rule, path=finding.path, line=finding.line,
                col=finding.col, message=finding.message,
                suppressed=True, reason=covering.reason,
            ))
        else:
            out.append(finding)
    return out + meta


# -- runners -----------------------------------------------------------------

def lint_source(source: str, path: str,
                rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one source string presented as ``path`` (fixtures use this)."""
    if rules is None:
        rules = all_rules()
    try:
        ctx = LintContext.from_source(source, path)
    except SyntaxError as exc:
        return [Finding(rule="R003", path=path, line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        message=f"file does not parse: {exc.msg}")]
    findings: List[Finding] = []
    for rule in rules:
        if rule.applies(ctx):
            findings.extend(rule.check(ctx))
    suppressions = _parse_suppressions(ctx.lines)
    findings = _apply_suppressions(findings, suppressions, ctx,
                                   [r.id for r in rules])
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: "str | Path",
              rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, str(path), rules=rules)


def iter_python_files(paths: Iterable["str | Path"]) -> Iterator[Path]:
    """Expand files/directories to ``.py`` files, in sorted order.

    Cache and fixture directories are skipped: fixture snippets violate
    rules on purpose.
    """
    skip_dirs = {"__pycache__", ".git", "fixtures", "build", "dist"}
    for entry in paths:
        root = Path(entry)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for candidate in sorted(root.rglob("*.py")):
            if not skip_dirs.intersection(candidate.parts):
                yield candidate


def lint_paths(paths: Iterable["str | Path"],
               rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint every python file under ``paths``."""
    if rules is None:
        rules = all_rules()
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules))
    return findings


# -- output ------------------------------------------------------------------

def render_human(findings: Sequence[Finding],
                 show_suppressed: bool = False) -> str:
    shown = [f for f in findings if show_suppressed or not f.suppressed]
    lines = [f.format() for f in shown]
    active = sum(1 for f in findings if not f.suppressed)
    muted = len(findings) - active
    lines.append(
        f"reprolint: {active} finding{'s' if active != 1 else ''}"
        + (f" ({muted} suppressed)" if muted else "")
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps({
        "findings": [f.to_dict() for f in findings],
        "counts": {
            "active": sum(1 for f in findings if not f.suppressed),
            "suppressed": sum(1 for f in findings if f.suppressed),
        },
    }, indent=2)
