"""reprolint — AST static analysis enforcing the repo's invariants.

The package's load-bearing property is that runs are **bit-identical**
across engines, fault replays, and checkpoint resumes.  That property is a
set of coding disciplines (fixed-order merges, seeded RNGs, charging in the
serial loop, registered env knobs, LDM-feasible configs), and disciplines
erode unless something mechanical holds them.  reprolint is that mechanism:
a small rule framework over :mod:`ast` with

* a registry of :class:`Rule` subclasses, each owning one invariant and one
  stable id (``D101``, ``L201``, ...; see ``docs/invariants.md``),
* per-line and per-file suppression comments that *require a reason*::

      thing = risky()  # reprolint: disable=D103 -- insertion order is sorted here

      # reprolint: disable-file=E401 -- this module IS the env accessor

* human and JSON output plus a CLI (``python -m repro.analysis``); the CI
  lint job fails on any unsuppressed finding.

Rules are scoped by path component (a rule about engine partials applies to
``core/`` and ``runtime/``, not to ``reporting/``), and every rule ships a
positive and a negative fixture in ``tests/analysis/``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .cache import LintCache
    from .project import FileSummary, Project

__all__ = [
    "Finding",
    "LintContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "baseline_key",
    "dotted_name",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_rule",
    "render_github",
    "render_human",
    "render_json",
    "write_baseline",
]

#: ``# reprolint: disable=D101,D102 -- reason`` (trailing or whole-line) /
#: ``# reprolint: disable-file=E401 -- reason``.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Z][0-9]{3}(?:\s*,\s*[A-Z][0-9]{3})*)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation (or meta-finding) at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    reason: Optional[str] = None

    def format(self) -> str:
        mark = "  [suppressed: " + (self.reason or "") + "]" \
            if self.suppressed else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}{mark}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


@dataclass
class _Suppression:
    """One parsed suppression comment."""

    line: int
    kind: str                 # "disable" | "disable-file"
    rules: Tuple[str, ...]
    reason: Optional[str]
    own_line: bool            # comment stands alone on its line
    used: bool = False


@dataclass
class LintContext:
    """Everything a rule may inspect about one file."""

    path: str                     # display path (as given to the runner)
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    parts: Tuple[str, ...] = ()   # posix path components, file stem last

    @classmethod
    def from_source(cls, source: str, path: str) -> "LintContext":
        tree = ast.parse(source, filename=path)
        posix = PurePosixPath(str(path).replace("\\", "/"))
        parts = tuple(posix.parts[:-1]) + (posix.stem,)
        return cls(path=path, source=source, tree=tree,
                   lines=source.splitlines(), parts=parts)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(rule=rule.id, path=self.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


class Rule:
    """One enforced invariant.

    Subclasses set the class attributes and implement :meth:`check`;
    registration is explicit via :func:`register_rule` so the rule set is
    importable (and testable) piecemeal.
    """

    #: Stable identifier, e.g. ``"D101"`` (letter = series, see docs).
    id: str = ""
    #: Short kebab-ish name shown by ``--list-rules``.
    name: str = ""
    #: One-line statement of the invariant.
    summary: str = ""
    #: Path components the rule applies to (empty = every file).  A file
    #: matches when any scope appears among its path components (the module
    #: stem counts as a component, so ``"errors"`` scopes a single module).
    scopes: Tuple[str, ...] = ()
    #: Path components the rule never applies to, checked before scopes.
    exempt: Tuple[str, ...] = ()

    def applies(self, ctx: LintContext) -> bool:
        if any(part in self.exempt for part in ctx.parts):
            return False
        if not self.scopes:
            return True
        return any(scope in ctx.parts for scope in self.scopes)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A whole-program rule: sees the project, not one file.

    The runner builds one :class:`~repro.analysis.project.Project` (module
    table + call graph) per invocation and hands it to every registered
    ``ProjectRule`` via :meth:`check_project`.  Findings land in whatever
    file the sink lives in; per-file ``scopes``/``exempt`` filtering is the
    rule's job (use :meth:`scope_ok` on the sink file's path parts), and
    the runner applies that file's suppression comments afterwards, so
    ``# reprolint: disable=W601 -- reason`` works exactly like the
    per-file series.
    """

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        return iter(())

    def scope_ok(self, parts: Tuple[str, ...]) -> bool:
        """Does a file with these path parts fall under this rule?"""
        if any(part in self.exempt for part in parts):
            return False
        if not self.scopes:
            return True
        return any(scope in parts for scope in self.scopes)

    def check_project(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one rule instance to the global registry."""
    rule = cls()
    if not rule.id or not rule.summary:
        raise ValueError(f"rule {cls.__name__} needs an id and a summary")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in id order (imports the rule modules)."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def _load_builtin_rules() -> None:
    # Import for the registration side effect; late so that the framework
    # itself stays importable from the rule modules.
    from . import (  # noqa: F401
        rules_config,
        rules_determinism,
        rules_env,
        rules_ledger,
        rules_typing,
        rules_wholeprogram,
    )


# -- AST helpers shared by the rule modules ---------------------------------

def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, else '' (calls are opaque)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# -- suppression handling ----------------------------------------------------

def _parse_suppressions(lines: Sequence[str]) -> List[_Suppression]:
    found: List[_Suppression] = []
    for i, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = tuple(r.strip() for r in match.group("rules").split(","))
        found.append(_Suppression(
            line=i,
            kind=match.group("kind"),
            rules=rules,
            reason=match.group("reason"),
            own_line=line.strip().startswith("#"),
        ))
    return found


def _suppression_meta(suppressions: Sequence[_Suppression], path: str,
                      known_ids: Iterable[str]) -> List[Finding]:
    """R-series meta-findings for one file's suppression comments.

    * ``R001`` — a suppression without a ``-- reason`` string,
    * ``R002`` — a suppression naming an unknown rule id.
    """
    known = set(known_ids)
    meta: List[Finding] = []
    for sup in suppressions:
        if sup.reason is None:
            meta.append(Finding(
                rule="R001", path=path, line=sup.line, col=1,
                message="suppression needs a reason: "
                        "`# reprolint: disable=ID -- why`",
            ))
        for rule_id in sup.rules:
            if rule_id not in known:
                meta.append(Finding(
                    rule="R002", path=path, line=sup.line, col=1,
                    message=f"suppression names unknown rule {rule_id!r}",
                ))
    return meta


def _mark_suppressed(findings: Sequence[Finding],
                     suppressions: Sequence[_Suppression]) -> List[Finding]:
    """Mark findings covered by suppression comments.

    A ``disable`` comment covers its own line, and — when it stands alone —
    the next line (so long statements can carry the comment above them).
    A ``disable-file`` comment covers the whole file for its rules.
    """
    file_wide: Dict[str, _Suppression] = {}
    by_line: Dict[int, List[_Suppression]] = {}
    for sup in suppressions:
        if sup.kind == "disable-file":
            for rule_id in sup.rules:
                file_wide.setdefault(rule_id, sup)
        else:
            by_line.setdefault(sup.line, []).append(sup)
            if sup.own_line:
                by_line.setdefault(sup.line + 1, []).append(sup)

    out: List[Finding] = []
    for finding in findings:
        covering: Optional[_Suppression] = None
        for sup in by_line.get(finding.line, ()):
            if finding.rule in sup.rules:
                covering = sup
                break
        if covering is None:
            covering = file_wide.get(finding.rule)
        if covering is not None and covering.reason is not None:
            covering.used = True
            out.append(Finding(
                rule=finding.rule, path=finding.path, line=finding.line,
                col=finding.col, message=finding.message,
                suppressed=True, reason=covering.reason,
            ))
        else:
            out.append(finding)
    return out


def _apply_suppressions(findings: List[Finding],
                        suppressions: List[_Suppression],
                        ctx: LintContext,
                        known_ids: Iterable[str]) -> List[Finding]:
    return (_mark_suppressed(findings, suppressions)
            + _suppression_meta(suppressions, ctx.path, known_ids))


# -- runners -----------------------------------------------------------------

def _split_rules(
        rules: Sequence[Rule]) -> Tuple[List[Rule], List["ProjectRule"]]:
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    return file_rules, project_rules


def _check_file(ctx: LintContext, file_rules: Sequence[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in file_rules:
        if rule.applies(ctx):
            findings.extend(rule.check(ctx))
    return findings


def _project_findings(
        summaries: Sequence["FileSummary"],
        project_rules: Sequence["ProjectRule"],
) -> Dict[str, List[Finding]]:
    """Run every whole-program rule over ONE shared project, per path."""
    by_path: Dict[str, List[Finding]] = {}
    if not project_rules or not summaries:
        return by_path
    from .project import Project
    project = Project(summaries)
    for rule in project_rules:
        for finding in rule.check_project(project):
            by_path.setdefault(finding.path, []).append(finding)
    return by_path


def lint_source(source: str, path: str,
                rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one source string presented as ``path`` (fixtures use this).

    Whole-program rules see a single-file project, so interprocedural
    fixtures work as long as the flow stays within the snippet.
    """
    if rules is None:
        rules = all_rules()
    file_rules, project_rules = _split_rules(rules)
    try:
        ctx = LintContext.from_source(source, path)
    except SyntaxError as exc:
        return [Finding(rule="R003", path=path, line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        message=f"file does not parse: {exc.msg}")]
    findings = _check_file(ctx, file_rules)
    if project_rules:
        from .project import extract_summary
        summary = extract_summary(ctx.tree, ctx.path, ctx.parts)
        for per_path in _project_findings([summary], project_rules).values():
            findings.extend(per_path)
    suppressions = _parse_suppressions(ctx.lines)
    findings = _apply_suppressions(findings, suppressions, ctx,
                                   [r.id for r in rules])
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: "str | Path",
              rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, str(path), rules=rules)


def iter_python_files(paths: Iterable["str | Path"]) -> Iterator[Path]:
    """Expand files/directories to ``.py`` files, in sorted order.

    Cache and fixture directories are skipped: fixture snippets violate
    rules on purpose.
    """
    skip_dirs = {"__pycache__", ".git", "fixtures", "build", "dist"}
    for entry in paths:
        root = Path(entry)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for candidate in sorted(root.rglob("*.py")):
            if not skip_dirs.intersection(candidate.parts):
                yield candidate


def lint_paths(paths: Iterable["str | Path"],
               rules: Optional[Sequence[Rule]] = None,
               cache: Optional["LintCache"] = None) -> List[Finding]:
    """Lint every python file under ``paths``.

    The project (module table + call graph) is built **once** for the
    whole invocation and shared by every whole-program rule.  With a
    ``cache``, unchanged files reuse their stored per-file findings,
    suppressions, and project summary (keyed by content hash), and an
    unchanged *tree* reuses the stored whole-program findings outright.
    """
    if rules is None:
        rules = all_rules()
    file_rules, project_rules = _split_rules(rules)
    known_ids = [r.id for r in rules]
    rules_sig = ",".join(sorted(known_ids))

    per_file: Dict[str, List[Finding]] = {}
    suppressions_by_path: Dict[str, List[_Suppression]] = {}
    summaries: List["FileSummary"] = []
    file_hashes: List[Tuple[str, str]] = []

    for file_path in iter_python_files(paths):
        path = str(file_path)
        source = file_path.read_text(encoding="utf-8")
        if cache is not None:
            digest = cache.content_hash(source, rules_sig)
            file_hashes.append((path, digest))
            entry = cache.get_file(path, digest)
            if entry is not None:
                per_file[path] = list(entry.findings)
                suppressions_by_path[path] = list(entry.suppressions)
                if entry.summary is not None:
                    summaries.append(entry.summary)
                continue
        try:
            ctx = LintContext.from_source(source, path)
        except SyntaxError as exc:
            findings = [Finding(rule="R003", path=path,
                                line=exc.lineno or 1,
                                col=(exc.offset or 0) + 1,
                                message=f"file does not parse: {exc.msg}")]
            per_file[path] = findings
            suppressions_by_path[path] = []
            if cache is not None:
                cache.put_file(path, digest, findings, [], None)
            continue
        raw = _check_file(ctx, file_rules)
        suppressions = _parse_suppressions(ctx.lines)
        findings = (_mark_suppressed(raw, suppressions)
                    + _suppression_meta(suppressions, path, known_ids))
        per_file[path] = findings
        suppressions_by_path[path] = suppressions
        summary: Optional["FileSummary"] = None
        if project_rules:
            from .project import extract_summary
            summary = extract_summary(ctx.tree, ctx.path, ctx.parts)
            summaries.append(summary)
        if cache is not None:
            cache.put_file(path, digest, findings, suppressions, summary)

    wp_by_path: Dict[str, List[Finding]] = {}
    if project_rules:
        tree_digest = None
        if cache is not None:
            tree_digest = cache.tree_digest(file_hashes)
            wp_cached = cache.get_project(tree_digest)
            if wp_cached is not None:
                wp_by_path = wp_cached
        if not wp_by_path:
            wp_by_path = _project_findings(summaries, project_rules)
            if cache is not None and tree_digest is not None:
                cache.put_project(tree_digest, wp_by_path)

    for path, wp_findings in wp_by_path.items():
        marked = _mark_suppressed(
            wp_findings, suppressions_by_path.get(path, []))
        per_file.setdefault(path, []).extend(marked)

    findings_all: List[Finding] = []
    for path_findings in per_file.values():
        findings_all.extend(path_findings)
    findings_all.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings_all


# -- output ------------------------------------------------------------------

def render_human(findings: Sequence[Finding],
                 show_suppressed: bool = False) -> str:
    shown = [f for f in findings if show_suppressed or not f.suppressed]
    lines = [f.format() for f in shown]
    active = sum(1 for f in findings if not f.suppressed)
    muted = len(findings) - active
    lines.append(
        f"reprolint: {active} finding{'s' if active != 1 else ''}"
        + (f" ({muted} suppressed)" if muted else "")
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps({
        "findings": [f.to_dict() for f in findings],
        "counts": {
            "active": sum(1 for f in findings if not f.suppressed),
            "suppressed": sum(1 for f in findings if f.suppressed),
        },
    }, indent=2)


def _gh_escape_data(text: str) -> str:
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _gh_escape_prop(text: str) -> str:
    return (_gh_escape_data(text)
            .replace(":", "%3A").replace(",", "%2C"))


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions workflow-command annotations, one per active finding.

    ``::error file=...,line=...,col=...,title=...::message`` lines attach
    to the PR diff in the checks UI; suppressed findings are omitted.  The
    trailing summary line is plain text (ignored by the runner, useful in
    raw logs).
    """
    lines: List[str] = []
    active = 0
    for finding in findings:
        if finding.suppressed:
            continue
        active += 1
        lines.append(
            f"::error file={_gh_escape_prop(finding.path)}"
            f",line={finding.line},col={finding.col}"
            f",title={_gh_escape_prop('reprolint ' + finding.rule)}"
            f"::{_gh_escape_data(finding.message)}"
        )
    lines.append(
        f"reprolint: {active} finding{'s' if active != 1 else ''}")
    return "\n".join(lines)


# -- baselines ----------------------------------------------------------------

def baseline_key(finding: Finding) -> str:
    """Stable identity for grandfathering: rule + path + message.

    Line/column are deliberately excluded so unrelated edits that shift a
    grandfathered finding up or down the file do not break CI.
    """
    return f"{finding.rule}::{finding.path}::{finding.message}"


def load_baseline(path: "str | Path") -> Set[str]:
    """Read a baseline file written by :func:`write_baseline`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = payload.get("entries", [])
    return {str(entry) for entry in entries}


def write_baseline(findings: Sequence[Finding], path: "str | Path") -> None:
    """Persist every active finding's key as the new grandfather set."""
    keys = sorted({baseline_key(f) for f in findings if not f.suppressed})
    payload = {
        "comment": "reprolint grandfathered findings; regenerate with "
                   "`python -m repro.analysis --write-baseline <this file> "
                   "<paths>`",
        "version": 1,
        "entries": keys,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
