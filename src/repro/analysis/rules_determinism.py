"""D-series rules: bit-identical numerics.

The determinism contract (docs/architecture.md "Determinism",
``tests/runtime/test_engine.py``) says centroids, modelled ledger seconds,
and fault replays are bit-identical across engines, worker counts, fault
replays, and checkpoint resumes.  These rules catch the coding patterns
that historically break that contract in parallel k-means codes: hidden
entropy sources, order-sensitive float reductions, and float equality.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from .reprolint import Finding, LintContext, Rule, dotted_name, register_rule

#: Samplers on numpy's *global* stream — unseeded, shared, mutable state.
_GLOBAL_SAMPLERS = frozenset({
    "rand", "randn", "random", "random_sample", "randint", "choice",
    "shuffle", "permutation", "seed", "normal", "uniform", "standard_normal",
})

#: Wall-clock reads that must not feed modelled numerics.
_CLOCK_CALLS = frozenset({
    "time.time", "time.perf_counter", "time.monotonic", "time.process_time",
    "time.time_ns", "time.perf_counter_ns", "time.monotonic_ns",
    "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
})

_NUMERIC_SCOPES: Tuple[str, ...] = ("core", "runtime")


@register_rule
class UnseededRandomness(Rule):
    """D101: no hidden entropy in the numeric packages."""

    id = "D101"
    name = "unseeded-randomness"
    summary = ("numerics must draw from explicitly seeded generators: no "
               "`import random`, no `np.random.default_rng()` without a "
               "seed, no global-stream `np.random.*` samplers")
    scopes = ("core", "runtime", "machine")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield ctx.finding(
                            self, node,
                            "stdlib `random` is process-global state; use "
                            "np.random.default_rng(seed) instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module is not None \
                        and node.module.split(".")[0] == "random":
                    yield ctx.finding(
                        self, node,
                        "stdlib `random` is process-global state; use "
                        "np.random.default_rng(seed) instead")
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name.endswith("random.default_rng") \
                        and not node.args and not node.keywords:
                    yield ctx.finding(
                        self, node,
                        "np.random.default_rng() without a seed is fresh OS "
                        "entropy per call; pass an explicit seed sequence")
                elif name.startswith(("np.random.", "numpy.random.")) \
                        and name.rsplit(".", 1)[-1] in _GLOBAL_SAMPLERS:
                    yield ctx.finding(
                        self, node,
                        f"`{name}` uses numpy's shared global stream; "
                        f"draw from np.random.default_rng(seed)")


@register_rule
class WallClockInNumerics(Rule):
    """D102: `core/` charges modelled seconds, never the host clock."""

    id = "D102"
    name = "wall-clock-in-core"
    summary = ("repro.core must not read the host clock; host timing "
               "belongs to runtime/supervisor.py")
    scopes = ("core",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) \
                    and dotted_name(node.func) in _CLOCK_CALLS:
                yield ctx.finding(
                    self, node,
                    f"`{dotted_name(node.func)}` reads the host wall clock "
                    f"inside core numerics; modelled time comes from the "
                    f"ledger, host time from RunSupervisor")


def _is_dict_view_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("items", "values", "keys")
            and not node.args and not node.keywords)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@register_rule
class UnorderedIteration(Rule):
    """D103: merges and charges iterate in a *stated* fixed order."""

    id = "D103"
    name = "unordered-iteration"
    summary = ("loops and reductions in core/runtime must not consume "
               "dict-view or set iteration order directly; wrap the "
               "iterable in sorted(...) or iterate a list with fixed order")
    scopes = _NUMERIC_SCOPES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in ("sum", "max", "min") and node.args:
                iters.append(node.args[0])
            for it in iters:
                if _is_dict_view_call(it):
                    yield ctx.finding(
                        self, it,
                        f"iterating `.{it.func.attr}()` consumes dict "  # type: ignore[attr-defined]
                        f"insertion order; make the order explicit "
                        f"(sorted(...) or a fixed key list)")
                elif _is_set_expr(it):
                    yield ctx.finding(
                        self, it,
                        "iterating a set consumes hash order; sort it or "
                        "use an ordered container")


@register_rule
class FloatEquality(Rule):
    """D104: centroid/inertia floats never compare with == / !=."""

    id = "D104"
    name = "float-equality"
    summary = ("no float == / != on centroid or inertia values (exact-zero "
               "sentinels are exempt); compare shifts against a tolerance")
    scopes = _NUMERIC_SCOPES

    _NAMES = ("inertia", "centroid", "distance")
    #: Non-float attributes of arrays named like centroid/distance buffers.
    _METADATA_ATTRS = ("shape", "dtype", "ndim", "size", "nbytes")

    def _suspicious(self, node: ast.AST) -> str:
        if isinstance(node, ast.Constant) and isinstance(node.value, float) \
                and node.value != 0.0:
            return f"float literal {node.value!r}"
        name = dotted_name(node)
        if not name or name.rsplit(".", 1)[-1] in self._METADATA_ATTRS:
            return ""
        low = name.lower()
        for needle in self._NAMES:
            if needle in low:
                return f"`{name}`"
        return ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for operand in [node.left, *node.comparators]:
                what = self._suspicious(operand)
                if what:
                    yield ctx.finding(
                        self, node,
                        f"exact float comparison on {what}; equality on "
                        f"accumulated floats is order- and platform-"
                        f"sensitive — compare a shift against a tolerance")
                    break


@register_rule
class CompletionOrderCollection(Rule):
    """D105: engine results merge in submission order, never completion."""

    id = "D105"
    name = "completion-order-collection"
    summary = ("core/runtime must not collect futures in completion order "
               "(`as_completed`, FIRST_COMPLETED); partials merge in "
               "submission order")
    scopes = _NUMERIC_SCOPES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            names = []
            if isinstance(node, ast.ImportFrom):
                names = [alias.name for alias in node.names]
            elif isinstance(node, (ast.Name, ast.Attribute)):
                dotted = dotted_name(node)
                names = [dotted.rsplit(".", 1)[-1]] if dotted else []
            for name in names:
                if name in ("as_completed", "FIRST_COMPLETED"):
                    yield ctx.finding(
                        self, node,
                        f"`{name}` yields completion order, which varies "
                        f"run to run; collect futures in submission order "
                        f"so float partials merge deterministically")
                    break


def _bound_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)


def _mentioned_names(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _is_engine_map_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "map"
            and dotted_name(node.func.value).split(".")[-1] == "engine")


@register_rule
class ManualPartialAccumulation(Rule):
    """D106: engine.map partials reduce through map_reduce, not by hand."""

    id = "D106"
    name = "manual-partial-accumulation"
    summary = ("results of engine.map(...) must reduce through "
               "ExecutionEngine.map_reduce / runtime/reduce.py; a "
               "hand-rolled accumulation loop over the partials re-opens "
               "the serial-merge bottleneck the reduce seam removed")
    scopes = _NUMERIC_SCOPES
    #: runtime/reduce.py and the engine's own reduce implementation are
    #: the blessed home of partial merging.
    exempt = ("reduce",)

    def _tainted_names(self, ctx: LintContext) -> Set[str]:
        """Names holding engine.map results, plus one-hop derivations.

        The fixpoint walk also catches the historical indirections
        (``unit_sums = {u: partials[u][0] ...}`` before the fold).
        """
        tainted: Set[str] = set()
        for _ in range(4):  # bounded fixpoint over derivation chains
            grew = False
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Assign):
                    continue
                seeds = _is_engine_map_call(node.value) \
                    or (_mentioned_names(node.value) & tainted)
                if not seeds:
                    continue
                for target in node.targets:
                    for name in _bound_names(target):
                        if name not in tainted:
                            tainted.add(name)
                            grew = True
            if not grew:
                break
        return tainted

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        tainted = self._tainted_names(ctx)
        if not tainted:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) \
                    and (_mentioned_names(node.iter) & tainted) \
                    and any(isinstance(child, ast.AugAssign)
                            and isinstance(child.op, (ast.Add, ast.Sub))
                            for stmt in node.body
                            for child in ast.walk(stmt)):
                yield ctx.finding(
                    self, node,
                    "manual accumulation loop over engine.map partials; "
                    "merge them with engine.map_reduce(fn, items, "
                    "topology=...) so the reduction topology (and its "
                    "determinism guarantees) applies")
            elif isinstance(node, ast.Call) \
                    and dotted_name(node.func) in ("sum", "np.sum",
                                                   "numpy.sum") \
                    and node.args \
                    and isinstance(node.args[0], (ast.ListComp,
                                                  ast.GeneratorExp,
                                                  ast.List)) \
                    and (_mentioned_names(node.args[0]) & tainted):
                yield ctx.finding(
                    self, node,
                    "sum(...) over engine.map partials bypasses the "
                    "reduction seam; merge them with engine.map_reduce "
                    "(grouped topologies cover hierarchical merges)")


#: Calls that adopt previously persisted state (checkpoint restores).
_RESTORE_CALLS = frozenset({"restore", "load_checkpoint", "from_checkpoint"})

#: Calls that make carried bound state safe again after a restore: the
#: in-place drop, the executors' shared reset hook, and the resume loader
#: (which invalidates internally before touching the snapshot).
_BOUNDS_RESET_CALLS = frozenset({
    "_reset_state_after_replan", "_load_resume_state",
})


def _bounds_like(name: str) -> bool:
    """True for dotted names that mention a bounds carrier."""
    return any("bounds" in part for part in name.lower().split("."))


@register_rule
class StaleBoundsAfterRestore(Rule):
    """D107: restored centroids never meet carried pruning bounds."""

    id = "D107"
    name = "stale-bounds-after-restore"
    summary = ("after a checkpoint restore (`*.restore()`, "
               "`load_checkpoint(...)`) bound state must be invalidated or "
               "rebuilt before it is read; drifting bounds anchored to "
               "pre-restore centroids is unsound and silently breaks "
               "bit-identity of resumed runs")
    scopes = _NUMERIC_SCOPES

    def _statements(self, func: ast.AST) -> Iterator[ast.AST]:
        """Nodes of the function body in source order, own scope only."""
        stack = list(getattr(func, "body", []))
        while stack:
            node = stack.pop(0)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, func)

    def _check_function(self, ctx: LintContext,
                        func: ast.AST) -> Iterator[Finding]:
        # (position, kind, node) event stream in source order.  Kinds:
        # "restore" opens a hazard window, "reset" closes it, "read" inside
        # an open window is the violation.
        events = []
        func_chain_ids = set()
        for node in self._statements(func):
            if isinstance(node, ast.Call):
                # Everything in callee position is exempt from "read":
                # `bounds.invalidate()` and `BlockBounds()` mention the
                # carrier without consuming its state.
                callee = node.func
                while isinstance(callee, ast.Attribute):
                    func_chain_ids.add(id(callee))
                    callee = callee.value
                func_chain_ids.add(id(callee))
        for node in self._statements(func):
            pos = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                last = name.rsplit(".", 1)[-1]
                if last in _BOUNDS_RESET_CALLS \
                        or (last == "invalidate"
                            and _bounds_like(name.rsplit(".", 1)[0])):
                    events.append((pos, "reset", node))
                elif last in _RESTORE_CALLS:
                    events.append((pos, "restore", node))
            elif isinstance(node, ast.Assign):
                if any(_bounds_like(dotted_name(t)) for t in node.targets):
                    events.append((pos, "reset", node))
            elif isinstance(node, (ast.Name, ast.Attribute)) \
                    and isinstance(getattr(node, "ctx", None), ast.Load) \
                    and id(node) not in func_chain_ids \
                    and _bounds_like(dotted_name(node)):
                events.append((pos, "read", node))
        events.sort(key=lambda e: e[0])
        pending = None
        for _, kind, node in events:
            if kind == "restore":
                pending = node
            elif kind == "reset":
                pending = None
            elif kind == "read" and pending is not None:
                pending = None
                yield ctx.finding(
                    self, node,
                    f"`{dotted_name(node)}` is read after a checkpoint "
                    f"restore without invalidation; bounds anchored to "
                    f"pre-restore centroids are unsound — call "
                    f"`.invalidate()` (or rebuild the carrier) first")
