"""Whole-program project model: file summaries, imports, and the call graph.

reprolint's per-file rules go blind at a function boundary: an
``engine.map`` result laundered through a helper escapes D106, a ledger
charge buried two calls deep inside a task body escapes L201.  Closing
those holes needs *whole-program* reasoning, and this module is its
foundation:

* :class:`FileSummary` — a compact, **picklable** intermediate
  representation of one source file (functions, imports, classes, and an
  abstracted statement stream).  The summary carries everything the
  interprocedural engine needs, so the incremental lint cache
  (:mod:`repro.analysis.cache`) can store it keyed by content hash and a
  warm run never re-parses an unchanged file.
* :class:`Project` — every summary of one lint invocation, with import
  resolution, a class/method index, simple receiver-type inference
  (annotated parameters and single-assignment constructor locals), and
* :class:`CallGraph` — one edge per call site whose callee resolves to a
  function defined in the project, built **once per invocation** and
  shared by every whole-program rule
  (:mod:`repro.analysis.rules_wholeprogram`).

Known approximations (documented in ``docs/architecture.md``): dynamic
dispatch through ``getattr``/dicts-of-functions is invisible, decorators
are assumed name-preserving, and positional dataclass constructor
arguments do not map to carrier attributes (keyword arguments do).  The
graph over-approximates receivers named ``engine`` as execution engines —
the same heuristic the per-file rules use.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CallGraph",
    "CallRec",
    "ClassInfo",
    "Edge",
    "EngineSite",
    "FileSummary",
    "FuncSummary",
    "Op",
    "Project",
    "Value",
    "extract_summary",
    "module_name_for",
]

#: ``ExecutionEngine`` methods forming the map/combine/reduce seam.
ENGINE_SEAM_METHODS = ("map", "map_reduce", "reduce_partials")

#: Builtins through which data taint flows from arguments to result.
TRANSPARENT_CALLS = frozenset({
    "list", "tuple", "sorted", "reversed", "enumerate", "zip", "iter",
    "next", "dict",
})

#: Callables whose *first argument's* callable-ness survives the call.
WRAPPER_CALLS = frozenset({"partial", "wraps"})


# ---------------------------------------------------------------------------
# the abstract-value / operation IR
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Value:
    """Abstraction of one expression: what could its result carry?

    ``refs`` are the dotted paths read in value position (subscripts are
    elided, so ``partials[i].sums`` contributes ``"partials.sums"``);
    ``calls`` are the calls whose results feed the value; ``lambdas``
    marks inline ``lambda`` expressions (inherently unpicklable);
    ``consts`` keeps string literals (environment-variable names);
    ``ordered`` is True when the expression consumes dict-view or set
    iteration order (a comprehension over ``d.items()``; ``sorted(...)``
    cancels it).
    """

    refs: Tuple[str, ...] = ()
    calls: Tuple["CallRec", ...] = ()
    lambdas: Tuple[Tuple[int, int], ...] = ()
    consts: Tuple[str, ...] = ()
    ordered: bool = False


_EMPTY_VALUE = Value()


@dataclass(frozen=True)
class CallRec:
    """One call site, abstracted: ``callee(args, **kwargs)`` at line:col."""

    callee: str                                # dotted path; "" if dynamic
    args: Tuple[Value, ...]
    kwargs: Tuple[Tuple[str, Value], ...]
    line: int
    col: int

    @property
    def attr(self) -> str:
        """The final path segment (method/function name)."""
        return self.callee.rsplit(".", 1)[-1]

    @property
    def receiver(self) -> str:
        """The dotted path before the final segment ('' for bare names)."""
        head, _, _ = self.callee.rpartition(".")
        return head


@dataclass(frozen=True)
class Op:
    """One abstracted statement inside a function body.

    kind:
        * ``"assign"`` — targets bound to ``value`` (augmented assignments
          set ``accum`` so accumulation sinks can tell ``x = v`` from
          ``x += v``),
        * ``"return"`` — function returns ``value``,
        * ``"loop"`` — a for loop: ``value`` is the iterable, ``targets``
          the loop variables, ``accum_targets`` the names augmented inside
          the body, ``ordered_kind`` ``"dict-view"``/``"set"`` when the
          iterable consumes hash/insertion order,
        * ``"subscript"`` — a Load-context ``base[...]`` read (environment
          mapping reads),
        * ``"call"`` — a bare call statement (also present in ``value``).
    """

    kind: str
    line: int
    col: int
    targets: Tuple[str, ...] = ()
    value: Value = _EMPTY_VALUE
    accum: bool = False
    accum_targets: Tuple[str, ...] = ()
    ordered_kind: Optional[str] = None


@dataclass(frozen=True)
class FuncSummary:
    """One function (or method, or the synthetic ``<module>`` body)."""

    module: str                    # dotted module name
    qualname: str                  # "<module>:<dotted func path>"
    name: str
    cls: Optional[str]             # owning class name, if a method
    params: Tuple[str, ...]
    annotations: Tuple[Optional[str], ...]
    line: int
    col: int
    path: str                      # display path of the defining file
    calls: Tuple[CallRec, ...]     # every call site, source order
    ops: Tuple[Op, ...]            # abstracted statements, source order
    nested_defs: Tuple[str, ...]   # names of defs nested inside this one


@dataclass(frozen=True)
class ClassInfo:
    """One class definition: its methods and (dotted, as-written) bases."""

    module: str
    name: str
    methods: Tuple[str, ...]
    bases: Tuple[str, ...]

    @property
    def qual(self) -> str:
        return f"{self.module}:{self.name}"


@dataclass(frozen=True)
class FileSummary:
    """Everything the whole-program engine needs from one file."""

    path: str
    module: str
    parts: Tuple[str, ...]          # posix path components, stem last
    imports: Tuple[Tuple[str, str], ...]   # local alias -> dotted target
    functions: Tuple[FuncSummary, ...]
    classes: Tuple[ClassInfo, ...]

    def import_map(self) -> Dict[str, str]:
        return dict(self.imports)


# ---------------------------------------------------------------------------
# module naming
# ---------------------------------------------------------------------------

_ROOT_PACKAGES = ("repro", "tests")


def module_name_for(path: str) -> str:
    """Dotted module name for a display path, without touching the disk.

    The repo has exactly two package roots (``src/repro`` and ``tests``);
    files under either get their dotted name from that root on, everything
    else (benchmarks, examples, fixtures in temp dirs) is a top-level
    module named by its stem.  Being a pure function of the path keeps
    summaries cacheable and lets rule fixtures fabricate project layouts.
    """
    posix = PurePosixPath(str(path).replace("\\", "/"))
    parts = list(posix.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    for root in _ROOT_PACKAGES:
        if root in parts[:-1] or (parts and parts[-1] == root):
            start = parts.index(root)
            dotted = [p for p in parts[start:] if p != "__init__"]
            return ".".join(dotted) if dotted else root
    return parts[-1] if parts else "<unknown>"


# ---------------------------------------------------------------------------
# expression abstraction
# ---------------------------------------------------------------------------

def _dotted_path(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains; subscripts are elided
    (``a[i].b`` -> ``a.b``), anything else yields ''."""
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        else:
            return ""


def _is_dict_view(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("items", "values", "keys")
            and not node.args and not node.keywords)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


class _ValueBuilder:
    """Folds one expression tree into a :class:`Value`."""

    def __init__(self) -> None:
        self.refs: List[str] = []
        self.calls: List[CallRec] = []
        self.lambdas: List[Tuple[int, int]] = []
        self.consts: List[str] = []
        self.ordered = False

    def build(self, node: Optional[ast.AST]) -> Value:
        if node is not None:
            self._fold(node)
        return Value(refs=tuple(self.refs), calls=tuple(self.calls),
                     lambdas=tuple(self.lambdas), consts=tuple(self.consts),
                     ordered=self.ordered)

    def _fold(self, node: ast.AST) -> None:
        if isinstance(node, (ast.Name, ast.Attribute)):
            path = _dotted_path(node)
            if path:
                self.refs.append(path)
            elif isinstance(node, ast.Attribute):
                self._fold(node.value)
            return
        if isinstance(node, ast.Subscript):
            path = _dotted_path(node)
            if path:
                self.refs.append(path)
            else:
                self._fold(node.value)
            self._fold(node.slice)
            return
        if isinstance(node, ast.Call):
            self.calls.append(_call_rec(node))
            if _dotted_path(node.func) == "":
                # Dynamic callee (call-on-call): keep its operand refs.
                self._fold(node.func)
            return
        if isinstance(node, ast.Lambda):
            self.lambdas.append((node.lineno, node.col_offset))
            return
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                self.consts.append(node.value)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for gen in node.generators:
                if _is_dict_view(gen.iter) or _is_set_expr(gen.iter):
                    self.ordered = True
                self._fold(gen.iter)
            if isinstance(node, ast.DictComp):
                self._fold(node.key)
                self._fold(node.value)
            else:
                self._fold(node.elt)
            return
        for child in ast.iter_child_nodes(node):
            self._fold(child)


def _abstract(node: Optional[ast.AST]) -> Value:
    return _ValueBuilder().build(node)


def _call_rec(node: ast.Call) -> CallRec:
    callee = _dotted_path(node.func)
    args = tuple(_abstract(a) for a in node.args)
    kwargs = tuple((kw.arg, _abstract(kw.value))
                   for kw in node.keywords if kw.arg is not None)
    return CallRec(callee=callee, args=args, kwargs=kwargs,
                   line=node.lineno, col=node.col_offset)


# ---------------------------------------------------------------------------
# function-body extraction
# ---------------------------------------------------------------------------

def _target_paths(target: ast.AST) -> Iterator[str]:
    if isinstance(target, (ast.Name, ast.Attribute, ast.Subscript)):
        path = _dotted_path(target)
        if path:
            yield path
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_paths(element)
    elif isinstance(target, ast.Starred):
        yield from _target_paths(target.value)


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                ast.Lambda)


def _own_scope_nodes(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """All AST nodes of ``body`` excluding nested def/class/lambda scopes
    (the nested defs get their own summaries)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop(0)
        if isinstance(node, _SCOPE_NODES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _loop_op(node: ast.For) -> Op:
    targets = tuple(_target_paths(node.target))
    accum: List[str] = []
    for sub in _own_scope_nodes(node.body):
        if isinstance(sub, ast.AugAssign) \
                and isinstance(sub.op, (ast.Add, ast.Sub)):
            accum.extend(_target_paths(sub.target))
    ordered_kind: Optional[str] = None
    if _is_dict_view(node.iter):
        ordered_kind = "dict-view"
    elif _is_set_expr(node.iter):
        ordered_kind = "set"
    return Op(kind="loop", line=node.lineno, col=node.col_offset,
              targets=targets, value=_abstract(node.iter),
              accum_targets=tuple(accum), ordered_kind=ordered_kind)


def _annotation_text(node: Optional[ast.expr]) -> Optional[str]:
    """Best-effort dotted string for a parameter annotation.

    Handles plain names/attributes, string annotations, and unwraps a
    single ``Optional[...]``; anything fancier is left unresolved (the
    analysis then simply has no receiver type, never a wrong one).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip().strip("'\"")
        return text or None
    if isinstance(node, ast.Subscript):
        head = _dotted_path(node.value)
        if head.rsplit(".", 1)[-1] == "Optional":
            return _annotation_text(
                node.slice if isinstance(node.slice, ast.expr) else None)
        return None
    path = _dotted_path(node)
    return path or None


def _extract_ops(body: Sequence[ast.stmt]) -> Tuple[Tuple[Op, ...],
                                                    Tuple[CallRec, ...]]:
    ops: List[Op] = []
    calls: List[CallRec] = []
    for node in _own_scope_nodes(body):
        if isinstance(node, ast.Call):
            calls.append(_call_rec(node))
        if isinstance(node, ast.Assign):
            targets = tuple(p for t in node.targets
                            for p in _target_paths(t))
            ops.append(Op(kind="assign", line=node.lineno,
                          col=node.col_offset, targets=targets,
                          value=_abstract(node.value)))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            ops.append(Op(kind="assign", line=node.lineno,
                          col=node.col_offset,
                          targets=tuple(_target_paths(node.target)),
                          value=_abstract(node.value)))
        elif isinstance(node, ast.AugAssign):
            ops.append(Op(kind="assign", line=node.lineno,
                          col=node.col_offset,
                          targets=tuple(_target_paths(node.target)),
                          value=_abstract(node.value), accum=True))
        elif isinstance(node, ast.Return):
            ops.append(Op(kind="return", line=node.lineno,
                          col=node.col_offset,
                          value=_abstract(node.value)))
        elif isinstance(node, ast.For):
            ops.append(_loop_op(node))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            pass  # folded into the enclosing statement's Value
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, ast.Load):
            base = _dotted_path(node.value)
            if base:
                ops.append(Op(kind="subscript", line=node.lineno,
                              col=node.col_offset, targets=(base,)))
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            ops.append(Op(kind="call", line=node.lineno,
                          col=node.col_offset,
                          value=_abstract(node.value)))
    # Deterministic source order for the fixpoint and the findings.
    ops.sort(key=lambda op: (op.line, op.col))
    calls.sort(key=lambda c: (c.line, c.col))
    return tuple(ops), tuple(calls)


def _func_summary(node: "ast.FunctionDef | ast.AsyncFunctionDef",
                  module: str, path: str, prefix: str,
                  cls: Optional[str]) -> List[FuncSummary]:
    """Summaries for one def and (recursively) the defs nested in it."""
    func_path = f"{prefix}.{node.name}" if prefix else node.name
    all_args = list(node.args.posonlyargs) + list(node.args.args)
    params = tuple(a.arg for a in all_args)
    annotations = tuple(_annotation_text(a.annotation) for a in all_args)
    ops, calls = _extract_ops(node.body)
    nested: List[FuncSummary] = []
    nested_names: List[str] = []
    for sub in node.body:
        for inner in ast.walk(sub):
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and inner is not node \
                    and _directly_inside(node, inner):
                nested_names.append(inner.name)
                nested.extend(_func_summary(inner, module, path,
                                            func_path, cls))
    summary = FuncSummary(
        module=module, qualname=f"{module}:{func_path}", name=node.name,
        cls=cls, params=params, annotations=annotations,
        line=node.lineno, col=node.col_offset, path=path,
        calls=calls, ops=ops, nested_defs=tuple(nested_names),
    )
    return [summary] + nested


def _directly_inside(outer: ast.AST, inner: ast.AST) -> bool:
    """True when ``inner`` is nested in ``outer`` with no def/class between.

    ``ast.walk`` from a statement crosses scope boundaries; this check
    keeps each nested def attached to its *immediate* parent so qualnames
    nest correctly.
    """
    for node in ast.walk(outer):
        if node is inner:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)) and node is not outer:
            if any(sub is inner for sub in ast.walk(node)):
                return False
    return True


def _imports_of(tree: ast.Module, module: str) -> Tuple[Tuple[str, str], ...]:
    package = module.rsplit(".", 1)[0] if "." in module else ""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    table[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = module.split(".")
                # level 1 = current package (the module's own parent).
                anchor = anchor[: len(anchor) - node.level] \
                    if len(anchor) >= node.level else []
                parts = [p for p in (".".join(anchor), base) if p]
                base = ".".join(parts)
            elif not base:
                base = package
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return tuple(sorted(table.items()))


def extract_summary(tree: ast.Module, path: str,
                    parts: Tuple[str, ...]) -> FileSummary:
    """Fold one parsed file into its :class:`FileSummary` IR."""
    module = module_name_for(path)
    functions: List[FuncSummary] = []
    classes: List[ClassInfo] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.extend(_func_summary(node, module, path, "", None))
        elif isinstance(node, ast.ClassDef):
            methods: List[str] = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    functions.extend(_func_summary(
                        item, module, path, node.name, node.name))
            classes.append(ClassInfo(
                module=module, name=node.name, methods=tuple(methods),
                bases=tuple(filter(None, (_dotted_path(b)
                                          for b in node.bases)))))
    module_ops, module_calls = _extract_ops(tree.body)
    functions.append(FuncSummary(
        module=module, qualname=f"{module}:<module>", name="<module>",
        cls=None, params=(), annotations=(), line=1, col=0, path=path,
        calls=module_calls, ops=module_ops, nested_defs=()))
    return FileSummary(path=path, module=module, parts=parts,
                       imports=_imports_of(tree, module),
                       functions=tuple(functions), classes=tuple(classes))


# ---------------------------------------------------------------------------
# the project: resolution + call graph
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Edge:
    """One resolved call edge: ``caller``'s call site targeting ``target``."""

    caller: str                       # FuncSummary.qualname
    call: CallRec
    target: Optional[str]             # resolved function qualname
    target_class: Optional[str]       # "mod:Class" for constructor calls


@dataclass(frozen=True)
class EngineSite:
    """One ``engine.map``/``map_reduce``/``reduce_partials`` call site."""

    caller: str
    call: CallRec
    method: str
    path: str
    line: int


@dataclass
class CallGraph:
    """Edges of the whole project, indexed both ways."""

    edges: List[Edge] = field(default_factory=list)
    by_caller: Dict[str, List[Edge]] = field(default_factory=dict)
    by_target: Dict[str, List[Edge]] = field(default_factory=dict)
    engine_sites: List[EngineSite] = field(default_factory=list)

    def add(self, edge: Edge) -> None:
        self.edges.append(edge)
        self.by_caller.setdefault(edge.caller, []).append(edge)
        if edge.target is not None:
            self.by_target.setdefault(edge.target, []).append(edge)

    def callees(self, qualname: str) -> List[str]:
        return [e.target for e in self.by_caller.get(qualname, [])
                if e.target is not None]

    def callers(self, qualname: str) -> List[Edge]:
        return self.by_target.get(qualname, [])

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Function qualnames reachable along call edges from ``roots``."""
        seen: Set[str] = set()
        frontier = [r for r in roots]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.callees(current))
        return seen


class Project:
    """All summaries of one lint invocation, resolved into a call graph."""

    def __init__(self, summaries: Sequence[FileSummary]) -> None:
        self.files: Dict[str, FileSummary] = {s.path: s for s in summaries}
        self.modules: Dict[str, FileSummary] = {}
        for summary in summaries:
            # First summary wins on module-name collisions (distinct temp
            # trees in tests may fabricate the same stem).
            self.modules.setdefault(summary.module, summary)
        self.functions: Dict[str, FuncSummary] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for summary in summaries:
            for func in summary.functions:
                self.functions.setdefault(func.qualname, func)
            for cls in summary.classes:
                self.classes.setdefault(cls.qual, cls)
        self._local_types: Dict[str, Dict[str, str]] = {}
        #: Scratch space for analyses memoised per invocation (e.g. one
        #: taint fixpoint per whole-program rule).
        self.analysis_cache: Dict[str, object] = {}
        self.graph = self._build_graph()

    # -- construction ---------------------------------------------------

    @classmethod
    def from_summaries(cls, summaries: Sequence[FileSummary]) -> "Project":
        return cls(summaries)

    def _build_graph(self) -> CallGraph:
        graph = CallGraph()
        for summary in self.files.values():
            for func in summary.functions:
                for call in func.calls:
                    target, target_class = self.resolve_call(func, call)
                    graph.add(Edge(caller=func.qualname, call=call,
                                   target=target,
                                   target_class=target_class))
                    if call.attr in ENGINE_SEAM_METHODS \
                            and self.is_engine_receiver(func, call.receiver):
                        graph.engine_sites.append(EngineSite(
                            caller=func.qualname, call=call,
                            method=call.attr, path=summary.path,
                            line=call.line))
        return graph

    # -- name/type resolution --------------------------------------------

    def resolve_module_symbol(self, module: str,
                              name: str) -> Optional[str]:
        """Resolve ``name`` inside ``module`` to a dotted project symbol."""
        summary = self.modules.get(module)
        if summary is None:
            return None
        imports = summary.import_map()
        if name in imports:
            return imports[name]
        return None

    def _class_of(self, module: str, name: str) -> Optional[ClassInfo]:
        """A class named ``name`` as visible from ``module``."""
        summary = self.modules.get(module)
        if summary is not None:
            for cls in summary.classes:
                if cls.name == name:
                    return cls
            imports = summary.import_map()
            if name in imports:
                dotted = imports[name]
                mod, _, last = dotted.rpartition(".")
                candidate = self.classes.get(f"{mod}:{last}")
                if candidate is not None:
                    return candidate
        return None

    def _class_by_dotted(self, module: str,
                         dotted: str) -> Optional[ClassInfo]:
        """Resolve a dotted annotation/base string to a project class."""
        if "." not in dotted:
            return self._class_of(module, dotted)
        head, _, rest = dotted.partition(".")
        target = self.resolve_module_symbol(module, head)
        if target is None:
            return None
        full = f"{target}.{rest}"
        mod, _, last = full.rpartition(".")
        return self.classes.get(f"{mod}:{last}")

    def _method_on(self, cls: Optional[ClassInfo],
                   name: str, depth: int = 0) -> Optional[str]:
        """Qualname of ``name`` on ``cls`` or its project-visible bases."""
        if cls is None or depth > 8:
            return None
        if name in cls.methods:
            return f"{cls.module}:{cls.name}.{name}"
        for base in cls.bases:
            found = self._method_on(
                self._class_by_dotted(cls.module, base), name, depth + 1)
            if found is not None:
                return found
        return None

    def local_types(self, func: FuncSummary) -> Dict[str, str]:
        """var -> "mod:Class" from annotations and constructor assigns."""
        cached = self._local_types.get(func.qualname)
        if cached is not None:
            return cached
        types: Dict[str, str] = {}
        for param, ann in zip(func.params, func.annotations):
            if ann is None:
                continue
            cls = self._class_by_dotted(func.module, ann)
            if cls is not None:
                types[param] = cls.qual
        for op in func.ops:
            if op.kind != "assign" or len(op.targets) != 1 or op.accum:
                continue
            if len(op.value.calls) == 1 and not op.value.refs:
                rec = op.value.calls[0]
                cls = self._resolve_class_callee(func, rec.callee)
                if cls is not None:
                    types[op.targets[0]] = cls.qual
        self._local_types[func.qualname] = types
        return types

    def _resolve_class_callee(self, func: FuncSummary,
                              callee: str) -> Optional[ClassInfo]:
        if not callee:
            return None
        return self._class_by_dotted(func.module, callee)

    def type_of(self, func: FuncSummary, path: str) -> Optional[str]:
        """"mod:Class" of a dotted receiver path, when inferable."""
        if not path:
            return None
        head = path.split(".")[0]
        if head == "self" and func.cls is not None:
            if path == "self":
                return f"{func.module}:{func.cls}"
            return None
        if "." not in path:
            return self.local_types(func).get(path)
        return None

    def is_engine_receiver(self, func: FuncSummary, receiver: str) -> bool:
        """Heuristic + typed: is this receiver an ExecutionEngine?

        Mirrors the per-file rules (a receiver whose last segment is
        ``engine``) and adds receiver-type inference: an annotated or
        constructor-typed variable whose class name ends with ``Engine``,
        and ``self`` inside an ``*Engine`` class.
        """
        if not receiver:
            return False
        if receiver.split(".")[-1] == "engine":
            return True
        typed = self.type_of(func, receiver)
        if typed is not None and typed.rsplit(":", 1)[-1].endswith("Engine"):
            return True
        return False

    def resolve_call(self, func: FuncSummary,
                     call: CallRec) -> Tuple[Optional[str], Optional[str]]:
        """(function qualname, class qual) the call resolves to, if any."""
        callee = call.callee
        if not callee:
            return None, None
        return self.resolve_ref(func, callee)

    def resolve_ref(self, func: FuncSummary,
                    path: str) -> Tuple[Optional[str], Optional[str]]:
        """Resolve a dotted *reference* to a project function or class.

        Returns ``(function_qualname, class_qual)``; at most one is set.
        Handles bare names (nested defs, same-module defs, imported
        symbols), ``self.method``, typed-receiver methods, and
        module-attribute chains (``lloyd.lloyd_single``).
        """
        segments = path.split(".")
        head, rest = segments[0], segments[1:]
        module = func.module

        if not rest:
            if head in func.nested_defs:
                nested = f"{module}:{_strip_module(func.qualname)}.{head}"
                if nested in self.functions:
                    return nested, None
            if f"{module}:{head}" in self.functions:
                return f"{module}:{head}", None
            local_cls = self._class_of(module, head)
            if local_cls is not None:
                return None, local_cls.qual
            imported = self.resolve_module_symbol(module, head)
            if imported is not None:
                return self._resolve_dotted_symbol(imported)
            return None, None

        # Method on a typed or self receiver: one trailing attribute hop.
        receiver = ".".join(segments[:-1])
        method = segments[-1]
        typed = self.type_of(func, receiver)
        if typed is not None:
            found = self._method_on(self.classes.get(typed), method)
            if found is not None:
                return found, None
        # Module attribute chain through the import table.
        imported = self.resolve_module_symbol(module, head)
        if imported is not None:
            return self._resolve_dotted_symbol(".".join([imported] + rest))
        # A class defined/imported in this module: ClassName.method.
        if len(rest) == 1:
            cls = self._class_of(module, head)
            if cls is not None:
                found = self._method_on(cls, method)
                return found, None
        return None, None

    def _resolve_dotted_symbol(
            self, dotted: str) -> Tuple[Optional[str], Optional[str]]:
        """Resolve a fully-dotted symbol against the project's modules."""
        if dotted in self.modules:
            return None, None
        mod, _, last = dotted.rpartition(".")
        if not mod:
            return None, None
        if mod in self.modules:
            qual = f"{mod}:{last}"
            if qual in self.functions:
                return qual, None
            if qual in self.classes:
                return None, qual
            return None, None
        # One more hop: "pkg.mod.Class.method" / "pkg.mod.Class".
        mod2, _, cls_name = mod.rpartition(".")
        if mod2 and mod2 in self.modules:
            cls = self.classes.get(f"{mod2}:{cls_name}")
            if cls is not None:
                found = self._method_on(cls, last)
                return found, None
        return None, None

    # -- convenience for rules -------------------------------------------

    def functions_of(self, path: str) -> Tuple[FuncSummary, ...]:
        summary = self.files.get(path)
        return summary.functions if summary is not None else ()

    def resolve_callable_value(self, func: FuncSummary, value: Value,
                               depth: int = 0) -> List[str]:
        """Function qualnames a callable-carrying value may refer to.

        Follows direct references, ``functools.partial`` wrappers, and
        bounded local assignment chains (``fn = helper`` then
        ``engine.map(fn, ...)``).  Factory-returned callables are out of
        scope (documented approximation).
        """
        if depth > 6:
            return []
        found: List[str] = []
        for ref in value.refs:
            target, _ = self.resolve_ref(func, ref)
            if target is not None:
                found.append(target)
            elif "." not in ref:
                for op in func.ops:
                    if op.kind == "assign" and op.targets == (ref,) \
                            and not op.accum:
                        found.extend(self.resolve_callable_value(
                            func, op.value, depth + 1))
        for rec in value.calls:
            if rec.attr in WRAPPER_CALLS and rec.args:
                found.extend(self.resolve_callable_value(
                    func, rec.args[0], depth + 1))
        return found


def _strip_module(qualname: str) -> str:
    return qualname.split(":", 1)[1]
