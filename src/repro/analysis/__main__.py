"""``python -m repro.analysis`` — run reprolint over the tree.

Exit codes: 0 = clean (or suppressed/baselined-only), 1 = unsuppressed
findings, 2 = bad invocation.  The CI lint job runs::

    python -m repro.analysis --check --format github src/ benchmarks/ examples/
    python -m repro.analysis --check --format github \
        --baseline tests/analysis/reprolint_baseline.json tests/

See ``docs/invariants.md`` for the rule catalogue and the suppression
syntax.  Caching: ``--cache DIR`` (or the registered ``REPRO_LINT_CACHE``
variable) makes warm runs skip unchanged files; ``--no-cache`` forces a
cold run regardless.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .cache import LintCache, default_cache_dir
from .reprolint import (
    Finding,
    all_rules,
    baseline_key,
    lint_paths,
    load_baseline,
    render_github,
    render_human,
    render_json,
    write_baseline,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: static analysis of the repo's determinism, "
                    "ledger, LDM, env, typing, and whole-program "
                    "invariants.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--check", action="store_true",
        help="gate mode (the default behaviour; kept explicit for CI "
             "readability): exit 1 on any unsuppressed finding")
    parser.add_argument(
        "--format", choices=("human", "json", "github"), default="human",
        help="output format: human-readable lines (default), JSON, or "
             "GitHub Actions workflow-command annotations")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="alias for --format json (kept for older scripts)")
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print findings silenced by suppression comments")
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="grandfather file: findings whose (rule, path, message) key "
             "appears in it do not fail the gate; new findings still do")
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="write the current active findings to FILE as the new "
             "baseline and exit 0")
    parser.add_argument(
        "--cache", metavar="DIR",
        help="incremental cache directory (default: $REPRO_LINT_CACHE "
             "when set)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache and $REPRO_LINT_CACHE for this run")
    return parser


def _resolve_cache(args: argparse.Namespace) -> Optional[LintCache]:
    if args.no_cache:
        return None
    if args.cache:
        return LintCache(args.cache)
    default = default_cache_dir()
    return LintCache(default) if default is not None else None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            scope = ", ".join(rule.scopes) if rule.scopes else "everywhere"
            print(f"{rule.id}  {rule.name}  [{scope}]")
            print(f"      {rule.summary}")
        return 0
    if args.rules:
        wanted = {rule_id.strip() for rule_id in args.rules.split(",")}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            print(f"unknown rule ids: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.id in wanted]

    findings = lint_paths(args.paths, rules=rules,
                          cache=_resolve_cache(args))

    if args.write_baseline:
        write_baseline(findings, args.write_baseline)
        active = sum(1 for f in findings if not f.suppressed)
        print(f"reprolint: wrote {active} finding"
              f"{'s' if active != 1 else ''} to {args.write_baseline}")
        return 0

    baselined: List[Finding] = []
    if args.baseline:
        try:
            grandfathered = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.baseline!r}: {exc}",
                  file=sys.stderr)
            return 2
        kept: List[Finding] = []
        for finding in findings:
            if not finding.suppressed \
                    and baseline_key(finding) in grandfathered:
                baselined.append(finding)
            else:
                kept.append(finding)
        findings = kept

    fmt = "json" if args.as_json else args.format
    if fmt == "json":
        print(render_json(findings))
    elif fmt == "github":
        print(render_github(findings))
    else:
        print(render_human(findings, show_suppressed=args.show_suppressed))
    if baselined:
        print(f"reprolint: {len(baselined)} baselined finding"
              f"{'s' if len(baselined) != 1 else ''} ignored")
    active_rules: List[str] = [f.rule for f in findings if not f.suppressed]
    return 1 if active_rules else 0


if __name__ == "__main__":
    sys.exit(main())
