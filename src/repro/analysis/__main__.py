"""``python -m repro.analysis`` — run reprolint over the tree.

Exit codes: 0 = clean (or suppressed-only), 1 = unsuppressed findings,
2 = bad invocation.  The CI lint job runs::

    python -m repro.analysis --check src/ benchmarks/ examples/

See ``docs/invariants.md`` for the rule catalogue and the suppression
syntax.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .reprolint import all_rules, lint_paths, render_human, render_json


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: static analysis of the repo's determinism, "
                    "ledger, LDM, env, and typing invariants.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--check", action="store_true",
        help="gate mode (the default behaviour; kept explicit for CI "
             "readability): exit 1 on any unsuppressed finding")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as JSON instead of human-readable lines")
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print findings silenced by suppression comments")
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            scope = ", ".join(rule.scopes) if rule.scopes else "everywhere"
            print(f"{rule.id}  {rule.name}  [{scope}]")
            print(f"      {rule.summary}")
        return 0
    if args.rules:
        wanted = {rule_id.strip() for rule_id in args.rules.split(",")}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            print(f"unknown rule ids: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.id in wanted]
    findings = lint_paths(args.paths, rules=rules)
    if args.as_json:
        print(render_json(findings))
    else:
        print(render_human(findings, show_suppressed=args.show_suppressed))
    active: List[str] = [f.rule for f in findings if not f.suppressed]
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
