"""Incremental lint cache: per-file fact summaries keyed by content hash.

Cold reprolint runs spend nearly all their time parsing files and walking
ASTs.  Nothing in that work depends on anything but the file's bytes and
the active rule set, so the cache stores — per file, keyed by a SHA-256
of (schema version, rule ids, source) —

* the per-file findings (post-suppression, including R-meta),
* the parsed suppression comments (needed to suppress whole-program
  findings that land in an unchanged file), and
* the :class:`~repro.analysis.project.FileSummary` (the picklable IR the
  call-graph/taint layer consumes), so warm runs never re-parse.

A second level keys the *whole-program* findings by a digest over every
file's content hash: when no file changed, the warm run skips graph
construction and the taint fixpoints outright.

The cache directory comes from the registered ``REPRO_LINT_CACHE``
environment knob (see :func:`default_cache_dir`) or an explicit
``--cache`` flag.  Entries are plain pickles named by their key; a
corrupt or version-skewed entry is treated as a miss and rewritten, so
the cache never needs manual invalidation.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from . import envvars

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .project import FileSummary
    from .reprolint import Finding, _Suppression

__all__ = ["CacheEntry", "LintCache", "default_cache_dir"]

#: Bump when the pickled layout (Finding/FileSummary/_Suppression fields or
#: the Op/Value IR) changes shape; the version feeds the content hash, so a
#: bump silently invalidates every stale entry.
_SCHEMA = 1


def default_cache_dir() -> Optional[Path]:
    """The ``REPRO_LINT_CACHE`` directory, or None when caching is off."""
    raw = envvars.read_str(envvars.ENV_LINT_CACHE)
    return Path(raw) if raw is not None else None


@dataclass
class CacheEntry:
    """Everything ``lint_paths`` needs to skip re-analysing one file."""

    findings: List["Finding"]
    suppressions: List["_Suppression"]
    summary: Optional["FileSummary"]


class LintCache:
    """Content-addressed store under one directory.

    ``hits``/``misses`` count per-file lookups; ``project_hits`` counts
    whole-tree lookups.  The counters exist for the warm-skip tests and
    ``benchmarks/bench_lint.py`` — correctness never depends on them.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.project_hits = 0
        self.project_misses = 0

    # -- keys -------------------------------------------------------------

    @staticmethod
    def content_hash(source: str, rules_sig: str) -> str:
        payload = f"{_SCHEMA}\x00{rules_sig}\x00".encode() + source.encode()
        return hashlib.sha256(payload).hexdigest()

    @staticmethod
    def tree_digest(file_hashes: Sequence[Tuple[str, str]]) -> str:
        joined = "\x00".join(
            f"{path}={digest}" for path, digest in sorted(file_hashes))
        return hashlib.sha256(f"{_SCHEMA}\x00{joined}".encode()).hexdigest()

    def _file_key(self, path: str, digest: str) -> Path:
        name = hashlib.sha256(f"{path}\x00{digest}".encode()).hexdigest()
        return self.root / f"f-{name}.pkl"

    def _project_key(self, tree_digest: str) -> Path:
        return self.root / f"p-{tree_digest}.pkl"

    # -- per-file entries ---------------------------------------------------

    def get_file(self, path: str, digest: str) -> Optional[CacheEntry]:
        entry = self._load(self._file_key(path, digest))
        if isinstance(entry, CacheEntry):
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put_file(self, path: str, digest: str,
                 findings: List["Finding"],
                 suppressions: List["_Suppression"],
                 summary: Optional["FileSummary"]) -> None:
        self._store(self._file_key(path, digest),
                    CacheEntry(findings=list(findings),
                               suppressions=list(suppressions),
                               summary=summary))

    # -- whole-program entries ----------------------------------------------

    def get_project(
            self, tree_digest: str) -> Optional[Dict[str, List["Finding"]]]:
        entry = self._load(self._project_key(tree_digest))
        if isinstance(entry, dict):
            self.project_hits += 1
            return entry
        self.project_misses += 1
        return None

    def put_project(self, tree_digest: str,
                    by_path: Dict[str, List["Finding"]]) -> None:
        self._store(self._project_key(tree_digest), by_path)

    # -- storage --------------------------------------------------------------

    def _load(self, key: Path) -> object:
        try:
            with key.open("rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # Missing, truncated, or version-skewed entry: a cache miss.
            return None

    def _store(self, key: Path, value: object) -> None:
        tmp = key.with_suffix(".tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(key)
        except OSError:
            # A read-only or full cache directory degrades to cold runs.
            try:
                tmp.unlink()
            except OSError:
                pass
