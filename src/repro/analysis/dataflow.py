"""Forward interprocedural taint/dataflow over the project IR.

The engine propagates "facts" (taint) from configurable seeds through

* assignments and augmented assignments (``x = t``, ``x += t``),
* loop variables (``for p in tainted: ...``),
* call arguments (a tainted argument taints the callee's parameter),
* return values (a tainted return taints every call site's result),
* *transparent* callables (``list(t)``, ``sorted(t)`` — per-spec),
* constructor *carriers* (``BlockPartial(sums=t)`` taints the object, so
  ``bp.sums`` reads taint through the attribute), and
* module globals (a name tainted at module level is visible to every
  function of that module).

It is a classic monotone worklist fixpoint over
:class:`~repro.analysis.project.FuncSummary` operations: facts only grow,
so termination is structural; a global round limit guards pathological
inputs.  Each whole-program rule instantiates one :class:`TaintSpec`
(seeds + propagation knobs) and reads the resulting :class:`TaintState`
to evaluate its sinks.

Precision notes: the analysis is deliberately an over-approximation in
value space (a tainted constructor argument taints the whole object) and
an under-approximation in name space (dynamic dispatch, ``getattr``,
containers of callables, and cross-module globals are invisible) — see
``docs/architecture.md``, "Whole-program analysis".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Set, Tuple

from .project import (
    TRANSPARENT_CALLS,
    WRAPPER_CALLS,
    CallRec,
    FuncSummary,
    Op,
    Project,
    Value,
)

__all__ = ["TaintEngine", "TaintSpec", "TaintState"]

#: Upper bound on global worklist rounds; facts grow monotonically so a
#: real fixpoint lands far below this — the cap only guards adversarial
#: inputs (deep mutually-recursive chains in fuzzed fixtures).
_MAX_ROUNDS = 10_000


@dataclass
class TaintSpec:
    """One rule's taint configuration.

    ``seed_call`` marks a call whose *result* is tainted; ``seed_ref``
    marks a dotted reference that is tainted wherever it appears (after
    import-alias resolution — ``environ`` from ``from os import environ``
    reaches it as ``os.environ``); ``seed_value`` inspects a whole
    abstract value (lambdas, order-consuming comprehensions);
    ``seed_loop`` taints a loop's variables and accumulation targets
    (dict-view/set iteration).
    """

    name: str
    seed_call: Optional[Callable[[Project, FuncSummary, CallRec], bool]] = None
    seed_ref: Optional[Callable[[Project, FuncSummary, str], bool]] = None
    seed_value: Optional[Callable[[Project, FuncSummary, Value], bool]] = None
    seed_loop: Optional[Callable[[Project, FuncSummary, Op], bool]] = None
    #: Callee last-segments through which taint flows args -> result.
    transparent: FrozenSet[str] = TRANSPARENT_CALLS
    #: Callee last-segments behaving like ``functools.partial``: the
    #: result carries the taint of *any* argument (partials pickle their
    #: bound arguments, and they forward data taint on call).
    wrappers: FrozenSet[str] = WRAPPER_CALLS
    #: Method names that forward a tainted receiver to their result.
    transparent_methods: FrozenSet[str] = frozenset({"copy"})
    #: Calls resolving to a project class taint the constructed object
    #: when any argument is tainted (attribute-carrier propagation).
    constructors_transparent: bool = True


@dataclass
class TaintState:
    """The fixpoint's output: tainted paths per function + tainted returns."""

    local: Dict[str, Set[str]] = field(default_factory=dict)
    returns: Set[str] = field(default_factory=set)

    def tainted_in(self, qualname: str) -> Set[str]:
        return self.local.setdefault(qualname, set())


class TaintEngine:
    """Runs one :class:`TaintSpec` to fixpoint over a :class:`Project`."""

    def __init__(self, project: Project, spec: TaintSpec) -> None:
        self.project = project
        self.spec = spec
        self.state = TaintState()
        self._targets: Dict[Tuple[str, CallRec],
                            Tuple[Optional[str], Optional[str]]] = {}
        for edge in project.graph.edges:
            self._targets[(edge.caller, edge.call)] = (edge.target,
                                                       edge.target_class)

    # -- public API --------------------------------------------------------

    def run(self) -> TaintState:
        pending = deque(self.project.functions.values())
        queued = {f.qualname for f in pending}
        rounds = 0
        while pending and rounds < _MAX_ROUNDS:
            rounds += 1
            func = pending.popleft()
            queued.discard(func.qualname)
            for follower in self._transfer(func):
                if follower not in queued:
                    target = self.project.functions.get(follower)
                    if target is not None:
                        pending.append(target)
                        queued.add(follower)
        return self.state

    def value_tainted(self, func: FuncSummary, value: Value) -> bool:
        """Is this abstract value tainted under the current state?"""
        if self.spec.seed_value is not None \
                and self.spec.seed_value(self.project, func, value):
            return True
        if any(self.ref_tainted(func, ref) for ref in value.refs):
            return True
        return any(self.call_tainted(func, call) for call in value.calls)

    def ref_tainted(self, func: FuncSummary, ref: str) -> bool:
        """Is a dotted reference tainted (any prefix, globals, seeds)?"""
        if self.spec.seed_ref is not None:
            resolved = self._resolve_alias(func, ref)
            if self.spec.seed_ref(self.project, func, resolved):
                return True
        scopes = [self.state.tainted_in(func.qualname)]
        module_scope = f"{func.module}:<module>"
        if func.qualname != module_scope:
            scopes.append(self.state.tainted_in(module_scope))
        segments = ref.split(".")
        for scope in scopes:
            if not scope:
                continue
            for i in range(1, len(segments) + 1):
                if ".".join(segments[:i]) in scope:
                    return True
        return False

    def call_tainted(self, func: FuncSummary, call: CallRec) -> bool:
        """Is this call's result tainted?"""
        if self.spec.seed_call is not None \
                and self.spec.seed_call(self.project, func, call):
            return True
        target, target_class = self._resolve(func, call)
        if target is not None and target in self.state.returns:
            return True
        attr = call.attr
        if attr in self.spec.wrappers and self._any_operand_tainted(
                func, call):
            return True
        if attr in self.spec.transparent and self._any_operand_tainted(
                func, call):
            return True
        if attr in self.spec.transparent_methods and call.receiver \
                and self.ref_tainted(func, call.receiver):
            return True
        if self.spec.constructors_transparent and target_class is not None \
                and self._any_operand_tainted(func, call):
            return True
        return False

    # -- internals ----------------------------------------------------------

    def _resolve(self, func: FuncSummary,
                 call: CallRec) -> Tuple[Optional[str], Optional[str]]:
        key = (func.qualname, call)
        cached = self._targets.get(key)
        if cached is None:
            cached = self.project.resolve_call(func, call)
            self._targets[key] = cached
        return cached

    def _resolve_alias(self, func: FuncSummary, ref: str) -> str:
        """Expand the leading segment through the module's import table."""
        head, _, rest = ref.partition(".")
        target = self.project.resolve_module_symbol(func.module, head)
        if target is None:
            return ref
        return f"{target}.{rest}" if rest else target

    def _any_operand_tainted(self, func: FuncSummary, call: CallRec) -> bool:
        return (any(self.value_tainted(func, a) for a in call.args)
                or any(self.value_tainted(func, v) for _, v in call.kwargs))

    def _taint(self, qualname: str, path: str) -> bool:
        scope = self.state.tainted_in(qualname)
        if path in scope:
            return False
        scope.add(path)
        return True

    def _transfer(self, func: FuncSummary) -> Set[str]:
        """Apply the transfer function until the local facts stabilise.

        Returns the qualnames to (re-)enqueue: callees that gained a
        tainted parameter, and callers when the return became tainted.
        """
        followers: Set[str] = set()
        for _ in range(64):  # local fixpoint (ops are few per function)
            grew = False
            for op in func.ops:
                if op.kind == "assign":
                    if self.value_tainted(func, op.value):
                        for target in op.targets:
                            grew |= self._taint(func.qualname, target)
                elif op.kind == "loop":
                    seeded = self.spec.seed_loop is not None \
                        and self.spec.seed_loop(self.project, func, op)
                    if seeded:
                        for target in op.targets + op.accum_targets:
                            grew |= self._taint(func.qualname, target)
                    elif self.value_tainted(func, op.value):
                        for target in op.targets:
                            grew |= self._taint(func.qualname, target)
                elif op.kind == "return":
                    if func.qualname not in self.state.returns \
                            and self.value_tainted(func, op.value):
                        self.state.returns.add(func.qualname)
                        grew = True
                        followers.update(
                            e.caller for e in
                            self.project.graph.callers(func.qualname))
            if not grew:
                break
        followers.update(self._propagate_arguments(func))
        return followers

    def _propagate_arguments(self, func: FuncSummary) -> Set[str]:
        """Taint callee parameters fed by tainted arguments."""
        followers: Set[str] = set()
        for call in func.calls:
            target, _ = self._resolve(func, call)
            if target is None:
                continue
            callee = self.project.functions.get(target)
            if callee is None:
                continue
            params = list(callee.params)
            offset = 1 if callee.cls is not None and call.receiver \
                and params and params[0] == "self" else 0
            for i, arg in enumerate(call.args):
                slot = i + offset
                if slot < len(params) and self.value_tainted(func, arg):
                    if self._taint(target, params[slot]):
                        followers.add(target)
            for name, value in call.kwargs:
                if name in params and self.value_tainted(func, value):
                    if self._taint(target, name):
                        followers.add(target)
        return followers
