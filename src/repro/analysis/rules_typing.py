"""T-series rule: the locally-enforceable slice of the strict-typing gate.

CI runs ``mypy --strict`` and ``ruff`` over the package (see
``pyproject.toml``); this rule enforces the foundation those tools build
on — every *public* function in the numeric packages declares its
parameter and return types — from within reprolint, so the gate also runs
where mypy is not installed and on every ``python -m repro.analysis``
invocation.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from .reprolint import Finding, LintContext, Rule, register_rule


@register_rule
class MissingAnnotations(Rule):
    """T501: public functions declare parameter and return types."""

    id = "T501"
    name = "missing-annotations"
    summary = ("public functions/methods in the numeric packages must "
               "annotate every parameter and the return type")
    scopes = ("core", "runtime", "machine", "analysis", "errors", "io")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            missing: List[str] = []
            args = node.args
            positional = args.posonlyargs + args.args
            for index, arg in enumerate(positional):
                if index == 0 and arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(arg.arg)
            for arg in args.kwonlyargs:
                if arg.annotation is None:
                    missing.append(arg.arg)
            for arg in (args.vararg, args.kwarg):
                if arg is not None and arg.annotation is None:
                    missing.append("*" + arg.arg)
            if node.returns is None:
                missing.append("return")
            if missing:
                yield ctx.finding(
                    self, node,
                    f"public function `{node.name}` is missing annotations "
                    f"for: {', '.join(missing)}")
