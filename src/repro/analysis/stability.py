"""Clustering stability analysis via bootstrap resampling.

A clustering that changes wholesale when the data is subsampled is not
telling you about the data.  :func:`bootstrap_stability` quantifies this:
fit on the full set, refit on bootstrap subsamples, and score the pairwise
agreement (ARI) between each refit and the reference on the shared points.
High mean ARI = stable structure; near-zero = k-means is carving noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core._common import assign_chunked
from ..core.kmeans import HierarchicalKMeans
from ..core.metrics import adjusted_rand_index
from ..errors import ConfigurationError
from ..machine.machine import Machine


@dataclass(frozen=True)
class StabilityReport:
    """Bootstrap agreement scores for one (X, k) clustering."""

    k: int
    n_rounds: int
    scores: List[float]

    @property
    def mean(self) -> float:
        return float(np.mean(self.scores))

    @property
    def std(self) -> float:
        return float(np.std(self.scores))

    @property
    def stable(self) -> bool:
        """Rule of thumb: mean bootstrap ARI above 0.7."""
        return self.mean > 0.7


def bootstrap_stability(X: np.ndarray, k: int,
                        machine: Optional[Machine] = None,
                        n_rounds: int = 10, subsample: float = 0.8,
                        seed: int = 0, max_iter: int = 50
                        ) -> StabilityReport:
    """Score clustering stability under bootstrap subsampling.

    Parameters
    ----------
    n_rounds:
        Number of bootstrap refits.
    subsample:
        Fraction of samples drawn (without replacement) per round.

    Returns
    -------
    StabilityReport with one ARI per round: agreement between the
    reference clustering's assignment of the subsample and the refit
    clustering of that subsample.
    """
    X = np.asarray(X)
    if X.ndim != 2:
        raise ConfigurationError(f"X must be 2-D, got {X.shape}")
    if n_rounds < 1:
        raise ConfigurationError(f"n_rounds must be >= 1, got {n_rounds}")
    if not 0.0 < subsample <= 1.0:
        raise ConfigurationError(
            f"subsample must be in (0, 1], got {subsample}"
        )
    n = X.shape[0]
    m = max(k, int(round(subsample * n)))
    if m > n:
        raise ConfigurationError(
            f"subsample of {m} exceeds n={n} (k={k} floor)"
        )
    rng = np.random.default_rng(seed)

    reference = HierarchicalKMeans(k, machine=machine, init="kmeans++",
                                   seed=seed, max_iter=max_iter).fit(X)

    scores: List[float] = []
    for round_i in range(n_rounds):
        idx = rng.choice(n, size=m, replace=False)
        sub = X[idx]
        refit = HierarchicalKMeans(
            k, machine=machine, init="kmeans++",
            seed=seed + 1 + round_i, max_iter=max_iter,
        ).fit(sub)
        ref_labels = assign_chunked(sub, reference.centroids)
        scores.append(adjusted_rand_index(refit.assignments, ref_labels))
    return StabilityReport(k=k, n_rounds=n_rounds, scores=scores)
