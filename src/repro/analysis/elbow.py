"""Choosing k: inertia sweeps and knee detection.

The paper takes k as given (its subject is scale, not model selection),
but a library user's first question is "what k?".  This module provides
the standard answers:

* :func:`inertia_sweep` — run k-means across a k range, collect the final
  objective per k (optionally multi-restart),
* :func:`knee_point` — the Kneedle-style maximum-distance-to-chord rule on
  the inertia curve,
* :func:`silhouette_sweep` — quality-based selection for small/medium n.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.kmeans import HierarchicalKMeans
from ..core.metrics import silhouette_score
from ..errors import ConfigurationError
from ..machine.machine import Machine


@dataclass
class SweepResult:
    """Outcome of a model-selection sweep over k."""

    ks: List[int]
    scores: List[float]
    #: k suggested by the selection rule (knee / max silhouette).
    best_k: Optional[int] = None
    extras: Dict[int, object] = field(default_factory=dict)


def _validate_ks(ks: Sequence[int], n: int) -> List[int]:
    ks = [int(k) for k in ks]
    if not ks:
        raise ConfigurationError("ks must be non-empty")
    if sorted(ks) != ks or len(set(ks)) != len(ks):
        raise ConfigurationError("ks must be strictly increasing")
    if ks[0] < 1 or ks[-1] > n:
        raise ConfigurationError(f"ks must lie in [1, n={n}]")
    return ks


def inertia_sweep(X: np.ndarray, ks: Sequence[int],
                  machine: Optional[Machine] = None, n_init: int = 1,
                  seed: int = 0, max_iter: int = 60) -> SweepResult:
    """Final inertia per k; ``best_k`` is the knee of the curve."""
    X = np.asarray(X)
    ks = _validate_ks(ks, X.shape[0])
    scores: List[float] = []
    for k in ks:
        model = HierarchicalKMeans(k, machine=machine, init="kmeans++",
                                   n_init=n_init, seed=seed,
                                   max_iter=max_iter)
        scores.append(model.fit(X).inertia)
    best = knee_point(ks, scores) if len(ks) >= 3 else None
    return SweepResult(ks=ks, scores=scores, best_k=best)


def knee_point(ks: Sequence[int], inertias: Sequence[float]) -> int:
    """Elbow rule: the k whose point is farthest below the first-last chord.

    Works on any convex-ish decreasing curve; returns one of ``ks``.
    """
    if len(ks) != len(inertias) or len(ks) < 3:
        raise ConfigurationError(
            "need >= 3 aligned (k, inertia) points for a knee"
        )
    x = np.asarray(ks, dtype=np.float64)
    y = np.asarray(inertias, dtype=np.float64)
    # Normalise both axes so the chord geometry is scale-free.
    x_n = (x - x[0]) / max(x[-1] - x[0], 1e-30)
    y_n = (y - y[-1]) / max(y[0] - y[-1], 1e-30)
    # Distance below the (0,1)-(1,0) chord: 1 - x - y, maximised at the knee.
    gap = 1.0 - x_n - y_n
    return int(x[int(np.argmax(gap))])


def silhouette_sweep(X: np.ndarray, ks: Sequence[int],
                     machine: Optional[Machine] = None, seed: int = 0,
                     max_iter: int = 60,
                     sample_size: Optional[int] = 1000) -> SweepResult:
    """Mean silhouette per k; ``best_k`` maximises it.

    ks must start at 2 or above (silhouette is undefined for one cluster).
    """
    X = np.asarray(X)
    ks = _validate_ks(ks, X.shape[0])
    if ks[0] < 2:
        raise ConfigurationError("silhouette needs k >= 2")
    scores: List[float] = []
    for k in ks:
        model = HierarchicalKMeans(k, machine=machine, init="kmeans++",
                                   seed=seed, max_iter=max_iter)
        result = model.fit(X)
        scores.append(silhouette_score(X, result.assignments,
                                       sample_size=sample_size, seed=seed))
    best = ks[int(np.argmax(scores))]
    return SweepResult(ks=list(ks), scores=scores, best_k=best)
