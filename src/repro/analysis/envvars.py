"""Central registry of every ``REPRO_*`` environment variable.

Four PRs grew ad-hoc ``os.environ`` reads across :mod:`repro.runtime` and
:mod:`repro.core`, each re-implementing the same "empty or whitespace-only
counts as unset" convention.  This module is now the single source of truth:

* every knob the package reads from the environment is declared here as an
  :class:`EnvVar` and listed in :data:`REGISTRY`,
* the typed accessors (:func:`read_str`, :func:`read_int`,
  :func:`read_float`) implement the empty/whitespace-as-unset semantics
  exactly once,
* reprolint's E-series rules mechanically enforce that no other module
  touches ``os.environ`` directly and that every ``REPRO_*`` name appearing
  anywhere in the tree is declared here (see ``docs/invariants.md``),
* a test cross-checks that every registered variable is documented in
  ``docs/api.md``.

The module deliberately imports nothing heavier than :mod:`repro.errors`
so that low-level runtime modules can depend on it without cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError

__all__ = [
    "ENV_CHAOS",
    "ENV_CHECKPOINT_DIR",
    "ENV_DEADLINE",
    "ENV_ENGINE",
    "ENV_HEARTBEAT",
    "ENV_INTEGRITY",
    "ENV_KERNEL",
    "ENV_LINT_CACHE",
    "ENV_REDUCE",
    "ENV_TASK_RETRIES",
    "ENV_TASK_TIMEOUT",
    "ENV_WORKERS",
    "EnvVar",
    "REGISTRY",
    "read_float",
    "read_int",
    "read_raw",
    "read_str",
]


@dataclass(frozen=True)
class EnvVar:
    """Declaration of one environment knob.

    Parameters
    ----------
    name:
        The variable's name in the process environment (``REPRO_*``).
    kind:
        The parsed type: ``"str"``, ``"int"``, or ``"float"``.  Used by the
        docs table and to pick the right accessor in reviews; the accessors
        themselves are explicit (:func:`read_int` on a ``"str"`` variable is
        a bug the type checker cannot see, so keep them matched).
    description:
        One-line summary for the registry table in ``docs/api.md``.
    consumer:
        The module that consults the variable (dotted path).
    """

    name: str
    kind: str
    description: str
    consumer: str

    def __post_init__(self) -> None:
        if not self.name.startswith("REPRO_"):
            raise ConfigurationError(
                f"environment knobs must be namespaced REPRO_*, "
                f"got {self.name!r}"
            )
        if self.kind not in ("str", "int", "float"):
            raise ConfigurationError(
                f"EnvVar kind must be str/int/float, got {self.kind!r}"
            )


ENV_ENGINE = EnvVar(
    name="REPRO_ENGINE",
    kind="str",
    description='Default execution engine ("serial", "thread", or '
                '"process") when no explicit engine= is given.',
    consumer="repro.runtime.engine",
)
ENV_WORKERS = EnvVar(
    name="REPRO_WORKERS",
    kind="int",
    description="Default worker count; > 1 implies the thread engine "
                "when no engine is named.",
    consumer="repro.runtime.engine",
)
ENV_HEARTBEAT = EnvVar(
    name="REPRO_HEARTBEAT",
    kind="float",
    description="Process-engine heartbeat timeout (seconds) before a "
                "silent worker is presumed wedged and killed.",
    consumer="repro.runtime.process_engine",
)
ENV_TASK_RETRIES = EnvVar(
    name="REPRO_TASK_RETRIES",
    kind="int",
    description="Default TaskPolicy.max_retries for host block tasks.",
    consumer="repro.runtime.engine",
)
ENV_TASK_TIMEOUT = EnvVar(
    name="REPRO_TASK_TIMEOUT",
    kind="float",
    description="Default TaskPolicy.timeout_s (seconds) for host block "
                "tasks.",
    consumer="repro.runtime.engine",
)
ENV_DEADLINE = EnvVar(
    name="REPRO_DEADLINE",
    kind="float",
    description="Default wall-clock deadline (seconds) when no explicit "
                "deadline_s= is given.",
    consumer="repro.runtime.supervisor",
)
ENV_CHAOS = EnvVar(
    name="REPRO_CHAOS",
    kind="str",
    description="Host-chaos plan (compact grammar or @file) attached to "
                "engines built by resolve_engine.",
    consumer="repro.runtime.chaos",
)
ENV_REDUCE = EnvVar(
    name="REPRO_REDUCE",
    kind="str",
    description='Default reduction topology ("serial" or "tree") when no '
                "explicit reduce= is given.",
    consumer="repro.runtime.reduce",
)
ENV_KERNEL = EnvVar(
    name="REPRO_KERNEL",
    kind="str",
    description='Default compute kernel ("naive", "gemm", or "pruned") '
                "when no explicit kernel= is given.",
    consumer="repro.core.kernels",
)
ENV_INTEGRITY = EnvVar(
    name="REPRO_INTEGRITY",
    kind="str",
    description='Default integrity mode ("off", "verify", or "repair") '
                "for engines built by resolve_engine when no explicit "
                "integrity= is given.",
    consumer="repro.runtime.integrity",
)
ENV_LINT_CACHE = EnvVar(
    name="REPRO_LINT_CACHE",
    kind="str",
    description="Directory for reprolint's incremental cache (per-file "
                "summaries keyed by content hash); unset disables caching.",
    consumer="repro.analysis.cache",
)
ENV_CHECKPOINT_DIR = EnvVar(
    name="REPRO_CHECKPOINT_DIR",
    kind="str",
    description="Durable checkpoint directory when no explicit "
                "checkpoint_dir= is given.",
    consumer="repro.core.kmeans",
)

#: Every environment variable the package reads, keyed by name.  reprolint
#: rule E402 fails the build on any ``REPRO_*`` literal not listed here.
REGISTRY: Dict[str, EnvVar] = {
    var.name: var
    for var in (
        ENV_ENGINE,
        ENV_WORKERS,
        ENV_HEARTBEAT,
        ENV_TASK_RETRIES,
        ENV_TASK_TIMEOUT,
        ENV_DEADLINE,
        ENV_CHAOS,
        ENV_INTEGRITY,
        ENV_CHECKPOINT_DIR,
        ENV_KERNEL,
        ENV_LINT_CACHE,
        ENV_REDUCE,
    )
}


def _require_registered(var: EnvVar) -> None:
    if REGISTRY.get(var.name) is not var:
        raise ConfigurationError(
            f"environment variable {var.name!r} is not declared in "
            f"repro.analysis.envvars.REGISTRY"
        )


def read_raw(var: EnvVar) -> Optional[str]:
    """The variable's stripped value, or None when unset.

    Empty and whitespace-only values count as unset: CI matrices export
    empty strings for the legs that do not use a knob, and those must
    behave exactly like an absent variable.
    """
    _require_registered(var)
    value = os.environ.get(var.name, "").strip()
    return value or None


def read_str(var: EnvVar) -> Optional[str]:
    """String-typed read (alias of :func:`read_raw`, named for call sites)."""
    return read_raw(var)


def read_int(var: EnvVar) -> Optional[int]:
    """Integer-typed read; raises :class:`ConfigurationError` on junk."""
    raw = read_raw(var)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{var.name} must be an integer, got {raw!r}"
        ) from None


def read_float(var: EnvVar) -> Optional[float]:
    """Float-typed read; raises :class:`ConfigurationError` on junk."""
    raw = read_raw(var)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{var.name} must be a number of seconds, got {raw!r}"
        ) from None


def registry_rows() -> Tuple[Tuple[str, str, str, str], ...]:
    """(name, kind, consumer, description) rows in name order (for docs)."""
    return tuple(
        (v.name, v.kind, v.consumer, v.description)
        for _, v in sorted(REGISTRY.items())
    )
