"""C-series rules: LDM feasibility of statically-known level configs.

The paper's §III constraint table (C1/C2/C3 and their primed variants,
implemented in :mod:`repro.core.constraints`) decides whether a partition
plan *can exist* on the SW26010.  Experiment, benchmark, and example
scripts construct plans from literal shapes; when those literals provably
violate a machine-independent constraint the script is dead on arrival —
a fact a reviewer can know without running it.  These rules partially
evaluate literal ``(k, d, mgroup, m'group, dtype)`` call sites against the
default SW26010 budget (64 KiB LDM per CPE, 64 CPEs per CG) and flag
provable infeasibility.  Anything not statically resolvable is left to the
runtime planner — the rules never guess.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from ..machine.specs import CGSpec
from .reprolint import Finding, LintContext, Rule, dotted_name, register_rule

#: SW26010 defaults used for partial evaluation (kept in lock-step with
#: repro.machine.specs — a unit test asserts the equality).
_CG = CGSpec()
LDM_BYTES_PER_CPE = _CG.cpe.ldm_bytes
CPES_PER_CG = _CG.n_cpes

#: Planner entry points whose positional tail is ``(n, k, d)`` after the
#: machine argument.
_PLANNERS = ("plan_level1", "plan_level2", "plan_level3")


def _module_int_constants(tree: ast.Module) -> Dict[str, int]:
    """Module-level ``NAME = <int literal>`` bindings (incl. tuple form)."""
    consts: Dict[str, int] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) \
                    and isinstance(node.value, ast.Constant) \
                    and isinstance(node.value.value, int):
                consts[target.id] = node.value.value
            elif isinstance(target, ast.Tuple) \
                    and isinstance(node.value, ast.Tuple) \
                    and len(target.elts) == len(node.value.elts):
                for name_node, val in zip(target.elts, node.value.elts):
                    if isinstance(name_node, ast.Name) \
                            and isinstance(val, ast.Constant) \
                            and isinstance(val.value, int):
                        consts[name_node.id] = val.value
    return consts


class _Evaluator:
    """Resolve an expression to an int where literals allow, else None."""

    def __init__(self, consts: Dict[str, int]) -> None:
        self._consts = consts

    def resolve(self, node: ast.AST) -> Optional[int]:
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return node.value
        if isinstance(node, ast.Name):
            return self._consts.get(node.id)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self.resolve(node.operand)
            return None if inner is None else -inner
        if isinstance(node, ast.BinOp):
            left = self.resolve(node.left)
            right = self.resolve(node.right)
            if left is None or right is None:
                return None
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv) and right != 0:
                return left // right
            if isinstance(node.op, ast.Pow) and 0 <= right <= 64:
                return left ** right
        return None


def _dtype_itemsize(node: Optional[ast.AST]) -> Optional[int]:
    """Itemsize of a literal dtype reference (None = default float64)."""
    if node is None:
        return 8
    name = dotted_name(node)
    tail = name.rsplit(".", 1)[-1] if name else ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        tail = node.value
    sizes = {"float64": 8, "float32": 4, "float16": 2, "float": 8}
    return sizes.get(tail)


@register_rule
class LDMInfeasibleConfig(Rule):
    """C301: literal shapes must satisfy the paper's LDM constraint table."""

    id = "C301"
    name = "ldm-infeasible-config"
    summary = ("plan_level{1,2,3} calls with literal (k, d) shapes must "
               "satisfy the §III LDM constraints for the SW26010")
    scopes = ("experiments", "benchmarks", "examples")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        evaluator = _Evaluator(_module_int_constants(ctx.tree))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = dotted_name(node.func).rsplit(".", 1)[-1]
            if func not in _PLANNERS or len(node.args) < 4:
                continue
            kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            if self._is_true(kwargs.get("streaming")):
                continue  # streaming plans stage slices; residency is lifted
            k = evaluator.resolve(node.args[2])
            d = evaluator.resolve(node.args[3])
            itemsize = _dtype_itemsize(kwargs.get("dtype"))
            if k is None or d is None or k < 1 or d < 1 or itemsize is None:
                continue
            ldm = LDM_BYTES_PER_CPE // itemsize
            yield from self._check_level(ctx, node, func, k, d, ldm,
                                         kwargs, evaluator)

    @staticmethod
    def _is_true(node: Optional[ast.AST]) -> bool:
        return isinstance(node, ast.Constant) and node.value is True

    def _check_level(self, ctx: LintContext, node: ast.Call, func: str,
                     k: int, d: int, ldm: int, kwargs: Dict[str, ast.AST],
                     evaluator: _Evaluator) -> Iterator[Finding]:
        buffers = d * (1 + 2 * k) + k  # the C1 left-hand side
        if func == "plan_level1":
            if buffers > ldm:
                yield ctx.finding(
                    self, node,
                    f"Level 1 C1 violated: d(1+2k)+k = {buffers} > "
                    f"LDM = {ldm} elements for k={k}, d={d}; use Level 2/3 "
                    f"or streaming")
        elif func == "plan_level2":
            mgroup = evaluator.resolve(kwargs["mgroup"]) \
                if "mgroup" in kwargs else None
            group = mgroup if mgroup is not None else CPES_PER_CG
            if 1 <= group <= CPES_PER_CG and buffers > group * ldm:
                bound = "mgroup" if mgroup is not None else \
                    f"even mgroup={CPES_PER_CG}"
                yield ctx.finding(
                    self, node,
                    f"Level 2 C1' violated: d(1+2k)+k = {buffers} > "
                    f"{group}*LDM = {group * ldm} elements with {bound} "
                    f"(k={k}, d={d}); use Level 3 or streaming")
            if 3 * d + 1 > ldm:
                yield ctx.finding(
                    self, node,
                    f"Level 2 C2' violated: 3d+1 = {3 * d + 1} > LDM = "
                    f"{ldm} elements (d={d}); Level 2 keeps whole samples "
                    f"per CPE — use Level 3's dimension partition")
        elif func == "plan_level3":
            if 3 * d + 1 > CPES_PER_CG * ldm:
                yield ctx.finding(
                    self, node,
                    f"Level 3 C2'' violated: 3d+1 = {3 * d + 1} > 64*LDM "
                    f"= {CPES_PER_CG * ldm} elements (d={d}); no m'group "
                    f"can fix a per-CG dimension overflow")
            mprime = evaluator.resolve(kwargs["mprime_group"]) \
                if "mprime_group" in kwargs else None
            if mprime is not None and mprime >= 1 \
                    and buffers > CPES_PER_CG * mprime * ldm:
                yield ctx.finding(
                    self, node,
                    f"Level 3 C1'' violated: d(1+2k)+k = {buffers} > "
                    f"64*m'group*LDM = {CPES_PER_CG * mprime * ldm} "
                    f"elements with m'group={mprime} (k={k}, d={d}); "
                    f"raise m'group or enable streaming")


@register_rule
class PartitionParameterBounds(Rule):
    """C302: literal group sizes must lie in the machine's bounds."""

    id = "C302"
    name = "partition-parameter-bounds"
    summary = ("literal mgroup must be in [1, 64] and literal m'group "
               ">= 1 wherever a plan or executor is configured")
    scopes = ("experiments", "benchmarks", "examples", "core")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        evaluator = _Evaluator(_module_int_constants(ctx.tree))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "mgroup":
                    value = evaluator.resolve(kw.value)
                    if value is not None \
                            and not 1 <= value <= CPES_PER_CG:
                        yield ctx.finding(
                            self, kw.value,
                            f"mgroup={value} is outside [1, {CPES_PER_CG}] "
                            f"(a CG has {CPES_PER_CG} CPEs)")
                elif kw.arg == "mprime_group":
                    value = evaluator.resolve(kw.value)
                    if value is not None and value < 1:
                        yield ctx.finding(
                            self, kw.value,
                            f"mprime_group={value} must be >= 1")
