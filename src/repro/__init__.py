"""repro — reproduction of *Large-Scale Hierarchical k-means for
Heterogeneous Many-Core Supercomputers* (Li et al., SC 2018).

The package implements the paper's three-level (nkd) partitioned k-means on
a simulated Sunway TaihuLight: a machine model with the published SW26010
parameters, a simulated DMA/register-communication/MPI runtime that charges
modelled time while executing the real arithmetic, the Level 1/2/3
algorithms, an analytic performance model for paper-scale predictions, and
the experiment harness regenerating every table and figure.

Quickstart
----------
>>> from repro import HierarchicalKMeans, sunway_machine
>>> from repro.data import gaussian_blobs
>>> X, _ = gaussian_blobs(n=5000, k=16, d=32, seed=1)
>>> model = HierarchicalKMeans(n_clusters=16, machine=sunway_machine(1), seed=1)
>>> result = model.fit(X)
>>> print(result.summary())          # doctest: +SKIP
"""

from .core import (
    KERNELS,
    CheckpointConfig,
    GemmKernel,
    HierarchicalKMeans,
    KernelBackend,
    KMeansResult,
    Level1Executor,
    Level2Executor,
    Level3Executor,
    NaiveKernel,
    RecoveryPolicy,
    init_centroids,
    lloyd,
    resolve_kernel,
    resolve_recovery,
    plan_level1,
    plan_level2,
    plan_level3,
    run_level1,
    run_level2,
    run_level3,
    select_level,
)
from .errors import (
    CGFailedError,
    ChaosError,
    CollectiveTimeoutError,
    CommunicatorError,
    ConfigurationError,
    ConvergenceWarning,
    DataShapeError,
    DeadlineExceededError,
    FaultError,
    HostFaultError,
    LDMOverflowError,
    NumericalFaultError,
    PartitionError,
    ReproError,
    TaskTimeoutError,
    TransientDMAError,
)
from .machine import (
    DegradedMachine,
    Machine,
    machine_from_preset,
    sunway_machine,
    toy_machine,
)
from .runtime import (
    ChaosPlan,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    HostEvent,
    RunSupervisor,
    parse_chaos_plan,
    parse_fault_plan,
)

__version__ = "1.3.0"

__all__ = [
    "CGFailedError",
    "ChaosError",
    "ChaosPlan",
    "CheckpointConfig",
    "CollectiveTimeoutError",
    "CommunicatorError",
    "ConfigurationError",
    "ConvergenceWarning",
    "DataShapeError",
    "DeadlineExceededError",
    "DegradedMachine",
    "FaultError",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "GemmKernel",
    "HostEvent",
    "HostFaultError",
    "HierarchicalKMeans",
    "KERNELS",
    "KMeansResult",
    "KernelBackend",
    "LDMOverflowError",
    "Level1Executor",
    "Level2Executor",
    "Level3Executor",
    "Machine",
    "NaiveKernel",
    "NumericalFaultError",
    "PartitionError",
    "RecoveryPolicy",
    "ReproError",
    "RunSupervisor",
    "TaskTimeoutError",
    "TransientDMAError",
    "__version__",
    "init_centroids",
    "lloyd",
    "machine_from_preset",
    "parse_chaos_plan",
    "parse_fault_plan",
    "plan_level1",
    "plan_level2",
    "plan_level3",
    "resolve_kernel",
    "resolve_recovery",
    "run_level1",
    "run_level2",
    "run_level3",
    "select_level",
    "sunway_machine",
    "toy_machine",
]
