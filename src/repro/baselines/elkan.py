"""Elkan's exact accelerated k-means [Elkan, ICML 2003].

The most aggressive of the classic triangle-inequality accelerations: one
upper bound per sample plus a **full n x k matrix of lower bounds**, pruned
with inter-centroid distances.  More memory than Hamerly/Yinyang (which is
exactly why the paper's LDM-constrained setting cites the cheaper bounds),
but it skips the most distance work of the three — the ablation bench shows
the memory/work trade-off directly.

Like the other baselines, the result is the exact Lloyd trajectory.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core._common import (
    accumulate,
    inertia,
    max_centroid_shift,
    squared_distances,
    update_centroids,
    validate_data,
)
from ..core.bounds import apply_elkan_drift, centroid_drift, centroid_separation
from ..core.result import IterationStats, KMeansResult
from ..errors import ConfigurationError
from .hamerly import BoundStats


def elkan(X: np.ndarray, centroids: np.ndarray, max_iter: int = 100,
          tol: float = 0.0) -> Tuple[KMeansResult, BoundStats]:
    """Run Elkan's algorithm; returns (result, work statistics)."""
    if max_iter < 1:
        raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
    if tol < 0:
        raise ConfigurationError(f"tol must be >= 0, got {tol}")
    X, C = validate_data(X, np.array(centroids, copy=True))
    n, d = X.shape
    k = C.shape[0]
    stats = BoundStats()

    # Exact initial bounds.
    dist = np.sqrt(np.maximum(squared_distances(X, C), 0.0))
    stats.distances_computed += n * k
    assignments = np.argmin(dist, axis=1)
    ub = dist[np.arange(n), assignments]
    lb = dist.copy()  # (n, k) lower bounds, exact at start

    history: List[IterationStats] = []
    converged = False
    it = 0
    prev_assignments = assignments.copy()
    for it in range(1, max_iter + 1):
        stats.distances_naive += n * k
        # Inter-centroid half-distances.
        cc, s = centroid_separation(C)

        # Step 2-3: global prune, then per-centroid checks.
        active = np.flatnonzero(ub > s[assignments])
        stats.skipped_per_iteration.append(int(n - active.size))
        ub_tight = np.zeros(n, dtype=bool)
        for i in active:
            a_i = int(assignments[i])
            for j in range(k):
                if j == a_i:
                    continue
                # Elkan's conditions 3(a)-(b).
                if ub[i] <= lb[i, j] or ub[i] <= 0.5 * cc[a_i, j]:
                    continue
                if not ub_tight[i]:
                    diff = X[i] - C[a_i]
                    ub[i] = np.sqrt(max(float(diff @ diff), 0.0))
                    lb[i, a_i] = ub[i]
                    ub_tight[i] = True
                    stats.distances_computed += 1
                    if ub[i] <= lb[i, j] or ub[i] <= 0.5 * cc[a_i, j]:
                        continue
                diff = X[i] - C[j]
                dij = np.sqrt(max(float(diff @ diff), 0.0))
                lb[i, j] = dij
                stats.distances_computed += 1
                if dij < ub[i]:
                    assignments[i] = j
                    a_i = j
                    ub[i] = dij

        sums, counts = accumulate(X, assignments, k)
        new_C = update_centroids(sums, counts, C)

        # Step 5-6: drift every bound by its centroid's movement.
        lb = apply_elkan_drift(ub, lb, centroid_drift(C, new_C), assignments)

        shift = max_centroid_shift(C, new_C)
        history.append(IterationStats(
            iteration=it,
            inertia=inertia(X, C, assignments),
            centroid_shift=shift,
            n_reassigned=int((assignments != prev_assignments).sum()),
        ))
        prev_assignments = assignments.copy()
        C = new_C
        if shift <= tol:
            converged = True
            break

    result = KMeansResult(
        centroids=C,
        assignments=assignments,
        inertia=inertia(X, C, assignments),
        n_iter=it,
        converged=converged,
        history=history,
        ledger=None,
        level=0,
    )
    return result, stats
