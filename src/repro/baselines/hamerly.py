"""Hamerly's exact accelerated k-means [Hamerly, SDM 2010].

One of the bound-based Lloyd accelerations the paper cites as related work
(its notation follows Hamerly's).  The algorithm maintains, per sample,

* an **upper bound** ``ub`` on the distance to its assigned centroid, and
* a **lower bound** ``lb`` on the distance to its *second*-closest centroid,

updated each iteration by the centroids' drift.  A sample whose
``ub <= max(s[a], lb)`` — where ``s[j]`` is half the distance from centroid
j to its nearest other centroid — provably cannot change assignment, so its
k distance computations are skipped.  The trajectory is *identical* to
Lloyd's (this is an exact method, not an approximation), which the tests
assert; the point of having it in the repo is (a) an honest single-node
baseline for the simulator's speedups, and (b) the bookkeeping statistics
showing how much work bounds save on real data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core._common import (
    accumulate,
    inertia,
    max_centroid_shift,
    squared_distances,
    update_centroids,
    validate_data,
)
from ..core.bounds import (
    apply_hamerly_drift,
    centroid_drift,
    centroid_separation,
)
from ..core.result import IterationStats, KMeansResult
from ..errors import ConfigurationError


@dataclass
class BoundStats:
    """Work accounting for a bound-based run."""

    #: Distance evaluations actually performed (point-centroid pairs).
    distances_computed: int = 0
    #: Distance evaluations a naive Lloyd would have performed.
    distances_naive: int = 0
    #: Samples skipped entirely by the global bound test, per iteration.
    skipped_per_iteration: List[int] = field(default_factory=list)

    @property
    def fraction_skipped(self) -> float:
        if self.distances_naive == 0:
            return 0.0
        return 1.0 - self.distances_computed / self.distances_naive


def hamerly(X: np.ndarray, centroids: np.ndarray, max_iter: int = 100,
            tol: float = 0.0) -> tuple[KMeansResult, BoundStats]:
    """Run Hamerly's algorithm; returns (result, work statistics).

    The result is bit-for-bit the Lloyd trajectory (same assignment rule,
    same empty-cluster rule).
    """
    if max_iter < 1:
        raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
    if tol < 0:
        raise ConfigurationError(f"tol must be >= 0, got {tol}")
    X, C = validate_data(X, np.array(centroids, copy=True))
    n, d = X.shape
    k = C.shape[0]
    stats = BoundStats()

    # Initial full assignment establishes the bounds.
    d2 = squared_distances(X, C)
    stats.distances_computed += n * k
    dist = np.sqrt(np.maximum(d2, 0.0))
    assignments = np.argmin(dist, axis=1)
    order = np.argsort(dist, axis=1)
    ub = dist[np.arange(n), order[:, 0]]
    lb = dist[np.arange(n), order[:, 1]] if k > 1 else np.full(n, np.inf)

    history: List[IterationStats] = []
    converged = False
    it = 0
    prev_assignments = assignments.copy()
    for it in range(1, max_iter + 1):
        stats.distances_naive += n * k
        # Half-distance to the nearest other centroid, per centroid.
        _, s = centroid_separation(C)

        threshold = np.maximum(s[assignments], lb)
        candidates = np.flatnonzero(ub > threshold)
        if candidates.size:
            # First tighten the upper bound with one exact distance.
            exact = np.sqrt(np.maximum(np.einsum(
                "nd,nd->n",
                X[candidates] - C[assignments[candidates]],
                X[candidates] - C[assignments[candidates]]), 0.0))
            stats.distances_computed += candidates.size
            ub[candidates] = exact
            still = candidates[ub[candidates] > threshold[candidates]]
            if still.size:
                d2s = squared_distances(X[still], C)
                stats.distances_computed += still.size * k
                ds = np.sqrt(np.maximum(d2s, 0.0))
                new_order = np.argsort(ds, axis=1)
                assignments[still] = new_order[:, 0]
                ub[still] = ds[np.arange(still.size), new_order[:, 0]]
                lb[still] = (ds[np.arange(still.size), new_order[:, 1]]
                             if k > 1 else np.inf)
        stats.skipped_per_iteration.append(int(n - candidates.size))

        sums, counts = accumulate(X, assignments, k)
        new_C = update_centroids(sums, counts, C)

        # Drift the bounds by centroid movement (triangle inequality).
        apply_hamerly_drift(ub, lb, centroid_drift(C, new_C), assignments)

        shift = max_centroid_shift(C, new_C)
        history.append(IterationStats(
            iteration=it,
            inertia=inertia(X, C, assignments),
            centroid_shift=shift,
            n_reassigned=int((assignments != prev_assignments).sum()),
        ))
        prev_assignments = assignments.copy()
        C = new_C
        if shift <= tol:
            converged = True
            break

    result = KMeansResult(
        centroids=C,
        assignments=assignments,
        inertia=inertia(X, C, assignments),
        n_iter=it,
        converged=converged,
        history=history,
        ledger=None,
        level=0,
    )
    return result, stats
