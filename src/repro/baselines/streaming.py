"""Divide-and-conquer streaming k-means [Guha et al., 2003].

The algorithm Bender et al.'s two-level-memory design adapts ("adapted
originally from [16]" in the paper's related work): partition the dataflow
into memory-sized chunks, cluster each chunk, then cluster the weighted
chunk centroids into the final k.  One pass over the data, O(chunk) working
memory — the software answer to the same scratchpad constraint the paper
attacks with hardware hierarchy.

This is an approximation (constant-factor guarantees in theory); its
contract here is quality-relative-to-Lloyd, asserted by the tests, plus a
faithful account of its working-set advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core._common import (
    accumulate,
    assign_chunked,
    inertia,
    validate_data,
)
from ..core.init import init_centroids
from ..core.lloyd import lloyd
from ..core.result import KMeansResult
from ..errors import ConfigurationError


@dataclass(frozen=True)
class StreamingStats:
    """Working-set accounting for a streaming run."""

    n_chunks: int
    chunk_size: int
    #: Largest number of samples resident at any point.
    peak_resident_samples: int
    #: Intermediate (weighted) centroids produced by the first phase.
    intermediate_centroids: int


def _weighted_lloyd(points: np.ndarray, weights: np.ndarray, k: int,
                    max_iter: int, seed: int) -> np.ndarray:
    """Lloyd on weighted points (used for the second-phase reduction)."""
    C = init_centroids(points, k, method="kmeans++", seed=seed)
    for _ in range(max_iter):
        a = assign_chunked(points, C)
        new_C = C.copy()
        for j in range(k):
            mask = a == j
            w = weights[mask]
            if w.sum() > 0:
                new_C[j] = (points[mask] * w[:, None]).sum(0) / w.sum()
        if np.allclose(new_C, C, rtol=0, atol=1e-12):
            C = new_C
            break
        C = new_C
    return C


def streaming_kmeans(X: np.ndarray, k: int, chunk_size: int = 1000,
                     intermediate_factor: int = 4, max_iter: int = 30,
                     seed: int = 0) -> tuple[KMeansResult, StreamingStats]:
    """One-pass divide-and-conquer k-means.

    Parameters
    ----------
    X:
        (n, d) samples, conceptually streamed chunk by chunk.
    k:
        Final cluster count.
    chunk_size:
        Samples resident at once (the "memory" of the streaming model).
    intermediate_factor:
        Each chunk is summarised by ``intermediate_factor * k`` weighted
        centroids before the final reduction.

    Returns
    -------
    (result, stats): result.assignments cover the full X against the final
    centroids; stats records the working-set shape.
    """
    X, _ = validate_data(X, np.zeros((1, np.asarray(X).shape[1])))
    n, d = X.shape
    if not 1 <= k <= n:
        raise ConfigurationError(f"k must be in [1, n={n}], got {k}")
    if chunk_size < k:
        raise ConfigurationError(
            f"chunk_size must be >= k ({k}), got {chunk_size}"
        )
    if intermediate_factor < 1:
        raise ConfigurationError(
            f"intermediate_factor must be >= 1, got {intermediate_factor}"
        )

    per_chunk_k = min(intermediate_factor * k, chunk_size)
    reps: List[np.ndarray] = []
    rep_weights: List[np.ndarray] = []
    n_chunks = 0
    for lo in range(0, n, chunk_size):
        chunk = X[lo:lo + chunk_size]
        n_chunks += 1
        kk = min(per_chunk_k, chunk.shape[0])
        C0 = init_centroids(chunk, kk, method="kmeans++",
                            seed=seed + n_chunks)
        local = lloyd(chunk, C0, max_iter=max_iter)
        _, counts = accumulate(chunk, local.assignments, kk)
        keep = counts > 0
        reps.append(local.centroids[keep])
        rep_weights.append(counts[keep].astype(np.float64))

    points = np.vstack(reps)
    weights = np.concatenate(rep_weights)
    if points.shape[0] < k:
        raise ConfigurationError(
            f"only {points.shape[0]} intermediate centroids for k={k}; "
            f"raise intermediate_factor or chunk_size"
        )
    final_C = _weighted_lloyd(points, weights, k, max_iter, seed)

    assignments = assign_chunked(X, final_C)
    result = KMeansResult(
        centroids=final_C,
        assignments=assignments,
        inertia=inertia(X, final_C, assignments),
        n_iter=n_chunks,
        converged=True,
        history=[],
        ledger=None,
        level=0,
    )
    stats = StreamingStats(
        n_chunks=n_chunks,
        chunk_size=chunk_size,
        peak_resident_samples=min(chunk_size, n) + points.shape[0],
        intermediate_centroids=int(points.shape[0]),
    )
    return result, stats
