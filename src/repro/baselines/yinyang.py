"""Yinyang k-means [Ding et al., ICML 2015] — exact group-filtered Lloyd.

This is the algorithm behind Table III's multi-core comparator row
("Yinyang k-means ... a drop-in replacement of the classic k-means with
consistent speedup"), implemented here so the comparator is a real,
runnable baseline rather than a citation.

Yinyang generalises Hamerly's single lower bound to one lower bound per
*centroid group*: the k centroids are clustered into ``t ~ k/10`` groups
once at start-up; each sample keeps an upper bound to its assigned centroid
and a lower bound per group.  Three filters prune work each iteration:

1. **global**: ``ub <= min_g lb[g]``  -> nothing can change,
2. **group**:  groups with ``lb[g] >= ub`` need no inspection,
3. **local**:  within a surviving group, centroids are checked against the
   running best.

Like Hamerly's, the method is exact: the trajectory equals Lloyd's, which
the tests assert.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core._common import (
    accumulate,
    inertia,
    max_centroid_shift,
    squared_distances,
    update_centroids,
    validate_data,
)
from ..core.bounds import apply_yinyang_drift, centroid_drift, group_members_of
from ..core.result import IterationStats, KMeansResult
from ..errors import ConfigurationError
from .hamerly import BoundStats


def _group_centroids(C: np.ndarray, t: int, seed: int = 0) -> np.ndarray:
    """Cluster the centroids into t groups (a few Lloyd steps suffice)."""
    k = C.shape[0]
    rng = np.random.default_rng(seed)
    idx = rng.choice(k, size=t, replace=False)
    G = np.array(C[np.sort(idx)])
    groups = np.zeros(k, dtype=np.int64)
    for _ in range(5):
        groups = np.argmin(squared_distances(C, G), axis=1)
        for g in range(t):
            members = C[groups == g]
            if members.shape[0]:
                G[g] = members.mean(axis=0)
    # Guarantee no empty group label gaps matter: relabel to 0..t'-1.
    used, groups = np.unique(groups, return_inverse=True)
    return groups.astype(np.int64)


def yinyang(X: np.ndarray, centroids: np.ndarray, max_iter: int = 100,
            tol: float = 0.0, n_groups: int | None = None,
            seed: int = 0) -> Tuple[KMeansResult, BoundStats]:
    """Run Yinyang k-means; returns (result, work statistics).

    Parameters
    ----------
    n_groups:
        Number of centroid groups t; defaults to ``max(1, k // 10)`` as in
        the paper.
    """
    if max_iter < 1:
        raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
    if tol < 0:
        raise ConfigurationError(f"tol must be >= 0, got {tol}")
    X, C = validate_data(X, np.array(centroids, copy=True))
    n, d = X.shape
    k = C.shape[0]
    if n_groups is None:
        n_groups = max(1, k // 10)
    if not 1 <= n_groups <= k:
        raise ConfigurationError(
            f"n_groups must be in [1, k={k}], got {n_groups}"
        )
    stats = BoundStats()

    groups = _group_centroids(C, n_groups, seed=seed) if k > 1 else \
        np.zeros(1, dtype=np.int64)
    t = int(groups.max()) + 1
    group_members: List[np.ndarray] = group_members_of(groups, t)

    # Initial full assignment; exact bounds.
    dist = np.sqrt(np.maximum(squared_distances(X, C), 0.0))
    stats.distances_computed += n * k
    assignments = np.argmin(dist, axis=1)
    ub = dist[np.arange(n), assignments]
    lb = np.full((n, t), np.inf)
    for g in range(t):
        block = dist[:, group_members[g]].copy()
        own = groups[assignments] == g
        if own.any():
            # Exclude the assigned centroid from its own group's bound.
            rows = np.flatnonzero(own)
            cols = np.searchsorted(group_members[g], assignments[rows])
            block[rows, cols] = np.inf
        lb[:, g] = block.min(axis=1)

    history: List[IterationStats] = []
    converged = False
    it = 0
    prev_assignments = assignments.copy()
    for it in range(1, max_iter + 1):
        stats.distances_naive += n * k

        # --- filtering pass (bounds refer to the current C) ---
        global_lb = lb.min(axis=1)
        candidates = np.flatnonzero(ub > global_lb)
        stats.skipped_per_iteration.append(int(n - candidates.size))
        for i in candidates:
            # Tighten the upper bound with one exact distance.
            old_j = int(assignments[i])
            diff = X[i] - C[old_j]
            ub[i] = np.sqrt(max(float(diff @ diff), 0.0))
            stats.distances_computed += 1
            if ub[i] <= global_lb[i]:
                continue
            best_j = old_j
            best_d = float(ub[i])
            old_exact = float(ub[i])
            for g in range(t):
                if lb[i, g] >= best_d:
                    continue  # group filter
                members = group_members[g]
                dg = np.sqrt(np.maximum(
                    squared_distances(X[i:i + 1], C[members])[0], 0.0))
                stats.distances_computed += members.size
                # Recompute this group's lower bound (second-best in group
                # if it will own the assignment, else best).
                order = np.argsort(dg)
                if dg[order[0]] < best_d:
                    best_d = float(dg[order[0]])
                    best_j = int(members[order[0]])
                # Tight bound: smallest distance in g excluding best_j.
                excl = dg[members != best_j]
                lb[i, g] = float(excl.min()) if excl.size else np.inf
            if best_j != old_j:
                # The previously-assigned centroid rejoins its group's
                # "closest other" set; fold its exact distance into that
                # group's lower bound in case the group was filtered out.
                g_old = int(groups[old_j])
                lb[i, g_old] = min(lb[i, g_old], old_exact)
            assignments[i] = best_j
            ub[i] = best_d

        sums, counts = accumulate(X, assignments, k)
        new_C = update_centroids(sums, counts, C)

        # --- drift the bounds ---
        apply_yinyang_drift(ub, lb, centroid_drift(C, new_C), assignments,
                            group_members)

        shift = max_centroid_shift(C, new_C)
        history.append(IterationStats(
            iteration=it,
            inertia=inertia(X, C, assignments),
            centroid_shift=shift,
            n_reassigned=int((assignments != prev_assignments).sum()),
        ))
        prev_assignments = assignments.copy()
        C = new_C
        if shift <= tol:
            converged = True
            break

    result = KMeansResult(
        centroids=C,
        assignments=assignments,
        inertia=inertia(X, C, assignments),
        n_iter=it,
        converged=converged,
        history=history,
        ledger=None,
        level=0,
    )
    return result, stats
