"""Single-node baseline algorithms the paper compares against or cites.

Exact accelerations (identical trajectory to Lloyd, less distance work):

* :func:`hamerly` — one upper + one lower bound per sample [Hamerly 2010],
* :func:`yinyang` — group-filtered bounds [Ding et al. 2015], the engine
  behind Table III's multi-core comparator row,
* :func:`elkan`   — full n x k lower bounds [Elkan 2003].

Inexact streaming baselines:

* :func:`minibatch` — Sculley's mini-batch k-means (quality-for-throughput
  trade-off; the family the paper cites via nested mini-batch k-means),
* :func:`streaming_kmeans` — Guha et al.'s divide-and-conquer one-pass
  algorithm, the ancestor of Bender et al.'s two-level-memory design the
  paper compares against.
"""

from .elkan import elkan
from .hamerly import BoundStats, hamerly
from .minibatch import minibatch
from .streaming import StreamingStats, streaming_kmeans
from .yinyang import yinyang

__all__ = ["BoundStats", "StreamingStats", "elkan", "hamerly", "minibatch",
           "streaming_kmeans", "yinyang"]
