"""Mini-batch k-means [Sculley, WWW 2010] — the inexact streaming baseline.

The paper cites nested mini-batch k-means (Newling & Fleuret) among the
algorithmic alternatives to brute scaling; this module provides the classic
mini-batch variant as the library's inexact baseline: each step samples a
batch, assigns it against the current centroids, and moves each centroid
toward the batch members with a per-centroid learning rate ``1/count``.

Unlike Lloyd/Hamerly/Yinyang/Elkan this is an *approximation* — it trades
objective quality for touching only ``batch_size`` samples per step — so
its contract is different: the tests assert convergence-in-expectation
(inertia within a factor of Lloyd's) rather than trajectory equality.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core._common import (
    assign_chunked,
    inertia,
    max_centroid_shift,
    validate_data,
)
from ..core.result import IterationStats, KMeansResult
from ..errors import ConfigurationError


def minibatch(X: np.ndarray, centroids: np.ndarray, batch_size: int = 256,
              max_iter: int = 200, tol: float = 1e-4,
              seed: int | np.random.Generator | None = 0,
              ) -> KMeansResult:
    """Run mini-batch k-means.

    Parameters
    ----------
    batch_size:
        Samples drawn (with replacement across steps) per update.
    max_iter:
        Number of mini-batch steps.
    tol:
        Stop when the max centroid movement over a step drops below tol.
    seed:
        RNG for batch sampling.

    Returns
    -------
    KMeansResult with level = 0; assignments/inertia are computed once
    against the full dataset at the end.
    """
    if max_iter < 1:
        raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
    if batch_size < 1:
        raise ConfigurationError(
            f"batch_size must be >= 1, got {batch_size}"
        )
    if tol < 0:
        raise ConfigurationError(f"tol must be >= 0, got {tol}")
    X, C = validate_data(X, np.array(centroids, copy=True))
    n = X.shape[0]
    k = C.shape[0]
    rng = seed if isinstance(seed, np.random.Generator) \
        else np.random.default_rng(seed)

    counts = np.zeros(k, dtype=np.int64)
    history: List[IterationStats] = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        batch_idx = rng.integers(0, n, size=min(batch_size, n))
        batch = X[batch_idx]
        a = assign_chunked(batch, C)

        old_C = C.copy()
        # Per-centroid incremental mean update (Sculley's learning rate).
        for j in np.unique(a):
            members = batch[a == j]
            for x in members:
                counts[j] += 1
                eta = 1.0 / counts[j]
                C[j] = (1.0 - eta) * C[j] + eta * x

        shift = max_centroid_shift(old_C, C)
        history.append(IterationStats(
            iteration=it,
            inertia=float("nan"),   # full inertia not evaluated per step
            centroid_shift=shift,
            n_reassigned=0,
        ))
        if shift <= tol:
            converged = True
            break

    assignments = assign_chunked(X, C)
    return KMeansResult(
        centroids=C,
        assignments=assignments,
        inertia=inertia(X, C, assignments),
        n_iter=it,
        converged=converged,
        history=history,
        ledger=None,
        level=0,
    )
