"""Serial Lloyd algorithm — the correctness reference for every level.

This is the textbook two-step iteration the paper builds on (section II.B.2):

1. **Assign**: ``a(i) = argmin_j dis(x_i, c_j)``
2. **Update**: ``c_j = mean of samples assigned to j``

The partitioned Level 1/2/3 executors must reproduce this trajectory exactly
(same assignments, same centroids within fp tolerance) for any feasible
configuration; the integration tests enforce it.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from ..errors import ConfigurationError, ConvergenceWarning
from ._common import (
    DEFAULT_CHUNK_ELEMENTS,
    accumulate,
    inertia,
    max_centroid_shift,
    update_centroids,
    validate_data,
)
from .kernels import KernelLike, resolve_kernel
from .result import IterationStats, KMeansResult


def lloyd(X: np.ndarray, centroids: np.ndarray, max_iter: int = 100,
          tol: float = 0.0, chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
          kernel: KernelLike = "naive") -> KMeansResult:
    """Run serial Lloyd k-means from an explicit initial centroid set.

    Parameters
    ----------
    X:
        (n, d) samples.
    centroids:
        (k, d) initial centroids (not mutated).
    max_iter:
        Iteration cap.
    tol:
        Stop when the largest per-centroid L2 movement is <= tol.  The
        paper's loop runs "until each c_j is fixed", i.e. tol = 0.
    chunk_elements:
        Bound on the transient distance-matrix working set.
    kernel:
        Compute backend for the Assign step ("naive" or "gemm"; see
        :mod:`repro.core.kernels`).

    Returns
    -------
    KMeansResult with level = 0 and no time ledger.
    """
    if max_iter < 1:
        raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
    if tol < 0:
        raise ConfigurationError(f"tol must be >= 0, got {tol}")
    backend = resolve_kernel(kernel)
    X, C = validate_data(X, np.array(centroids, copy=True))
    k = C.shape[0]

    history = []
    assignments = np.full(X.shape[0], -1, dtype=np.int64)
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        new_assignments = backend.assign(X, C, chunk_elements)
        sums, counts = accumulate(X, new_assignments, k)
        new_C = update_centroids(sums, counts, C)

        shift = max_centroid_shift(C, new_C)
        n_reassigned = int((new_assignments != assignments).sum())
        history.append(IterationStats(
            iteration=it,
            inertia=inertia(X, C, new_assignments),
            centroid_shift=shift,
            n_reassigned=n_reassigned,
        ))
        assignments = new_assignments
        C = new_C
        if shift <= tol:
            converged = True
            break

    if not converged:
        warnings.warn(
            f"lloyd did not converge in {max_iter} iterations (last "
            f"centroid shift {history[-1].centroid_shift:.3g} > tol "
            f"{tol:g}); consider raising max_iter",
            ConvergenceWarning,
            stacklevel=2,
        )

    return KMeansResult(
        centroids=C,
        assignments=assignments,
        inertia=inertia(X, C, backend.assign(X, C, chunk_elements)),
        n_iter=it,
        converged=converged,
        history=history,
        ledger=None,
        level=0,
    )


def lloyd_single_iteration(X: np.ndarray, centroids: np.ndarray,
                           chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
                           kernel: KernelLike = "naive",
                           ) -> tuple[np.ndarray, np.ndarray]:
    """One Assign+Update step; returns (assignments, new_centroids).

    Handy for comparing a parallel executor's single-iteration output
    against the reference without running to convergence.
    """
    X, C = validate_data(X, centroids)
    assignments = resolve_kernel(kernel).assign(X, C, chunk_elements)
    sums, counts = accumulate(X, assignments, C.shape[0])
    return assignments, update_centroids(sums, counts, C)
