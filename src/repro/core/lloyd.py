"""Serial Lloyd algorithm — the correctness reference for every level.

This is the textbook two-step iteration the paper builds on (section II.B.2):

1. **Assign**: ``a(i) = argmin_j dis(x_i, c_j)``
2. **Update**: ``c_j = mean of samples assigned to j``

The partitioned Level 1/2/3 executors must reproduce this trajectory exactly
(same assignments, same centroids within fp tolerance) for any feasible
configuration; the integration tests enforce it.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Tuple

import numpy as np

from ..errors import (
    ConfigurationError,
    ConvergenceWarning,
    IntegrityError,
    NumericalFaultError,
)
from ..runtime.engine import EngineLike, resolve_engine
from ..runtime.ledger import NullLedger
from ..runtime.reduce import (
    ReduceLike,
    ReduceTopology,
    resolve_reduce,
    scatter_bounds,
    scatter_labels,
)
from ..runtime.supervisor import SupervisorLike, resolve_supervisor
from ._common import (
    DEFAULT_CHUNK_ELEMENTS,
    chunk_ranges,
    inertia,
    max_centroid_shift,
    update_centroids,
    validate_data,
)
from .block_tasks import (
    FusedAssignTask,
    build_pruned_tasks,
    fused_assign_block,
    kernel_token,
    pruned_assign_block,
)
from .bounds import BlockBounds
from .checkpoint import CheckpointConfig, CheckpointStore, load_checkpoint
from .kernels import KernelBackend, KernelLike, PrunedKernel, resolve_kernel
from .result import IterationStats, KMeansResult


def _fused_step(X: np.ndarray, C: np.ndarray, backend: KernelBackend,
                chunk_elements: int, engine,
                topology: Optional[ReduceTopology] = None
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One fused Assign+Accumulate pass, sharded over the execution engine.

    Shard boundaries come from the backend's own chunk policy (so they are
    a function of the problem shape only, never of the engine or worker
    count), each shard runs the fused kernel, and the per-shard partial
    accumulators merge under the reduction topology — whose schedule is a
    pure function of the shard count — making the result bit-identical
    across engines and worker counts for a given topology.
    """
    n, k = X.shape[0], C.shape[0]
    rows = backend.chunk_rows(n, k, X.shape[1], chunk_elements)
    assignments = np.empty(n, dtype=np.int64)
    best_d2 = np.empty(n, dtype=X.dtype)

    # Publish the operands once per call (identity makes the X re-publish
    # free across iterations); under the in-process engines share() is the
    # array itself and the tasks see it by reference.
    x_ref = engine.share("X", X)
    c_ref = engine.share("C", C)
    token = kernel_token(backend)
    tasks = [FusedAssignTask(x_ref, c_ref, lo, hi, token, chunk_elements)
             for lo, hi in chunk_ranges(n, rows)]
    merged, partials = engine.map_reduce(fused_assign_block, tasks,
                                         topology=topology,
                                         return_partials=True)
    scatter_labels(partials, assignments, best_d2)
    return assignments, best_d2, merged.sums, merged.counts


def _pruned_step(X: np.ndarray, C: np.ndarray, backend: PrunedKernel,
                 chunk_elements: int, engine,
                 topology: Optional[ReduceTopology],
                 bounds: BlockBounds
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One bounds-carrying Assign+Accumulate pass (``kernel="pruned"``).

    Shard boundaries, reduction topology, and scatter order are identical
    to :func:`_fused_step`, so the outputs are bit-identical to the gemm
    sweep; only the work per shard shrinks as the bounds tighten.  The
    fresh per-sample state is committed before returning — level 0 has no
    fault loop, so there is no half-commit hazard here.
    """
    n, k = X.shape[0], C.shape[0]
    rows = backend.chunk_rows(n, k, X.shape[1], chunk_elements)
    assignments = np.empty(n, dtype=np.int64)
    best_d2 = np.empty(n, dtype=X.dtype)
    lb = np.empty(n, dtype=np.float64)
    tasks = build_pruned_tasks(engine, backend, X, C,
                               list(chunk_ranges(n, rows)), bounds,
                               chunk_elements=chunk_elements)
    merged, partials = engine.map_reduce(pruned_assign_block, tasks,
                                         topology=topology,
                                         return_partials=True)
    scatter_labels(partials, assignments, best_d2)
    scatter_bounds(partials, lb)
    bounds.commit(C, assignments, best_d2, lb)
    return assignments, best_d2, merged.sums, merged.counts


def lloyd(X: np.ndarray, centroids: np.ndarray, max_iter: int = 100,
          tol: float = 0.0, chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
          kernel: Optional[KernelLike] = None, engine: EngineLike = None,
          workers: Optional[int] = None, reduce: ReduceLike = None,
          empty_action: str = "keep",
          deadline_s: Optional[float] = None,
          watchdog_s: Optional[float] = None,
          supervisor: SupervisorLike = None,
          checkpoint_every: Optional[int] = None,
          checkpoint_dir: Optional[str] = None,
          resume: bool = False,
          integrity: Optional[str] = None) -> KMeansResult:
    """Run serial Lloyd k-means from an explicit initial centroid set.

    Parameters
    ----------
    X:
        (n, d) samples.
    centroids:
        (k, d) initial centroids (not mutated).
    max_iter:
        Iteration cap.
    tol:
        Stop when the largest per-centroid L2 movement is <= tol.  The
        paper's loop runs "until each c_j is fixed", i.e. tol = 0.
    chunk_elements:
        Bound on the transient distance-matrix working set.
    kernel:
        Compute backend for the Assign step ("naive", "gemm", or
        "pruned"; see :mod:`repro.core.kernels`).  None consults
        ``REPRO_KERNEL``.  The pruned backend carries per-sample bounds
        across iterations (invalidated on resume) and is bit-identical
        to "gemm".
    engine:
        Host execution engine ("serial" or "thread"; see
        :mod:`repro.runtime.engine`).  Shards the fused Assign+Accumulate
        pass over a thread pool without changing the numbers.
    workers:
        Thread count for the thread engine (implies ``engine="thread"``
        when > 1 and ``engine`` is unset).
    reduce:
        Reduction topology merging the per-shard partials (``"serial"``,
        ``"tree"``, or a :class:`~repro.runtime.reduce.ReduceTopology`
        instance; see :mod:`repro.runtime.reduce`).  None consults
        ``REPRO_REDUCE``.  The serial default folds in shard order —
        bit-identical to the historical loop; the tree runs pairwise
        combines as engine tasks, bit-identical across engines and worker
        counts for a fixed topology.
    empty_action:
        Empty-cluster rule for the Update step (``"keep"`` or
        ``"reseed_farthest"``; see
        :func:`~repro.core._common.update_centroids`).
    deadline_s:
        Wall-clock budget in *real* seconds; the run aborts with
        :class:`~repro.errors.DeadlineExceededError` at the first
        iteration boundary past it.  None consults ``REPRO_DEADLINE``.
    watchdog_s:
        Per-iteration real-time threshold; slower iterations are flagged
        as ``slow_iteration`` host events.
    supervisor:
        Full :class:`~repro.runtime.supervisor.RunSupervisor` instance
        overriding ``deadline_s``/``watchdog_s``.
    checkpoint_every:
        Snapshot ``(iteration, centroids)`` every this many iterations.
        Level 0 has no time ledger, so nothing is charged — the knob only
        matters together with ``checkpoint_dir``.
    checkpoint_dir:
        Persist every snapshot durably to ``checkpoint_dir/checkpoint.npz``
        (atomic write-tmp → fsync → rename) so a killed process can
        ``resume``.
    resume:
        Restart from the snapshot in ``checkpoint_dir`` (required) instead
        of ``centroids``; the continuation is bit-identical to the
        uninterrupted run.
    integrity:
        Data-integrity mode (``"off"``, ``"verify"``, or ``"repair"``;
        see :mod:`repro.runtime.integrity`).  None consults
        ``REPRO_INTEGRITY``.  ``verify`` detects silently corrupted
        reduction partials, shared operands, and checkpoint bytes
        (raising :class:`~repro.errors.IntegrityError`); ``repair``
        recomputes the corrupted unit so runs under bitflip chaos finish
        bit-identical to fault-free ones.

    Returns
    -------
    KMeansResult with level = 0 and no time ledger.
    """
    if max_iter < 1:
        raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
    if tol < 0:
        raise ConfigurationError(f"tol must be >= 0, got {tol}")
    if resume and checkpoint_dir is None:
        raise ConfigurationError(
            "resume=True needs checkpoint_dir= (there is no on-disk "
            "snapshot to resume from otherwise)"
        )
    backend = resolve_kernel(kernel)
    exec_engine = resolve_engine(engine, workers, integrity=integrity)
    topology = resolve_reduce(reduce)
    run_supervisor = resolve_supervisor(supervisor, deadline_s, watchdog_s)
    # Level 0 has no time ledger: the NullLedger swallows the modelled
    # checkpoint charges, leaving only the durable host-side persistence.
    # The store shares the engine's chaos injector and integrity mode so
    # bitflip_checkpoint plans reach the durable writes and resumes verify.
    checkpoints = CheckpointStore(CheckpointConfig(every=checkpoint_every),
                                  NullLedger(), directory=checkpoint_dir,
                                  chaos=exec_engine.chaos,
                                  integrity=exec_engine.integrity,
                                  record=run_supervisor.record)
    X, C = validate_data(X, np.array(centroids, copy=True))
    n = X.shape[0]

    start_iteration = 0
    if resume:
        try:
            snapshot = load_checkpoint(checkpoint_dir,
                                       integrity=exec_engine.integrity)
        except IntegrityError as exc:
            # repair treats a rotted snapshot like a missing one: cold
            # start from the passed centroids.  verify/off surface it.
            if exec_engine.integrity != "repair":
                raise
            snapshot = None
            run_supervisor.record(
                "integrity",
                f"durable snapshot failed verification ({exc}); "
                f"cold start",
            )
        if snapshot is None:
            run_supervisor.record(
                "resume", f"no snapshot in {checkpoint_dir!r}; cold start")
        elif snapshot.centroids.shape != C.shape:
            raise ConfigurationError(
                f"checkpoint in {checkpoint_dir!r} holds centroids of "
                f"shape {snapshot.centroids.shape}, but this run uses "
                f"{C.shape}"
            )
        else:
            C = np.array(snapshot.centroids, copy=True).astype(
                X.dtype, copy=False)
            start_iteration = int(snapshot.iteration)
            checkpoints.adopt(snapshot)
            run_supervisor.record(
                "resume",
                f"resumed from {checkpoint_dir!r} at iteration "
                f"{start_iteration}",
            )
    if start_iteration == 0:
        checkpoints.save_initial(C)
    # Pruned bound state is created *after* any resume restore: the carrier
    # starts invalid, so the first (possibly resumed) iteration establishes
    # the bounds from scratch — nothing stale survives a restart (D107).
    pruned_bounds = (BlockBounds() if isinstance(backend, PrunedKernel)
                     else None)

    run_supervisor.start()
    history: List[IterationStats] = []
    assignments = np.full(n, -1, dtype=np.int64)
    converged = False
    it = start_iteration
    shift = np.inf
    for it in range(start_iteration + 1, max_iter + 1):
        run_supervisor.begin_iteration(it)
        if isinstance(backend, PrunedKernel) and pruned_bounds is not None:
            new_assignments, best_d2, sums, counts = _pruned_step(
                X, C, backend, chunk_elements, exec_engine, topology,
                pruned_bounds)
        else:
            new_assignments, best_d2, sums, counts = _fused_step(
                X, C, backend, chunk_elements, exec_engine, topology)
        new_C = update_centroids(sums, counts, C,
                                 empty_action=empty_action,
                                 X=X, best_d2=best_d2)
        run_supervisor.absorb(exec_engine)
        # Numerical guard: level 0 has no recovery loop, so a poisoned
        # partial (e.g. host-side corruption at the engine seam) fails
        # loudly here instead of converging to garbage.
        if not np.isfinite(new_C).all():
            raise NumericalFaultError(
                f"non-finite centroids after the iteration {it} Update "
                f"step", iteration=it,
            )

        shift = max_centroid_shift(C, new_C)
        n_reassigned = int((new_assignments != assignments).sum())
        history.append(IterationStats(
            iteration=it,
            # Mean winning squared distance under the incoming C — the same
            # objective the einsum re-pass computed, without the extra
            # O(n d) sweep.
            inertia=float(best_d2.sum() / n),
            centroid_shift=shift,
            n_reassigned=n_reassigned,
        ))
        assignments = new_assignments
        C = new_C
        run_supervisor.end_iteration(it)
        if shift <= tol:
            converged = True
            break
        checkpoints.maybe_save(it, C)

    if not converged and history:
        warnings.warn(
            f"lloyd did not converge in {max_iter} iterations (last "
            f"centroid shift {history[-1].centroid_shift:.3g} > tol "
            f"{tol:g}); consider raising max_iter",
            ConvergenceWarning,
            stacklevel=2,
        )

    # Final objective under the final C.  At an exact fixed point
    # (shift == 0) the held assignments *are* the nearest-centroid labels
    # for the final C, so the O(n d) einsum suffices with no extra Assign
    # pass.  A tol > 0 stop (or max_iter exhaustion) halts one Update past
    # the last Assign, so the held labels may be stale against the final C
    # — recompute them for the objective only, keeping result.inertia the
    # true O(C) as before.  result.assignments stays the last-Assign labels
    # in every case.
    if (assignments < 0).any():
        # A resume at start_iteration >= max_iter runs zero iterations;
        # label against the restored centroids so the result is usable.
        assignments = backend.assign(X, C, chunk_elements)
    if converged and shift == 0.0:
        final_inertia = inertia(X, C, assignments)
    else:
        final_inertia = inertia(X, C, backend.assign(X, C, chunk_elements))

    return KMeansResult(
        centroids=C,
        assignments=assignments,
        inertia=final_inertia,
        n_iter=it,
        converged=converged,
        history=history,
        ledger=None,
        level=0,
        host_events=list(run_supervisor.events),
    )


def lloyd_single_iteration(X: np.ndarray, centroids: np.ndarray,
                           chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
                           kernel: Optional[KernelLike] = None,
                           ) -> tuple[np.ndarray, np.ndarray]:
    """One Assign+Update step; returns (assignments, new_centroids).

    Handy for comparing a parallel executor's single-iteration output
    against the reference without running to convergence.
    """
    X, C = validate_data(X, centroids)
    assignments, _, sums, counts = resolve_kernel(kernel).assign_accumulate(
        X, C, chunk_elements)
    return assignments, update_centroids(sums, counts, C)
